"""The Apriori algorithm (Agrawal & Srikant, VLDB 1994).

This is the substrate every temporal mining task builds on.  The
implementation follows the paper's two ideas exactly:

1. **Level-wise search** — frequent (k)-itemsets are found from candidate
   k-itemsets generated out of frequent (k−1)-itemsets, exploiting the
   anti-monotonicity of support.
2. **Candidate generation** = *join* (two frequent (k−1)-itemsets sharing a
   (k−2)-prefix) followed by *prune* (drop candidates with any infrequent
   (k−1)-subset).

Options mirror the classic engineering choices: pluggable counting
backend (dict vs hash tree vs vertical bitmaps, selected through the
registry in :mod:`repro.columnar.backends`) and transaction reduction
(drop transactions that can no longer contain any candidate).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.columnar.backends import (
    BasketSegment,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.columnar.encoded import EncodedDatabase
from repro.core.items import Item, Itemset
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.runtime.budget import RunInterrupted, RunMonitor

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.parallel.executor import ShardedExecutor

#: Either transaction representation; all mining entry points accept both.
AnyDatabase = Union[TransactionDatabase, EncodedDatabase]


@dataclass(frozen=True)
class AprioriOptions:
    """Tuning knobs for one Apriori run.

    Attributes:
        counting: ``"auto"`` or any registered backend name —
            ``"dict"``, ``"hashtree"`` or ``"vertical"``.
        transaction_reduction: drop transactions smaller than the current
            candidate size between passes (they cannot support anything;
            moot for the vertical backend, which never re-scans baskets).
        max_size: stop after frequent itemsets of this size (0 = unbounded).
    """

    counting: str = "auto"
    transaction_reduction: bool = True
    max_size: int = 0

    def __post_init__(self) -> None:
        if self.counting != "auto" and self.counting not in available_backends():
            raise MiningParameterError(f"unknown counting strategy {self.counting!r}")
        if self.max_size < 0:
            raise MiningParameterError("max_size must be >= 0")


class FrequentItemsets:
    """The result of a frequent-itemset mining run.

    Maps every frequent itemset to its absolute support count and records
    the database size, so relative supports are recoverable.
    """

    def __init__(self, counts: Mapping[Itemset, int], n_transactions: int):
        self._counts: Dict[Itemset, int] = dict(counts)
        self._n = n_transactions

    @property
    def n_transactions(self) -> int:
        """Size of the mined database."""
        return self._n

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._counts

    def __iter__(self):
        return iter(self._counts)

    def items(self):
        return self._counts.items()

    def count(self, itemset: Itemset) -> int:
        """Absolute support; 0 for itemsets not found frequent."""
        return self._counts.get(itemset, 0)

    def support(self, itemset: Itemset) -> float:
        """Relative support; 0.0 for itemsets not found frequent."""
        if self._n == 0:
            return 0.0
        return self._counts.get(itemset, 0) / self._n

    def of_size(self, size: int) -> List[Itemset]:
        """All frequent itemsets of exactly ``size`` items, sorted."""
        return sorted(s for s in self._counts if len(s) == size)

    def max_size(self) -> int:
        """Largest frequent itemset size (0 when empty)."""
        return max((len(s) for s in self._counts), default=0)

    def as_dict(self) -> Dict[Itemset, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"FrequentItemsets(n_itemsets={len(self._counts)}, n_transactions={self._n})"


def validate_min_support(min_support: float) -> None:
    """Raise unless ``0 < min_support <= 1``."""
    if not 0.0 < min_support <= 1.0:
        raise MiningParameterError(
            f"min_support must be in (0, 1], got {min_support}"
        )


def apriori_join(frequent_prev: Sequence[Itemset]) -> List[Itemset]:
    """Join step: merge frequent (k−1)-itemsets sharing a (k−2)-prefix.

    ``frequent_prev`` must all have the same size; the result contains
    candidate k-itemsets in lexicographic order.
    """
    if not frequent_prev:
        return []
    k_prev = len(frequent_prev[0])
    ordered = sorted(frequent_prev)
    candidates: List[Itemset] = []
    n = len(ordered)
    for i in range(n):
        first = ordered[i].items
        prefix = first[:-1]
        for j in range(i + 1, n):
            second = ordered[j].items
            if second[:-1] != prefix:
                break  # sorted order: no later itemset shares this prefix
            candidates.append(Itemset(first + (second[-1],)))
    # Sanity: joining (k-1)-itemsets yields k-itemsets.
    assert all(len(c) == k_prev + 1 for c in candidates)
    return candidates


def apriori_prune(
    candidates: Iterable[Itemset], frequent_prev: Iterable[Itemset]
) -> List[Itemset]:
    """Prune step: keep candidates whose every (k−1)-subset is frequent."""
    frequent_set = set(frequent_prev)
    survivors: List[Itemset] = []
    for candidate in candidates:
        items = candidate.items
        # The two subsets produced by the join are frequent by construction,
        # but checking all of them keeps this function independently correct.
        if all(
            Itemset(items[:i] + items[i + 1 :]) in frequent_set
            for i in range(len(items))
        ):
            survivors.append(candidate)
    return survivors


def generate_candidates(frequent_prev: Sequence[Itemset]) -> List[Itemset]:
    """Full candidate generation: join then prune."""
    return apriori_prune(apriori_join(frequent_prev), frequent_prev)


def apriori(
    database: AnyDatabase,
    min_support: float,
    options: Optional[AprioriOptions] = None,
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets of ``database`` at ``min_support``.

    Args:
        database: timestamped transaction database (timestamps ignored
            here) — either the classic :class:`TransactionDatabase` or a
            columnar :class:`~repro.columnar.encoded.EncodedDatabase`.
        min_support: relative threshold in (0, 1].
        options: see :class:`AprioriOptions`.
        monitor: optional run monitor; when its budget is exhausted (or
            its token cancelled) the search stops at a pass boundary and
            the itemsets of the completed passes are returned — an exact
            subset of the unbudgeted result.
        executor: optional sharded executor; candidate passes then run
            count-distribution style (flat transaction shards, per-shard
            vectors summed) with the serial scan as fallback — counts
            are identical either way.

    Returns:
        All itemsets whose relative support is >= ``min_support``, with
        their absolute counts (possibly truncated to the completed
        passes when a monitored run stops early).
    """
    validate_min_support(min_support)
    options = options or AprioriOptions()
    n = len(database)
    result: Dict[Itemset, int] = {}
    if n == 0:
        return FrequentItemsets(result, 0)
    # Threshold as an absolute count, rounded up (support >= min_support).
    min_count = _min_count(min_support, n)

    try:
        # Pass 1: count single items directly.
        item_counts = database.item_frequencies()
        frequent: List[Itemset] = []
        for item, count in item_counts.items():
            if count >= min_count:
                singleton = Itemset((item,))
                result[singleton] = count
                frequent.append(singleton)
        frequent.sort()
        if monitor is not None:
            monitor.complete_pass()
            monitor.checkpoint()

        # Bitmap backends (vertical/packed) count against one index
        # built once over the whole database and reused by every pass,
        # so their segment is prepared up front; horizontal backends
        # re-scan a working basket list that transaction reduction may
        # shrink.
        bitmap_counting = (
            options.counting != "auto"
            and get_backend(options.counting).uses_vertical
        )
        vertical_segment = None
        baskets: List[Tuple[Item, ...]] = []
        encoded_parallel = None
        if bitmap_counting or executor is not None:
            encoded = (
                database
                if isinstance(database, EncodedDatabase)
                else EncodedDatabase.from_database(database)
            )
            if executor is not None:
                encoded_parallel = encoded
            if bitmap_counting:
                vertical_segment = encoded.segment()
        if not bitmap_counting:
            # Serial fallback scans these baskets even when a parallel
            # executor is attached (it may decline or degrade mid-run).
            if isinstance(database, EncodedDatabase):
                baskets = list(database.iter_baskets())
            else:
                baskets = [t.items.items for t in database]

        k = 2
        while frequent and (options.max_size == 0 or k <= options.max_size):
            candidates = generate_candidates(frequent)
            if not candidates:
                break
            if monitor is not None:
                monitor.charge_candidates(len(candidates))
            counted: Optional[Mapping[Itemset, int]] = None
            if executor is not None and encoded_parallel is not None:
                vector = executor.count_flat(
                    encoded_parallel, candidates, options.counting, monitor=monitor
                )
                if vector is not None:
                    counted = {
                        candidate: int(count)
                        for candidate, count in zip(candidates, vector)
                    }
            if counted is None:
                backend = resolve_backend(options.counting, len(candidates), k)
                if backend.uses_vertical:
                    segment = vertical_segment
                else:
                    if options.transaction_reduction:
                        baskets = [b for b in baskets if len(b) >= k]
                    segment = BasketSegment(baskets)
                counted = backend.count_pass(candidates, segment, monitor=monitor)
            frequent = []
            for itemset, count in counted.items():
                if count >= min_count:
                    result[itemset] = count
                    frequent.append(itemset)
            frequent.sort()
            if monitor is not None:
                monitor.complete_pass()
            k += 1
    except RunInterrupted:
        # Stop at the pass boundary: the interrupted pass's counts are
        # incomplete and are discarded wholesale, so every itemset in
        # ``result`` carries its exact support.
        pass
    return FrequentItemsets(result, n)


def brute_force_frequent_itemsets(
    database: TransactionDatabase, min_support: float, max_size: int = 0
) -> FrequentItemsets:
    """Exhaustive reference miner used to validate :func:`apriori`.

    Enumerates every subset of every transaction — exponential, only for
    tests on tiny databases.
    """
    validate_min_support(min_support)
    n = len(database)
    if n == 0:
        return FrequentItemsets({}, 0)
    min_count = _min_count(min_support, n)
    counts: Dict[Itemset, int] = {}
    for transaction in database:
        items = transaction.items.items
        limit = len(items) if max_size == 0 else min(max_size, len(items))
        for size in range(1, limit + 1):
            for combo in combinations(items, size):
                key = Itemset(combo)
                counts[key] = counts.get(key, 0) + 1
    frequent = {s: c for s, c in counts.items() if c >= min_count}
    return FrequentItemsets(frequent, n)


def _min_count(min_support: float, n: int) -> int:
    """Smallest absolute count satisfying ``count / n >= min_support``.

    Computed via ceiling with a small epsilon guard against float error
    (e.g. ``0.3 * 10`` is ``2.9999999999999996``).
    """
    import math

    exact = min_support * n
    threshold = math.ceil(exact - 1e-9)
    return max(threshold, 1)
