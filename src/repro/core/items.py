"""Items, itemsets and item catalogs.

The core data model follows Agrawal & Srikant: a *literal* set of items
``I = {i1, ..., im}`` and transactions that are subsets of ``I``.  Items are
represented by integer identifiers internally (fast set operations, compact
storage); an :class:`ItemCatalog` maps between external labels (strings such
as ``"bread"``) and internal ids.

:class:`Itemset` is an immutable, sorted tuple of item ids.  Sorting makes
prefix-based Apriori candidate generation straightforward and gives itemsets
a canonical form, so equal sets always compare and hash equal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ItemError

Item = int
"""Internal item identifier (a small non-negative integer)."""


class Itemset:
    """An immutable, canonically-ordered set of items.

    Instances behave like small frozen sets of ints but preserve sorted
    order, which Apriori's join step relies on.

    >>> a = Itemset([3, 1, 2])
    >>> a.items
    (1, 2, 3)
    >>> Itemset([1, 2]) < a
    True
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Item]):
        unique = sorted(set(items))
        for item in unique:
            if not isinstance(item, int) or item < 0:
                raise ItemError(f"item ids must be non-negative ints, got {item!r}")
        self._items: Tuple[Item, ...] = tuple(unique)
        self._hash = hash(self._items)

    @classmethod
    def of(cls, *items: Item) -> "Itemset":
        """Convenience constructor: ``Itemset.of(1, 2, 3)``."""
        return cls(items)

    @classmethod
    def empty(cls) -> "Itemset":
        """The empty itemset."""
        return cls(())

    @property
    def items(self) -> Tuple[Item, ...]:
        """The items in ascending order."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return self._items == other._items

    def __lt__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return self._items < other._items

    def __le__(self, other: "Itemset") -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return self._items <= other._items

    def __repr__(self) -> str:
        return f"Itemset({list(self._items)!r})"

    def union(self, other: "Itemset") -> "Itemset":
        """Set union; the result is canonical."""
        return Itemset(self._items + other._items)

    def intersection(self, other: "Itemset") -> "Itemset":
        other_set = set(other._items)
        return Itemset(i for i in self._items if i in other_set)

    def difference(self, other: "Itemset") -> "Itemset":
        other_set = set(other._items)
        return Itemset(i for i in self._items if i not in other_set)

    def issubset(self, other: "Itemset") -> bool:
        """True when every item of ``self`` occurs in ``other``.

        Both operands are sorted, so a linear merge suffices.
        """
        mine, theirs = self._items, other._items
        if len(mine) > len(theirs):
            return False
        j = 0
        n = len(theirs)
        for item in mine:
            while j < n and theirs[j] < item:
                j += 1
            if j >= n or theirs[j] != item:
                return False
            j += 1
        return True

    def issuperset(self, other: "Itemset") -> bool:
        return other.issubset(self)

    def isdisjoint(self, other: "Itemset") -> bool:
        return not set(self._items) & set(other._items)

    def prefix(self, length: int) -> Tuple[Item, ...]:
        """The first ``length`` items (used by the Apriori join step)."""
        return self._items[:length]

    def subsets_of_size(self, size: int) -> Iterator["Itemset"]:
        """All size-``size`` subsets, in lexicographic order."""
        from itertools import combinations

        if size < 0 or size > len(self._items):
            return
        for combo in combinations(self._items, size):
            yield Itemset(combo)

    def without(self, item: Item) -> "Itemset":
        """The itemset with ``item`` removed (no-op if absent)."""
        return Itemset(i for i in self._items if i != item)

    def with_item(self, item: Item) -> "Itemset":
        """The itemset with ``item`` added."""
        return Itemset(self._items + (item,))


class ItemCatalog:
    """Bidirectional mapping between item labels and integer ids.

    Ids are assigned densely in first-registration order, which keeps
    downstream arrays compact.

    >>> catalog = ItemCatalog()
    >>> catalog.add("bread")
    0
    >>> catalog.add("milk")
    1
    >>> catalog.label(0)
    'bread'
    >>> catalog.id("milk")
    1
    """

    def __init__(self, labels: Optional[Iterable[str]] = None):
        self._label_to_id: Dict[str, Item] = {}
        self._id_to_label: List[str] = []
        if labels is not None:
            for label in labels:
                self.add(label)

    def __len__(self) -> int:
        return len(self._id_to_label)

    def __contains__(self, label: object) -> bool:
        return label in self._label_to_id

    def add(self, label: str) -> Item:
        """Register ``label`` (idempotent) and return its id."""
        if not isinstance(label, str) or not label:
            raise ItemError(f"item labels must be non-empty strings, got {label!r}")
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        item_id = len(self._id_to_label)
        self._label_to_id[label] = item_id
        self._id_to_label.append(label)
        return item_id

    def id(self, label: str) -> Item:
        """The id for ``label``; raises :class:`ItemError` if unknown."""
        try:
            return self._label_to_id[label]
        except KeyError:
            raise ItemError(f"unknown item label {label!r}") from None

    def label(self, item_id: Item) -> str:
        """The label for ``item_id``; raises :class:`ItemError` if unknown."""
        if 0 <= item_id < len(self._id_to_label):
            return self._id_to_label[item_id]
        raise ItemError(f"unknown item id {item_id!r}")

    def labels(self) -> Tuple[str, ...]:
        """All labels in id order."""
        return tuple(self._id_to_label)

    def encode(self, labels: Iterable[str]) -> Itemset:
        """Build an :class:`Itemset` from labels, registering new ones."""
        return Itemset(self.add(label) for label in labels)

    def encode_strict(self, labels: Iterable[str]) -> Itemset:
        """Build an :class:`Itemset` from labels that must already exist."""
        return Itemset(self.id(label) for label in labels)

    def decode(self, itemset: Itemset) -> Tuple[str, ...]:
        """The labels of ``itemset`` in id order."""
        return tuple(self.label(i) for i in itemset)

    def format(self, itemset: Itemset, sep: str = ", ") -> str:
        """Human-readable rendering, e.g. ``"bread, milk"``."""
        return sep.join(self.decode(itemset))


def itemset_from_any(value: object, catalog: Optional[ItemCatalog] = None) -> Itemset:
    """Coerce ints, strings or iterables of either into an :class:`Itemset`.

    Strings require a ``catalog``; they are looked up strictly (no implicit
    registration), so typos surface as :class:`ItemError` rather than a new
    item with zero support.
    """
    if isinstance(value, Itemset):
        return value
    if isinstance(value, int):
        return Itemset((value,))
    if isinstance(value, str):
        if catalog is None:
            raise ItemError("string items require an ItemCatalog")
        return Itemset((catalog.id(value),))
    if isinstance(value, Iterable):
        members: List[Item] = []
        for element in value:
            if isinstance(element, int):
                members.append(element)
            elif isinstance(element, str):
                if catalog is None:
                    raise ItemError("string items require an ItemCatalog")
                members.append(catalog.id(element))
            else:
                raise ItemError(f"cannot interpret {element!r} as an item")
        return Itemset(members)
    raise ItemError(f"cannot interpret {value!r} as an itemset")
