"""Association-rule generation from frequent itemsets (ap-genrules).

Given the frequent itemsets and a confidence threshold, generate every
rule ``X ⇒ Y`` with ``X ∪ Y`` frequent, ``X ∩ Y = ∅`` and confidence at
least the threshold.  Follows the Agrawal–Srikant *ap-genrules* recursion:
start from 1-item consequents and grow consequents level-wise, pruning by
the anti-monotonicity of confidence in the consequent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.apriori import FrequentItemsets, apriori_join
from repro.core.items import ItemCatalog, Itemset
from repro.core.measures import (
    confidence as _confidence,
    conviction as _conviction,
    leverage as _leverage,
    lift as _lift,
    rule_p_value,
    validate_fraction,
)
from repro.errors import MiningParameterError


@dataclass(frozen=True)
class AssociationRule:
    """An association rule X ⇒ Y with its measures.

    Attributes:
        antecedent: the itemset X.
        consequent: the itemset Y (disjoint from X).
        support: relative support of X ∪ Y.
        confidence: supp(X ∪ Y) / supp(X).
        support_count: absolute count of X ∪ Y.
        n_transactions: size of the database the rule was mined from.
        antecedent_support: relative support of X.
        consequent_support: relative support of Y.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    support_count: int
    n_transactions: int
    antecedent_support: float
    consequent_support: float

    @property
    def itemset(self) -> Itemset:
        """X ∪ Y, the rule's full itemset."""
        return self.antecedent.union(self.consequent)

    @property
    def lift(self) -> float:
        return _lift(self.support, self.antecedent_support, self.consequent_support)

    @property
    def leverage(self) -> float:
        return _leverage(self.support, self.antecedent_support, self.consequent_support)

    @property
    def conviction(self) -> float:
        return _conviction(self.consequent_support, self.confidence)

    @property
    def p_value(self) -> float:
        return rule_p_value(
            self.n_transactions,
            self.support_count,
            self.antecedent_support,
            self.consequent_support,
        )

    def key(self) -> "RuleKey":
        """The structural identity (X, Y), ignoring measures."""
        return RuleKey(self.antecedent, self.consequent)

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        """Render e.g. ``"{bread, butter} => {milk}"`` (labels if possible)."""
        if catalog is not None:
            left = catalog.format(self.antecedent)
            right = catalog.format(self.consequent)
        else:
            left = ", ".join(str(i) for i in self.antecedent)
            right = ", ".join(str(i) for i in self.consequent)
        return f"{{{left}}} => {{{right}}}"

    def __str__(self) -> str:
        return (
            f"{self.format()}  (supp={self.support:.4f}, conf={self.confidence:.4f})"
        )


@dataclass(frozen=True)
class RuleKey:
    """The (antecedent, consequent) identity of a rule.

    Temporal mining tracks the *same rule* across time units; the measures
    change per unit but the key stays fixed, so the key — not the full
    :class:`AssociationRule` — is what temporal structures are indexed by.
    """

    antecedent: Itemset
    consequent: Itemset

    @property
    def itemset(self) -> Itemset:
        return self.antecedent.union(self.consequent)

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        if catalog is not None:
            left = catalog.format(self.antecedent)
            right = catalog.format(self.consequent)
        else:
            left = ", ".join(str(i) for i in self.antecedent)
            right = ", ".join(str(i) for i in self.consequent)
        return f"{{{left}}} => {{{right}}}"

    def __str__(self) -> str:
        return self.format()


def generate_rules(
    frequent: FrequentItemsets,
    min_confidence: float,
    max_consequent_size: int = 0,
) -> List[AssociationRule]:
    """All rules meeting ``min_confidence`` from the given frequent itemsets.

    Args:
        frequent: output of :func:`repro.core.apriori.apriori`.
        min_confidence: threshold in [0, 1].
        max_consequent_size: cap on |Y| (0 = unbounded).

    Returns:
        Rules sorted by (descending confidence, descending support, key).
    """
    validate_fraction("min_confidence", min_confidence)
    if max_consequent_size < 0:
        raise MiningParameterError("max_consequent_size must be >= 0")
    n = frequent.n_transactions
    rules: List[AssociationRule] = []
    for itemset, count_xy in frequent.items():
        if len(itemset) < 2:
            continue
        rules.extend(
            _rules_from_itemset(itemset, count_xy, frequent, min_confidence, max_consequent_size)
        )
    rules.sort(
        key=lambda r: (-r.confidence, -r.support, r.antecedent.items, r.consequent.items)
    )
    return rules


def _rules_from_itemset(
    itemset: Itemset,
    count_xy: int,
    frequent: FrequentItemsets,
    min_confidence: float,
    max_consequent_size: int,
) -> Iterator[AssociationRule]:
    """ap-genrules for one frequent itemset."""
    n = frequent.n_transactions
    support_xy = count_xy / n if n else 0.0

    def build(consequent: Itemset) -> Optional[AssociationRule]:
        antecedent = itemset.difference(consequent)
        count_x = frequent.count(antecedent)
        if count_x == 0:
            # Every subset of a frequent itemset is frequent, so a zero
            # count indicates inconsistent input rather than infrequency.
            return None
        conf = _confidence(count_xy / n, count_x / n)
        if conf + 1e-12 < min_confidence:
            return None
        count_y = frequent.count(consequent)
        return AssociationRule(
            antecedent=antecedent,
            consequent=consequent,
            support=support_xy,
            confidence=conf,
            support_count=count_xy,
            n_transactions=n,
            antecedent_support=count_x / n,
            consequent_support=count_y / n if count_y else _subset_support(consequent, frequent),
        )

    # Level 1: single-item consequents.
    current: List[Itemset] = []
    for item in itemset:
        rule = build(Itemset((item,)))
        if rule is not None:
            yield rule
            current.append(rule.consequent)

    # Grow consequents: if X − Y ⇒ Y fails confidence, any rule with a
    # larger consequent containing Y fails too (its antecedent is smaller,
    # so its confidence can only drop).
    size = 2
    while current and (max_consequent_size == 0 or size <= max_consequent_size):
        if size >= len(itemset):
            break
        next_level: List[Itemset] = []
        for candidate in apriori_join(sorted(current)):
            rule = build(candidate)
            if rule is not None:
                yield rule
                next_level.append(rule.consequent)
        current = next_level
        size += 1


def _subset_support(itemset: Itemset, frequent: FrequentItemsets) -> float:
    """Support of an itemset that may not itself be in the frequent map.

    Consequent supports are needed only for secondary measures; when the
    consequent happens to be infrequent on its own (impossible if it is a
    subset of a frequent itemset, but guarded for robustness) we report 0.
    """
    count = frequent.count(itemset)
    return count / frequent.n_transactions if frequent.n_transactions else 0.0


def mine_rules(
    database,
    min_support: float,
    min_confidence: float,
    options=None,
    engine: str = "apriori",
) -> List[AssociationRule]:
    """Convenience: frequent-itemset mining followed by rule generation.

    This is the *traditional*, time-blind pipeline that the paper's
    temporal tasks are compared against.

    Args:
        engine: ``"apriori"`` (default), ``"fpgrowth"`` or ``"partition"``
            — all three return identical rules (a tested invariant);
            ``options`` applies to the Apriori engine only.
    """
    from repro.core.apriori import apriori

    if engine == "apriori":
        frequent = apriori(database, min_support, options=options)
    elif engine == "fpgrowth":
        from repro.core.fpgrowth import fpgrowth

        max_size = options.max_size if options is not None else 0
        frequent = fpgrowth(database, min_support, max_size=max_size)
    elif engine == "partition":
        from repro.core.partition import partition

        max_size = options.max_size if options is not None else 0
        frequent = partition(database, min_support, max_size=max_size)
    else:
        raise MiningParameterError(
            f"unknown engine {engine!r} (apriori, fpgrowth, partition)"
        )
    return generate_rules(frequent, min_confidence)
