"""Timestamped transactions and the in-memory transaction database.

A :class:`Transaction` is a set of items plus a timestamp — the temporal
component that the ICDE 2000 paper observes "is usually attached to
transactions in databases" and that traditional association mining
overlooks.  Timestamps are ordinary :class:`datetime.datetime` values.

:class:`TransactionDatabase` is the in-memory store all mining algorithms
consume.  The SQLite-backed store (:mod:`repro.db.sqlite_store`) loads into
this structure for mining.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.items import Item, ItemCatalog, Itemset
from repro.errors import TransactionError


@dataclass(frozen=True)
class Transaction:
    """One market-basket transaction with its valid-time instant.

    Attributes:
        tid: unique transaction identifier.
        timestamp: the instant the transaction occurred.
        items: the purchased itemset.
    """

    tid: int
    timestamp: datetime
    items: Itemset

    def __post_init__(self) -> None:
        if not isinstance(self.timestamp, datetime):
            raise TransactionError(
                f"transaction {self.tid}: timestamp must be datetime, "
                f"got {type(self.timestamp).__name__}"
            )

    def contains(self, itemset: Itemset) -> bool:
        """True when this transaction supports ``itemset``."""
        return itemset.issubset(self.items)

    def __len__(self) -> int:
        return len(self.items)


class TransactionDatabase:
    """An ordered collection of timestamped transactions.

    Transactions are kept sorted by timestamp (then tid), which the
    temporal partitioner exploits to slice unit sub-databases with binary
    search instead of a full scan.

    >>> from datetime import datetime
    >>> db = TransactionDatabase()
    >>> _ = db.add(datetime(2026, 1, 1), [1, 2, 3])
    >>> _ = db.add(datetime(2026, 1, 2), [1, 3])
    >>> len(db)
    2
    >>> db.support_count(Itemset.of(1, 3))
    2
    """

    def __init__(
        self,
        transactions: Optional[Iterable[Transaction]] = None,
        catalog: Optional[ItemCatalog] = None,
    ):
        self._transactions: List[Transaction] = []
        self._catalog = catalog if catalog is not None else ItemCatalog()
        self._sorted = True
        self._next_tid = 0
        if transactions is not None:
            for transaction in transactions:
                self.append(transaction)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> ItemCatalog:
        """The item catalog shared by all transactions in this database."""
        return self._catalog

    def append(self, transaction: Transaction) -> None:
        """Append an already-built :class:`Transaction`."""
        if self._transactions and transaction.timestamp < self._transactions[-1].timestamp:
            self._sorted = False
        self._transactions.append(transaction)
        self._next_tid = max(self._next_tid, transaction.tid + 1)

    def add(
        self,
        timestamp: datetime,
        items: Iterable[object],
        tid: Optional[int] = None,
    ) -> Transaction:
        """Create and append a transaction.

        ``items`` may be item ids or labels; labels are registered in the
        catalog on first use.
        """
        ids: List[Item] = []
        for element in items:
            if isinstance(element, str):
                ids.append(self._catalog.add(element))
            elif isinstance(element, int):
                ids.append(element)
            else:
                raise TransactionError(f"cannot interpret {element!r} as an item")
        if tid is None:
            tid = self._next_tid
        transaction = Transaction(tid=tid, timestamp=timestamp, items=Itemset(ids))
        self.append(transaction)
        return transaction

    def extend(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.append(transaction)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._transactions.sort(key=lambda t: (t.timestamp, t.tid))
            self._sorted = True

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        self._ensure_sorted()
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        self._ensure_sorted()
        return self._transactions[index]

    @property
    def transactions(self) -> Sequence[Transaction]:
        """All transactions sorted by (timestamp, tid)."""
        self._ensure_sorted()
        return tuple(self._transactions)

    def is_empty(self) -> bool:
        return not self._transactions

    def time_span(self) -> Tuple[datetime, datetime]:
        """(earliest, latest) timestamps; raises on an empty database."""
        if not self._transactions:
            raise TransactionError("time_span() on an empty database")
        self._ensure_sorted()
        return self._transactions[0].timestamp, self._transactions[-1].timestamp

    def items_universe(self) -> Itemset:
        """The union of all items appearing in any transaction."""
        seen: set = set()
        for transaction in self._transactions:
            seen.update(transaction.items)
        return Itemset(seen)

    def average_transaction_size(self) -> float:
        """Mean basket size (the 'T' in Quest dataset names)."""
        if not self._transactions:
            return 0.0
        return sum(len(t) for t in self._transactions) / len(self._transactions)

    # ------------------------------------------------------------------
    # counting and slicing
    # ------------------------------------------------------------------

    def support_count(self, itemset: Itemset) -> int:
        """Number of transactions containing ``itemset`` (absolute support)."""
        return sum(1 for t in self._transactions if t.contains(itemset))

    def support(self, itemset: Itemset) -> float:
        """Relative support in [0, 1]; 0.0 on an empty database."""
        if not self._transactions:
            return 0.0
        return self.support_count(itemset) / len(self._transactions)

    def restrict(
        self, predicate: Callable[[Transaction], bool]
    ) -> "TransactionDatabase":
        """A new database holding the transactions matching ``predicate``.

        The catalog is shared, so item ids remain comparable across the
        original and the slice.
        """
        sliced = TransactionDatabase(catalog=self._catalog)
        for transaction in self:
            if predicate(transaction):
                sliced.append(transaction)
        return sliced

    def between(self, start: datetime, end: datetime) -> "TransactionDatabase":
        """Transactions with ``start <= timestamp < end`` (half-open).

        Uses binary search over the sorted transaction list.
        """
        import bisect

        self._ensure_sorted()
        stamps = [t.timestamp for t in self._transactions]
        lo = bisect.bisect_left(stamps, start)
        hi = bisect.bisect_left(stamps, end)
        sliced = TransactionDatabase(catalog=self._catalog)
        for transaction in self._transactions[lo:hi]:
            sliced.append(transaction)
        return sliced

    def item_frequencies(self) -> Dict[Item, int]:
        """Absolute support of every single item."""
        counts: Dict[Item, int] = {}
        for transaction in self._transactions:
            for item in transaction.items:
                counts[item] = counts.get(item, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n={len(self._transactions)}, "
            f"items={len(self._catalog)})"
        )

    def summary(self) -> Dict[str, object]:
        """Summary statistics used by the IQMS 'data understanding' step."""
        if not self._transactions:
            return {
                "transactions": 0,
                "distinct_items": 0,
                "avg_size": 0.0,
                "span": None,
            }
        start, end = self.time_span()
        return {
            "transactions": len(self._transactions),
            "distinct_items": len(self.items_universe()),
            "avg_size": round(self.average_transaction_size(), 3),
            "span": (start.isoformat(), end.isoformat()),
        }
