"""FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

An alternative engine to :mod:`repro.core.apriori` from the same era as
the paper.  It compresses the database into an FP-tree (a prefix tree of
transactions with items ordered by descending support) and mines it by
recursive conditional-pattern-base projection — no candidate generation
and exactly two database scans.

The result type is the same :class:`~repro.core.apriori.FrequentItemsets`,
and the test suite asserts exact agreement with Apriori on every input,
so either engine can back the temporal tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.apriori import FrequentItemsets, _min_count, validate_min_support
from repro.core.items import Item, Itemset
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.runtime.budget import RunInterrupted, RunMonitor


class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[Item], parent: Optional["_FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[Item, "_FPNode"] = {}
        self.link: Optional["_FPNode"] = None  # next node with same item


class _FPTree:
    """An FP-tree with its header table (item → first node link)."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: Dict[Item, _FPNode] = {}
        self._tails: Dict[Item, _FPNode] = {}

    def insert(self, items: Sequence[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                tail = self._tails.get(item)
                if tail is None:
                    self.header[item] = child
                else:
                    tail.link = child
                self._tails[item] = child
            child.count += count
            node = child

    def is_single_path(self) -> Optional[List[Tuple[Item, int]]]:
        """The (item, count) chain if the tree is one path, else None."""
        path: List[Tuple[Item, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            path.append((node.item, node.count))  # type: ignore[arg-type]
        return path

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], int]]:
        """Conditional pattern base of ``item``: (prefix path, count)."""
        paths: List[Tuple[List[Item], int]] = []
        node = self.header.get(item)
        while node is not None:
            prefix: List[Item] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                prefix.append(parent.item)
                parent = parent.parent
            prefix.reverse()
            if prefix:
                paths.append((prefix, node.count))
            node = node.link
        return paths

    def item_counts(self) -> Dict[Item, int]:
        counts: Dict[Item, int] = {}
        for item, node in self.header.items():
            total = 0
            cursor: Optional[_FPNode] = node
            while cursor is not None:
                total += cursor.count
                cursor = cursor.link
            counts[item] = total
        return counts


def _build_tree(
    transactions: Iterable[Tuple[Sequence[Item], int]],
    item_order: Dict[Item, int],
    min_count: int,
    item_counts: Dict[Item, int],
) -> _FPTree:
    tree = _FPTree()
    for items, count in transactions:
        filtered = [i for i in items if item_counts.get(i, 0) >= min_count]
        filtered.sort(key=lambda i: item_order[i])
        if filtered:
            tree.insert(filtered, count)
    return tree


def _mine_tree(
    tree: _FPTree,
    suffix: Tuple[Item, ...],
    min_count: int,
    out: Dict[Itemset, int],
    max_size: int,
    monitor: Optional[RunMonitor] = None,
) -> None:
    single = tree.is_single_path()
    if single is not None:
        _emit_single_path(single, suffix, min_count, out, max_size)
        return
    counts = tree.item_counts()
    # Process items in ascending support (standard order for projection).
    for item in sorted(counts, key=lambda i: (counts[i], i)):
        if monitor is not None:
            # Every emitted itemset's count is final the moment it is
            # written, so stopping between projections yields an exact
            # subset of the full result.
            monitor.checkpoint()
        count = counts[item]
        if count < min_count:
            continue
        new_suffix = (item,) + suffix
        out[Itemset(new_suffix)] = count
        if max_size and len(new_suffix) >= max_size:
            continue
        paths = tree.prefix_paths(item)
        conditional_counts: Dict[Item, int] = {}
        for prefix, path_count in paths:
            for prefix_item in prefix:
                conditional_counts[prefix_item] = (
                    conditional_counts.get(prefix_item, 0) + path_count
                )
        order = {
            it: rank
            for rank, it in enumerate(
                sorted(conditional_counts, key=lambda i: (-conditional_counts[i], i))
            )
        }
        conditional = _build_tree(paths, order, min_count, conditional_counts)
        if conditional.header:
            _mine_tree(conditional, new_suffix, min_count, out, max_size, monitor)


def _emit_single_path(
    path: List[Tuple[Item, int]],
    suffix: Tuple[Item, ...],
    min_count: int,
    out: Dict[Itemset, int],
    max_size: int,
) -> None:
    """All combinations of a single-path tree, counted by the minimum
    count along the chosen prefix."""
    from itertools import combinations

    eligible = [(item, count) for item, count in path if count >= min_count]
    limit = len(eligible)
    if max_size:
        limit = min(limit, max(max_size - len(suffix), 0))
    for size in range(1, limit + 1):
        for combo in combinations(eligible, size):
            count = min(c for _i, c in combo)
            if count >= min_count:
                itemset = Itemset(tuple(i for i, _c in combo) + suffix)
                out[itemset] = count


def fpgrowth(
    database: TransactionDatabase,
    min_support: float,
    max_size: int = 0,
    monitor: Optional[RunMonitor] = None,
) -> FrequentItemsets:
    """Mine all frequent itemsets with FP-growth.

    Args:
        database: the transaction database (timestamps ignored).
        min_support: relative threshold in (0, 1].
        max_size: cap on itemset size (0 = unbounded).
        monitor: optional run monitor; an interrupted run returns the
            itemsets emitted so far (all with exact counts).

    Returns:
        Exactly the itemsets (and counts) that
        :func:`repro.core.apriori.apriori` returns (a subset when a
        monitored run stops early).
    """
    validate_min_support(min_support)
    if max_size < 0:
        raise MiningParameterError("max_size must be >= 0")
    n = len(database)
    if n == 0:
        return FrequentItemsets({}, 0)
    min_count = _min_count(min_support, n)

    item_counts = database.item_frequencies()
    frequent_items = {i: c for i, c in item_counts.items() if c >= min_count}
    out: Dict[Itemset, int] = {
        Itemset((item,)): count for item, count in frequent_items.items()
    }
    if max_size == 1 or not frequent_items:
        return FrequentItemsets(out, n)

    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent_items, key=lambda i: (-frequent_items[i], i))
        )
    }
    tree = _build_tree(
        ((t.items.items, 1) for t in database), order, min_count, frequent_items
    )
    result: Dict[Itemset, int] = {}
    try:
        _mine_tree(tree, (), min_count, result, max_size, monitor)
    except RunInterrupted:
        pass  # keep the exact itemsets emitted before the stop
    # _mine_tree re-derives singletons too; merge (counts agree by
    # construction) and keep the direct-scan singletons as authoritative.
    result.update(out)
    return FrequentItemsets(result, n)
