"""Candidate support-counting strategies.

Apriori is agnostic to *how* candidate supports are counted per pass;
this module provides the two classic strategies behind one interface:

* :class:`DictCounter` — direct subset enumeration against a candidate
  dictionary.  For a transaction of size t and candidate size k it either
  enumerates the C(t, k) subsets (when small) or probes each candidate.
* :class:`HashTreeCounter` — the Agrawal–Srikant hash tree
  (:mod:`repro.core.hashtree`), best when |C_k| is large.

Both count each (transaction, candidate) containment exactly once, so the
resulting support counts are identical — a property the test suite checks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Protocol, Sequence

from repro.core.hashtree import HashTree
from repro.core.items import Item, Itemset


class SupportCounter(Protocol):
    """Interface shared by all counting strategies."""

    def count_transaction(self, transaction_items: Sequence[Item]) -> None:
        """Account one transaction."""

    def counts(self) -> Dict[Itemset, int]:
        """Support counts for every candidate (including zero counts)."""


class DictCounter:
    """Direct counting against a candidate dictionary.

    Chooses per transaction between enumerating its k-subsets (cheap when
    the basket is small) and probing every candidate (cheap when there are
    few candidates).  Counts are keyed by raw item tuples internally —
    building an :class:`Itemset` per probed subset would dominate the
    runtime of large scans.
    """

    def __init__(self, candidates: Iterable[Itemset]):
        self._counts: Dict[tuple, int] = {c.items: 0 for c in candidates}
        sizes = {len(c) for c in self._counts}
        if len(sizes) > 1:
            raise ValueError(f"all candidates must share one size, got sizes {sizes}")
        self._k = sizes.pop() if sizes else 0

    def count_transaction(self, transaction_items: Sequence[Item]) -> None:
        k = self._k
        t = len(transaction_items)
        if k == 0 or t < k:
            return
        counts = self._counts
        n_subsets = 1
        for i in range(k):
            n_subsets = n_subsets * (t - i) // (i + 1)
            if n_subsets > 4 * len(counts):
                break
        if n_subsets <= 4 * len(counts):
            # Transaction items are sorted, so each combination tuple is
            # already in canonical (sorted) order.
            for combo in combinations(transaction_items, k):
                if combo in counts:
                    counts[combo] += 1
        else:
            transaction_set = set(transaction_items)
            for candidate in counts:
                if all(item in transaction_set for item in candidate):
                    counts[candidate] += 1

    def counts(self) -> Dict[Itemset, int]:
        return {Itemset(items): count for items, count in self._counts.items()}


class HashTreeCounter:
    """Hash-tree-backed counting (see :mod:`repro.core.hashtree`)."""

    def __init__(
        self,
        candidates: Iterable[Itemset],
        fanout: int = 8,
        leaf_capacity: int = 16,
    ):
        self._tree = HashTree(list(candidates), fanout=fanout, leaf_capacity=leaf_capacity)

    def count_transaction(self, transaction_items: Sequence[Item]) -> None:
        self._tree.count_transaction(transaction_items)

    def counts(self) -> Dict[Itemset, int]:
        return self._tree.counts()


def auto_strategy(
    n_candidates: int, k: int, hash_tree_threshold: int = 4096
) -> str:
    """The ``"auto"`` heuristic, shared with the backend registry.

    For small candidate sizes (k <= 3) the dict counter's
    subset-enumeration path costs O(C(t, k)) per transaction — at most a
    few hundred hashed tuple probes — and beats the hash tree's pointer
    chasing regardless of how many candidates there are.  The hash tree
    (the 1994 design, kept both for fidelity and for the deep-k case)
    only wins once k is large enough that C(t, k) explodes while the
    candidate set is also too large to probe directly.
    """
    if k > 3 and n_candidates >= hash_tree_threshold:
        return "hashtree"
    return "dict"


def make_counter(
    candidates: Sequence[Itemset],
    strategy: str = "auto",
    hash_tree_threshold: int = 4096,
) -> SupportCounter:
    """Build a per-transaction counter for one Apriori pass.

    Args:
        candidates: the candidate k-itemsets of this pass.
        strategy: ``"dict"``, ``"hashtree"`` or ``"auto"``
            (:func:`auto_strategy`).
        hash_tree_threshold: candidate count at which ``"auto"`` switches
            for large candidate sizes.

    The vertical (bitmap) backend does not fit the per-transaction
    :class:`SupportCounter` interface — it counts a whole pass at once
    over a columnar segment; select it through the registry in
    :mod:`repro.columnar.backends` instead.
    """
    if strategy == "auto":
        sizes = {len(c) for c in candidates}
        k = max(sizes) if sizes else 0
        strategy = auto_strategy(len(candidates), k, hash_tree_threshold)
    if strategy == "dict":
        return DictCounter(candidates)
    if strategy == "hashtree":
        return HashTreeCounter(candidates)
    raise ValueError(f"unknown counting strategy {strategy!r}")
