"""Interestingness measures for association rules.

Beyond the paper's support/confidence framework, this module provides the
era-standard secondary measures (lift, leverage, conviction) and the
statistical-significance p-value of Megiddo & Srikant (KDD 1998): the
probability, under independence of X and Y, that X ∪ Y co-occurs in at
least the observed number of transactions.
"""

from __future__ import annotations

import math

from repro.errors import MiningParameterError


def validate_fraction(name: str, value: float) -> None:
    """Raise unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise MiningParameterError(f"{name} must be in [0, 1], got {value}")


def confidence(support_xy: float, support_x: float) -> float:
    """conf(X ⇒ Y) = supp(X ∪ Y) / supp(X); 0.0 when X never occurs."""
    if support_x <= 0.0:
        return 0.0
    return min(support_xy / support_x, 1.0)


def lift(support_xy: float, support_x: float, support_y: float) -> float:
    """lift(X ⇒ Y) = supp(X ∪ Y) / (supp(X) * supp(Y)).

    1.0 means independence; > 1 positive correlation.  Returns ``inf``
    when either marginal support is zero but the joint is positive.
    """
    denominator = support_x * support_y
    if denominator <= 0.0:
        return math.inf if support_xy > 0.0 else 0.0
    return support_xy / denominator


def leverage(support_xy: float, support_x: float, support_y: float) -> float:
    """leverage = supp(X ∪ Y) − supp(X) * supp(Y) (Piatetsky-Shapiro)."""
    return support_xy - support_x * support_y


def conviction(support_y: float, rule_confidence: float) -> float:
    """conviction = (1 − supp(Y)) / (1 − conf).

    ``inf`` for exact rules (confidence 1).
    """
    if rule_confidence >= 1.0:
        return math.inf
    return (1.0 - support_y) / (1.0 - rule_confidence)


def rule_p_value(
    n_transactions: int,
    count_xy: int,
    support_x: float,
    support_y: float,
) -> float:
    """Megiddo–Srikant significance: P[Binomial(n, px*py) >= count_xy].

    A small value means X and Y are unlikely to co-occur that often by
    chance, i.e. the rule is statistically significant.
    """
    if n_transactions <= 0:
        return 1.0
    if count_xy <= 0:
        return 1.0
    p = support_x * support_y
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    return _binomial_sf(count_xy - 1, n_transactions, p)


def _binomial_sf(k: int, n: int, p: float) -> float:
    """P[Binomial(n, p) > k], numerically robust for mining-scale n.

    Uses scipy when available (regularized incomplete beta), otherwise a
    log-space summation fallback.
    """
    try:
        from scipy.stats import binom

        return float(binom.sf(k, n, p))
    except Exception:  # pragma: no cover - scipy is installed in this repo
        return _binomial_sf_fallback(k, n, p)


def _binomial_sf_fallback(k: int, n: int, p: float) -> float:
    if k >= n:
        return 0.0
    if k < 0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for i in range(k + 1, n + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
        if total >= 1.0:
            return 1.0
    return min(total, 1.0)


def is_significant(
    n_transactions: int,
    count_xy: int,
    support_x: float,
    support_y: float,
    alpha: float = 0.05,
) -> bool:
    """True when the rule's p-value is at most ``alpha``."""
    validate_fraction("alpha", alpha)
    return rule_p_value(n_transactions, count_xy, support_x, support_y) <= alpha
