"""The Agrawal–Srikant hash tree for candidate support counting.

Apriori's inner loop asks, for each transaction, which candidate
k-itemsets it contains.  Checking every candidate against every
transaction is O(|C_k| * |D|); the hash tree prunes that to candidates
sharing hashed prefixes with the transaction.

Structure: interior nodes hash the next item of a candidate into one of
``fanout`` buckets; leaf nodes hold up to ``leaf_capacity`` candidates and
split when they overflow (unless already at depth ``k``, in which case the
leaf simply grows).  Support counts live in a single central dictionary, so
a leaf reached through several branch positions of the same transaction can
never double-count: matches are collected into a per-transaction set first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.items import Item, Itemset


class _Node:
    __slots__ = ("children", "candidates", "depth")

    def __init__(self, depth: int):
        self.children: Optional[Dict[int, "_Node"]] = None
        self.candidates: Optional[List[Tuple[Item, ...]]] = []
        self.depth = depth

    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """Hash tree over a fixed set of k-itemset candidates.

    >>> tree = HashTree([Itemset.of(1, 2), Itemset.of(1, 3), Itemset.of(2, 3)])
    >>> tree.count_transaction((1, 2, 3))
    >>> tree.counts()[Itemset.of(1, 2)]
    1
    """

    def __init__(
        self,
        candidates: Sequence[Itemset] = (),
        fanout: int = 8,
        leaf_capacity: int = 16,
    ):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        sizes = {len(c) for c in candidates}
        if len(sizes) > 1:
            raise ValueError(f"all candidates must share one size, got sizes {sizes}")
        self._k = sizes.pop() if sizes else 0
        self._fanout = fanout
        self._leaf_capacity = leaf_capacity
        self._root = _Node(depth=0)
        self._counts: Dict[Tuple[Item, ...], int] = {}
        for candidate in candidates:
            self._insert(candidate.items)

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def k(self) -> int:
        """The candidate size this tree was built for."""
        return self._k

    def _hash(self, item: Item) -> int:
        return item % self._fanout

    def _insert(self, items: Tuple[Item, ...]) -> None:
        if items in self._counts:
            return
        self._counts[items] = 0
        node = self._root
        while not node.is_leaf():
            assert node.children is not None
            bucket = self._hash(items[node.depth])
            child = node.children.get(bucket)
            if child is None:
                child = _Node(node.depth + 1)
                node.children[bucket] = child
            node = child
        assert node.candidates is not None
        node.candidates.append(items)
        if len(node.candidates) > self._leaf_capacity and node.depth < self._k:
            self._split(node)

    def _split(self, node: _Node) -> None:
        stored = node.candidates or []
        node.children = {}
        node.candidates = None
        for items in stored:
            bucket = self._hash(items[node.depth])
            child = node.children.get(bucket)
            if child is None:
                child = _Node(node.depth + 1)
                node.children[bucket] = child
            assert child.candidates is not None
            child.candidates.append(items)
        for child in node.children.values():
            assert child.candidates is not None
            if len(child.candidates) > self._leaf_capacity and child.depth < self._k:
                self._split(child)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def count_transaction(self, transaction_items: Sequence[Item]) -> None:
        """Increment every candidate contained in the given transaction.

        ``transaction_items`` must be sorted ascending (as
        :class:`~repro.core.items.Itemset` guarantees).
        """
        if self._k == 0 or len(transaction_items) < self._k:
            return
        matched: Set[Tuple[Item, ...]] = set()
        self._visit(self._root, transaction_items, 0, matched)
        for items in matched:
            self._counts[items] += 1

    def _visit(
        self,
        node: _Node,
        items: Sequence[Item],
        start: int,
        matched: Set[Tuple[Item, ...]],
    ) -> None:
        if node.is_leaf():
            assert node.candidates is not None
            for candidate in node.candidates:
                if candidate not in matched and self._contains(items, candidate):
                    matched.add(candidate)
            return
        assert node.children is not None
        # Branch on each remaining transaction item, keeping enough items
        # after the branch point to complete a candidate of size k.
        max_start = len(items) - (self._k - node.depth) + 1
        visited_children: Set[int] = set()
        for position in range(start, max_start):
            bucket = self._hash(items[position])
            child = node.children.get(bucket)
            if child is None:
                continue
            key = id(child) ^ position  # distinct (child, position) pairs
            if key in visited_children:
                continue
            visited_children.add(key)
            self._visit(child, items, position + 1, matched)

    @staticmethod
    def _contains(transaction: Sequence[Item], candidate: Tuple[Item, ...]) -> bool:
        j = 0
        n = len(transaction)
        for item in candidate:
            while j < n and transaction[j] < item:
                j += 1
            if j >= n or transaction[j] != item:
                return False
            j += 1
        return True

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def counts(self) -> Dict[Itemset, int]:
        """Final support counts keyed by candidate itemset."""
        return {Itemset(items): count for items, count in self._counts.items()}
