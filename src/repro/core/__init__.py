"""Core (non-temporal) association rule mining substrate.

Implements the classical Agrawal–Srikant machinery the paper builds on:
itemsets, timestamped transactions, hash-tree support counting, the
Apriori algorithm and ap-genrules rule generation.
"""

from repro.core.apriori import (
    AprioriOptions,
    FrequentItemsets,
    apriori,
    brute_force_frequent_itemsets,
    generate_candidates,
)
from repro.core.fpgrowth import fpgrowth
from repro.core.partition import partition
from repro.core.items import Item, ItemCatalog, Itemset, itemset_from_any
from repro.core.rulegen import AssociationRule, RuleKey, generate_rules, mine_rules
from repro.core.transactions import Transaction, TransactionDatabase

__all__ = [
    "AprioriOptions",
    "AssociationRule",
    "FrequentItemsets",
    "Item",
    "ItemCatalog",
    "Itemset",
    "RuleKey",
    "Transaction",
    "TransactionDatabase",
    "apriori",
    "brute_force_frequent_itemsets",
    "fpgrowth",
    "generate_candidates",
    "generate_rules",
    "partition",
    "itemset_from_any",
    "mine_rules",
]
