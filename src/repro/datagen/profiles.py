"""Named dataset profiles and T·I·D name parsing.

Benchmarks refer to datasets by the literature's conventional names
(``T10.I4.D100K``); :func:`parse_profile` turns such a name into a
:class:`~repro.datagen.quest.QuestConfig`, and :data:`PROFILES` registers
the scaled-down variants the benchmark suite actually runs (laptop-scale,
per the repro calibration).
"""

from __future__ import annotations

import re
from typing import Dict

from repro.datagen.quest import QuestConfig
from repro.errors import MiningParameterError

_NAME_RE = re.compile(
    r"^T(?P<t>\d+(?:\.\d+)?)\.I(?P<i>\d+(?:\.\d+)?)\.D(?P<d>\d+)(?P<suffix>[KM]?)$",
    re.IGNORECASE,
)


def parse_profile(
    name: str,
    n_items: int = 1000,
    n_patterns: int = 200,
    seed: int = 0,
) -> QuestConfig:
    """Parse ``"T10.I4.D100K"``-style names into a :class:`QuestConfig`.

    >>> parse_profile("T5.I2.D10K").n_transactions
    10000
    """
    match = _NAME_RE.match(name.strip())
    if match is None:
        raise MiningParameterError(f"cannot parse dataset name {name!r}")
    multiplier = {"": 1, "K": 1000, "M": 1_000_000}[match.group("suffix").upper()]
    return QuestConfig(
        n_transactions=int(match.group("d")) * multiplier,
        avg_transaction_size=float(match.group("t")),
        avg_pattern_size=float(match.group("i")),
        n_items=n_items,
        n_patterns=n_patterns,
        seed=seed,
    )


PROFILES: Dict[str, QuestConfig] = {
    # The classic names, scaled to laptop size for the benchmark suite.
    "T5.I2.D10K": parse_profile("T5.I2.D10K", n_items=500, n_patterns=100, seed=1),
    "T10.I4.D10K": parse_profile("T10.I4.D10K", n_items=1000, n_patterns=200, seed=2),
    "T10.I4.D20K": parse_profile("T10.I4.D20K", n_items=1000, n_patterns=200, seed=3),
    "T15.I4.D10K": parse_profile("T15.I4.D10K", n_items=1000, n_patterns=200, seed=4),
    "T10.I6.D20K": parse_profile("T10.I6.D20K", n_items=1000, n_patterns=200, seed=5),
}
