"""Synthetic data: the Quest generator plus temporal rule embedding."""

from repro.datagen.profiles import PROFILES, parse_profile
from repro.datagen.quest import QuestConfig, generate_baskets, item_label
from repro.datagen.temporal import (
    EmbeddedRule,
    EmbeddedTrend,
    TemporalDataset,
    TemporalDatasetSpec,
    generate_temporal_dataset,
    periodic_dataset,
    seasonal_dataset,
)

__all__ = [
    "PROFILES",
    "EmbeddedRule",
    "EmbeddedTrend",
    "QuestConfig",
    "TemporalDataset",
    "TemporalDatasetSpec",
    "generate_baskets",
    "generate_temporal_dataset",
    "item_label",
    "parse_profile",
    "periodic_dataset",
    "seasonal_dataset",
]
