"""Temporal dataset construction with embedded ground-truth rules.

The paper's experiments use synthetic datasets in which "many
time-related association rules ... would have been missed with
traditional approaches".  This module builds such datasets: a Quest-style
background stream of timestamped transactions, into which *embedded
temporal rules* are injected — an itemset added with probability
``probability`` to transactions falling inside the rule's temporal
feature (and with ``background_probability`` outside it).

Because the embedded rules are recorded as ground truth, experiment
harnesses can score recovery precision/recall instead of eyeballing
output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.items import Itemset
from repro.core.transactions import TransactionDatabase
from repro.datagen.quest import QuestConfig, generate_baskets, item_label
from repro.errors import MiningParameterError
from repro.mining.constrained import feature_predicate
from repro.mining.tasks import TemporalFeature
from repro.temporal.calendar_algebra import CalendarExpression, CalendarPattern
from repro.temporal.granularity import Granularity
from repro.temporal.interval import IntervalSet, TimeInterval
from repro.temporal.periodicity import CalendricPeriodicity, CyclicPeriodicity


@dataclass(frozen=True)
class EmbeddedRule:
    """A ground-truth temporal rule injected into a dataset.

    Attributes:
        labels: item labels of the rule's itemset (injected together, so
            every split of the itemset holds with confidence ≈ 1 inside
            the feature).
        feature: the temporal feature inside which injection happens.
        probability: chance of injection into an in-feature transaction.
        background_probability: chance of injection outside the feature
            (noise; keeps the rule from being trivially absent globally).
    """

    labels: Tuple[str, ...]
    feature: TemporalFeature
    probability: float = 0.6
    background_probability: float = 0.0

    def __post_init__(self) -> None:
        if len(self.labels) < 2:
            raise MiningParameterError("embedded rules need >= 2 items")
        if not 0.0 < self.probability <= 1.0:
            raise MiningParameterError("probability must be in (0, 1]")
        if not 0.0 <= self.background_probability <= 1.0:
            raise MiningParameterError("background_probability must be in [0, 1]")


@dataclass(frozen=True)
class EmbeddedTrend:
    """A ground-truth *trending* itemset injected into a dataset.

    The injection probability ramps linearly from ``start_probability``
    at the dataset's start to ``end_probability`` at its end — an
    emerging pattern when rising, a declining one when falling.
    """

    labels: Tuple[str, ...]
    start_probability: float
    end_probability: float

    def __post_init__(self) -> None:
        if len(self.labels) < 1:
            raise MiningParameterError("embedded trends need >= 1 item")
        for name, value in (
            ("start_probability", self.start_probability),
            ("end_probability", self.end_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise MiningParameterError(f"{name} must be in [0, 1]")

    def probability_at(self, fraction: float) -> float:
        """Injection probability at a relative position in [0, 1]."""
        return self.start_probability + fraction * (
            self.end_probability - self.start_probability
        )


@dataclass(frozen=True)
class TemporalDatasetSpec:
    """Recipe for a temporal synthetic dataset.

    Attributes:
        quest: background basket generator parameters.
        start / end: the dataset's time window (half-open).
        embedded: the ground-truth temporal rules.
        granularity: granularity at which features classify units.
        seed: RNG seed for timestamps and injections.
    """

    quest: QuestConfig
    start: datetime
    end: datetime
    embedded: Tuple[EmbeddedRule, ...] = ()
    trends: Tuple[EmbeddedTrend, ...] = ()
    granularity: Granularity = Granularity.DAY
    seed: int = 0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise MiningParameterError("end must be after start")


@dataclass
class TemporalDataset:
    """A generated dataset plus its ground truth."""

    database: TransactionDatabase
    spec: TemporalDatasetSpec

    @property
    def embedded(self) -> Tuple[EmbeddedRule, ...]:
        return self.spec.embedded

    def window(self) -> TimeInterval:
        return TimeInterval(self.spec.start, self.spec.end)


def generate_temporal_dataset(spec: TemporalDatasetSpec) -> TemporalDataset:
    """Build the dataset: background baskets + timestamps + injections.

    Timestamps are uniform over ``[start, end)``; the database ends up
    time-sorted.  Embedded itemset labels are registered in the catalog
    even when an injection never fires (so lookups stay total).
    """
    rng = random.Random(spec.seed)
    baskets = generate_baskets(spec.quest)
    span_seconds = (spec.end - spec.start).total_seconds()
    predicates = [
        (rule, feature_predicate(rule.feature, spec.granularity))
        for rule in spec.embedded
    ]
    database = TransactionDatabase()
    for rule in spec.embedded:
        for label in rule.labels:
            database.catalog.add(label)
    for trend in spec.trends:
        for label in trend.labels:
            database.catalog.add(label)
    stamps = sorted(
        spec.start + timedelta(seconds=rng.random() * span_seconds)
        for _ in range(len(baskets))
    )
    for stamp, basket in zip(stamps, baskets):
        labels = [item_label(i) for i in basket]
        for rule, in_feature in predicates:
            probability = (
                rule.probability
                if in_feature(stamp)
                else rule.background_probability
            )
            if probability and rng.random() < probability:
                labels.extend(rule.labels)
        if spec.trends:
            fraction = (stamp - spec.start).total_seconds() / span_seconds
            for trend in spec.trends:
                if rng.random() < trend.probability_at(fraction):
                    labels.extend(trend.labels)
        database.add(stamp, labels)
    return TemporalDataset(database=database, spec=spec)


# ----------------------------------------------------------------------
# Ready-made dataset shapes used by the experiments
# ----------------------------------------------------------------------


def seasonal_dataset(
    n_transactions: int = 6000,
    year: int = 2025,
    n_seasonal_rules: int = 3,
    probability: float = 0.6,
    quest_seed: int = 11,
    seed: int = 13,
    quest: Optional[QuestConfig] = None,
) -> TemporalDataset:
    """One year of data with rules valid only in specific month ranges.

    Rule ``k`` occupies a distinct 2–3 month window; items are named
    ``season<k>_a`` / ``season<k>_b``.
    """
    windows = [
        (datetime(year, 6, 1), datetime(year, 9, 1)),   # summer
        (datetime(year, 12, 1), datetime(year + 1, 1, 1)),  # december
        (datetime(year, 2, 1), datetime(year, 4, 1)),   # feb-mar
        (datetime(year, 9, 1), datetime(year, 11, 1)),  # sep-oct
    ]
    embedded = tuple(
        EmbeddedRule(
            labels=(f"season{k}_a", f"season{k}_b"),
            feature=TimeInterval(*windows[k % len(windows)]),
            probability=probability,
        )
        for k in range(n_seasonal_rules)
    )
    spec = TemporalDatasetSpec(
        quest=quest
        or QuestConfig(
            n_transactions=n_transactions,
            avg_transaction_size=6,
            avg_pattern_size=3,
            n_items=300,
            n_patterns=60,
            seed=quest_seed,
        ),
        start=datetime(year, 1, 1),
        end=datetime(year + 1, 1, 1),
        embedded=embedded,
        granularity=Granularity.MONTH,
        seed=seed,
    )
    return generate_temporal_dataset(spec)


def periodic_dataset(
    n_transactions: int = 8000,
    start: datetime = datetime(2025, 1, 1),
    n_days: int = 180,
    probability: float = 0.7,
    quest_seed: int = 21,
    seed: int = 23,
    include_monthly: bool = True,
) -> TemporalDataset:
    """Daily data with weekend and first-week-of-month periodic rules.

    * ``weekend_a / weekend_b`` injected on Saturdays and Sundays;
    * ``payday_a / payday_b`` injected on the 1st–7th of each month
      (when ``include_monthly``).
    """
    embedded: List[EmbeddedRule] = [
        EmbeddedRule(
            labels=("weekend_a", "weekend_b"),
            feature=CalendarPattern(weekdays=frozenset({5, 6})),
            probability=probability,
        )
    ]
    if include_monthly:
        embedded.append(
            EmbeddedRule(
                labels=("payday_a", "payday_b"),
                feature=CalendarPattern(days=frozenset(range(1, 8))),
                probability=probability,
            )
        )
    spec = TemporalDatasetSpec(
        quest=QuestConfig(
            n_transactions=n_transactions,
            avg_transaction_size=6,
            avg_pattern_size=3,
            n_items=300,
            n_patterns=60,
            seed=quest_seed,
        ),
        start=start,
        end=start + timedelta(days=n_days),
        embedded=tuple(embedded),
        granularity=Granularity.DAY,
        seed=seed,
    )
    return generate_temporal_dataset(spec)
