"""The IBM Quest synthetic market-basket generator (Agrawal & Srikant).

Reimplements the synthetic data family used throughout the 1990s
association-mining literature — dataset names like ``T10.I4.D100K`` mean
average transaction size 10, average maximal-pattern size 4, 100 000
transactions.  The generator:

1. draws ``n_patterns`` *maximal potentially frequent itemsets*, each
   with Poisson-distributed size around ``avg_pattern_size``, reusing a
   ``correlation`` fraction of items from the previous pattern;
2. assigns each pattern an exponential weight (normalized to a
   probability) and a *corruption level* (items are dropped from the
   pattern with that probability when it is inserted);
3. builds each transaction by sampling patterns by weight and inserting
   their (possibly corrupted) items until the Poisson-drawn transaction
   size is reached.

The reproduction matches the published construction closely enough to
exhibit the same support skew; exact RNG sequences obviously differ.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import MiningParameterError


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of a Quest dataset (the T/I/D/N knobs).

    Attributes:
        n_transactions: |D|, number of transactions.
        avg_transaction_size: T, mean basket size.
        avg_pattern_size: I, mean size of the potentially frequent
            itemsets.
        n_items: N, size of the item universe.
        n_patterns: L, number of potentially frequent itemsets.
        correlation: fraction of a pattern's items reused from the
            previous pattern.
        corruption_mean: mean corruption level (items dropped on insert).
        seed: RNG seed (datasets are fully reproducible).
    """

    n_transactions: int
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    n_items: int = 1000
    n_patterns: int = 200
    correlation: float = 0.5
    corruption_mean: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise MiningParameterError("n_transactions must be >= 0")
        if self.avg_transaction_size < 1:
            raise MiningParameterError("avg_transaction_size must be >= 1")
        if self.avg_pattern_size < 1:
            raise MiningParameterError("avg_pattern_size must be >= 1")
        if self.n_items < 1:
            raise MiningParameterError("n_items must be >= 1")
        if self.n_patterns < 1:
            raise MiningParameterError("n_patterns must be >= 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise MiningParameterError("correlation must be in [0, 1]")
        if not 0.0 <= self.corruption_mean <= 1.0:
            raise MiningParameterError("corruption_mean must be in [0, 1]")

    def name(self) -> str:
        """The conventional dataset name, e.g. ``"T10.I4.D100K"``."""
        return (
            f"T{self.avg_transaction_size:g}.I{self.avg_pattern_size:g}"
            f".D{_compact(self.n_transactions)}"
        )


def _compact(value: int) -> str:
    if value % 1_000_000 == 0 and value >= 1_000_000:
        return f"{value // 1_000_000}M"
    if value % 1000 == 0 and value >= 1000:
        return f"{value // 1000}K"
    return str(value)


@dataclass(frozen=True)
class _Pattern:
    items: Tuple[int, ...]
    weight: float
    corruption: float


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (means here are small)."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _draw_patterns(config: QuestConfig, rng: random.Random) -> List[_Pattern]:
    patterns: List[_Pattern] = []
    previous: Tuple[int, ...] = ()
    weights: List[float] = []
    for _ in range(config.n_patterns):
        size = max(1, _poisson(rng, config.avg_pattern_size - 1) + 1)
        chosen: set = set()
        if previous:
            take = int(round(config.correlation * min(size, len(previous))))
            chosen.update(rng.sample(previous, take) if take else ())
        while len(chosen) < size:
            chosen.add(rng.randrange(config.n_items))
        items = tuple(sorted(chosen))
        corruption = min(0.9, max(0.0, rng.gauss(config.corruption_mean, 0.1)))
        weight = rng.expovariate(1.0)
        patterns.append(_Pattern(items=items, weight=weight, corruption=corruption))
        weights.append(weight)
        previous = items
    total = sum(weights)
    return [
        _Pattern(items=p.items, weight=p.weight / total, corruption=p.corruption)
        for p in patterns
    ]


def generate_baskets(config: QuestConfig) -> List[Tuple[int, ...]]:
    """All transactions of the dataset as sorted item-id tuples.

    Item ids are in ``range(config.n_items)``.
    """
    rng = random.Random(config.seed)
    patterns = _draw_patterns(config, rng)
    cumulative: List[float] = []
    running = 0.0
    for pattern in patterns:
        running += pattern.weight
        cumulative.append(running)

    def pick_pattern() -> _Pattern:
        target = rng.random() * running
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return patterns[lo]

    baskets: List[Tuple[int, ...]] = []
    for _ in range(config.n_transactions):
        size = max(1, _poisson(rng, config.avg_transaction_size - 1) + 1)
        basket: set = set()
        guard = 0
        while len(basket) < size and guard < 50:
            guard += 1
            pattern = pick_pattern()
            kept = [i for i in pattern.items if rng.random() >= pattern.corruption]
            if not kept:
                continue
            if len(basket) + len(kept) > size and basket:
                # Oversize insert: keep it half the time (as in Quest),
                # otherwise save the pattern for the next transaction.
                if rng.random() < 0.5:
                    basket.update(kept)
                break
            basket.update(kept)
        if not basket:
            basket.add(rng.randrange(config.n_items))
        baskets.append(tuple(sorted(basket)))
    return baskets


def item_label(item_id: int) -> str:
    """Canonical label of a Quest item id, e.g. ``"i0042"``."""
    return f"i{item_id:04d}"
