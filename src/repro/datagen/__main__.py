"""Entry point for ``python -m repro.datagen``."""

import sys

from repro.datagen.cli import main

sys.exit(main())
