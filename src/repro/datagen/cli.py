"""Command-line dataset generation: ``python -m repro.datagen``.

Writes a long-format CSV (tid, ts, item) that the IQMS REPL's ``.load``
command and :func:`repro.db.sqlite_store.load_csv` consume.

Examples::

    python -m repro.datagen --profile T10.I4.D10K --out quest.csv
    python -m repro.datagen --scenario seasonal --transactions 6000 --out sales.csv
    python -m repro.datagen --scenario periodic --transactions 8000 --out daily.csv
"""

from __future__ import annotations

import argparse
import csv
import sys
from datetime import datetime, timedelta
from typing import Optional, Sequence

from repro.core.transactions import TransactionDatabase
from repro.datagen.profiles import parse_profile
from repro.datagen.quest import generate_baskets, item_label
from repro.datagen.temporal import periodic_dataset, seasonal_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datagen",
        description="Generate synthetic temporal market-basket datasets.",
    )
    parser.add_argument(
        "--out", required=True, help="output CSV path (columns: tid, ts, item)"
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--profile",
        help="Quest profile name, e.g. T10.I4.D10K (timestamps spread over one year)",
    )
    group.add_argument(
        "--scenario",
        choices=("seasonal", "periodic"),
        help="temporal scenario with embedded ground-truth rules",
    )
    parser.add_argument("--transactions", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--start-year", type=int, default=2025)
    return parser


def _quest_database(profile: str, seed: int, start_year: int) -> TransactionDatabase:
    config = parse_profile(profile, seed=seed)
    baskets = generate_baskets(config)
    database = TransactionDatabase()
    start = datetime(start_year, 1, 1)
    step = 365 * 86400 / max(len(baskets), 1)
    for index, basket in enumerate(baskets):
        database.add(
            start + timedelta(seconds=index * step),
            [item_label(i) for i in basket],
        )
    return database


def _write_csv(database: TransactionDatabase, path: str) -> int:
    catalog = database.catalog
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["tid", "ts", "item"])
        for transaction in database:
            stamp = transaction.timestamp.isoformat()
            for item in transaction.items:
                writer.writerow([transaction.tid, stamp, catalog.label(item)])
    return len(database)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        database = _quest_database(args.profile, args.seed, args.start_year)
        description = f"profile {args.profile}"
    elif args.scenario == "seasonal":
        dataset = seasonal_dataset(
            n_transactions=args.transactions, year=args.start_year, seed=args.seed
        )
        database = dataset.database
        description = f"seasonal scenario ({len(dataset.embedded)} embedded rules)"
    else:
        dataset = periodic_dataset(
            n_transactions=args.transactions,
            start=datetime(args.start_year, 1, 1),
            seed=args.seed,
        )
        database = dataset.database
        description = f"periodic scenario ({len(dataset.embedded)} embedded rules)"
    written = _write_csv(database, args.out)
    print(f"wrote {written} transactions ({description}) to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
