"""Temporal profiles — the support of an itemset over time.

The first question an analyst asks about a pattern is "what does its
support look like over time?".  A :class:`TemporalProfile` is that
series: per-unit relative support of one itemset, with summary
statistics and an ASCII sparkline the IQMS REPL renders inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import ItemCatalog, Itemset, itemset_from_any
from repro.core.transactions import TransactionDatabase
from repro.mining.context import TemporalContext
from repro.temporal.granularity import Granularity, unit_label

_SPARKS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TemporalProfile:
    """Per-unit support series of one itemset."""

    itemset: Itemset
    granularity: Granularity
    first_unit: int
    counts: Tuple[int, ...]
    unit_sizes: Tuple[int, ...]

    @property
    def supports(self) -> Tuple[float, ...]:
        """Relative support per unit (0.0 in empty units)."""
        return tuple(
            count / size if size else 0.0
            for count, size in zip(self.counts, self.unit_sizes)
        )

    @property
    def n_units(self) -> int:
        return len(self.counts)

    def global_support(self) -> float:
        total = sum(self.unit_sizes)
        return sum(self.counts) / total if total else 0.0

    def peak(self) -> Tuple[int, float]:
        """(absolute unit index, support) of the strongest unit."""
        supports = self.supports
        offset = int(np.argmax(supports)) if supports else 0
        return self.first_unit + offset, supports[offset] if supports else 0.0

    def burstiness(self) -> float:
        """Peak-to-average support ratio (1.0 = flat; higher = seasonal).

        The quick screen for "is this pattern temporal at all?": flat
        profiles have nothing for the temporal tasks to find.
        """
        average = self.global_support()
        if average <= 0.0:
            return 0.0
        return self.peak()[1] / average

    def sparkline(self) -> str:
        """One character per unit, height ∝ support."""
        supports = self.supports
        top = max(supports, default=0.0)
        if top <= 0.0:
            return _SPARKS[0] * len(supports)
        return "".join(
            _SPARKS[min(int(s / top * (len(_SPARKS) - 1) + 0.5), len(_SPARKS) - 1)]
            for s in supports
        )

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        rendered = (
            catalog.format(self.itemset)
            if catalog is not None
            else ", ".join(str(i) for i in self.itemset)
        )
        peak_unit, peak_support = self.peak()
        return (
            f"{{{rendered}}} over {self.n_units} {self.granularity}s  "
            f"{self.sparkline()}\n"
            f"  global supp={self.global_support():.3f}  "
            f"peak={peak_support:.3f} @ {unit_label(peak_unit, self.granularity)}  "
            f"burstiness={self.burstiness():.1f}x"
        )

    def __str__(self) -> str:
        return self.format()


def support_profile(
    database: TransactionDatabase,
    itemset: object,
    granularity: Granularity,
    context: Optional[TemporalContext] = None,
) -> TemporalProfile:
    """Compute the temporal profile of ``itemset`` (ids, labels or Itemset)."""
    target = itemset_from_any(itemset, database.catalog)
    if context is None:
        context = TemporalContext(database, granularity)
    counts = context.count_candidates_per_unit([target])[target]
    return TemporalProfile(
        itemset=target,
        granularity=granularity,
        first_unit=context.first_unit,
        counts=tuple(int(c) for c in counts),
        unit_sizes=tuple(int(s) for s in context.unit_sizes),
    )
