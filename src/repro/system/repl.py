"""The IQMI terminal front-end — an interactive TML/SQL shell.

The paper's prototype exposes an "integrated query and mining interface";
this REPL is its terminal counterpart.  Statements end with ``;`` and may
span lines; dot-commands control the session::

    iqms> SHOW SUMMARY;
    iqms> MINE PERIODS FROM sales AT GRANULARITY month
     ...>   WITH SUPPORT >= 0.2, CONFIDENCE >= 0.6 HAVING COVERAGE >= 2;
    iqms> .table          -- last report as a table
    iqms> .log            -- the IQMI workflow log
    iqms> .quit
"""

from __future__ import annotations

import signal
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.system.session import IqmsSession

_HELP = """\
TML statements (end with ';'):
  SHOW SUMMARY; | SHOW ITEMS LIMIT n; | SHOW VOLUME BY <granularity>;
  SELECT ... ;                                   -- SQL over the store
  MINE PERIODS FROM <src> AT GRANULARITY <g>
    WITH SUPPORT >= s, CONFIDENCE >= c
    HAVING FREQUENCY >= f, COVERAGE >= n [, SIZE <= k, CONSEQUENT <= m];
  MINE PERIODICITIES FROM <src> AT GRANULARITY <g>
    WITH SUPPORT >= s, CONFIDENCE >= c
    HAVING PERIOD <= p, MATCH >= m, REPETITIONS >= r
    [INCLUDING CALENDAR '<pattern>'] [USING INTERLEAVED];
  MINE RULES FROM <src>
    DURING PERIOD '<start>' TO '<end>' | CALENDAR '<pattern>'
         | EVERY <p> <g> [OFFSET <o>] | <named-calendar>
         | <calendar> AND|OR|MINUS <calendar>
    [CONTAINING '<item>' ...]
    WITH SUPPORT >= s, CONFIDENCE >= c;
  MINE ITEMSETS FROM <src> AT GRANULARITY <g> WITH SUPPORT >= s;
  MINE TRENDS FROM <src> AT GRANULARITY <g> WITH SUPPORT >= s
    [HAVING CHANGE >= c, FIT >= r];
  PROFILE '<item>' [, '<item>'] FROM <src> BY <g>;
  EXPLAIN MINE ...;                              -- describe, don't run
  EXPLAIN ANALYZE MINE ...;                      -- run + timing/span breakdown
  SET BUDGET TIME <s>, CANDIDATES <n>, RULES <n> [STRICT];
  SET BUDGET OFF;                                -- clear run limits
  SET ENGINE dict|hashtree|vertical|packed;      -- pin counting backend
  SET ENGINE AUTO;                               -- back to planner selection
  SET WORKERS <n>;                               -- pin parallel counting passes
  SET WORKERS AUTO;                              -- planner sizes the fan-out
  SET WORKERS OFF;                               -- pin serial execution
  SET TRACE ON|OFF;                              -- span trees on mining runs

Ctrl-C during a MINE cancels that run (a partial report is printed);
the session itself stays alive.

Dot commands:
  .help               this text
  .budget             show the session mining budget
  .engine [name]      show or set the counting backend (auto to unpin)
  .workers [n|auto]   show or set the worker-process count (auto = planner)
  .demo               load a bundled synthetic demo dataset as 'sales'
  .load <name> <csv>  load a (tid,ts,item) CSV as dataset <name>
  .datasets           list registered datasets
  .table              render the last mining report as a table
  .filter <item>      filter the last report by item label
  .profile <src> <g> <item...>   support-over-time sparkline of an itemset
  .export <path>      write the last mining report to <path>.csv/.json
  .serve [port]       share this session's store over HTTP (0 = ephemeral)
  .serve status       queue depth, drain state and journal summary
  .serve stop         shut the HTTP server down
  .stats              last-run diagnostics, span tree, metric counters
  .slow               slow-statement flight recorder (ranked captures)
  .log                show the IQMI workflow log
  .quit               leave the shell
"""


def _format_slow(document) -> str:
    """Render the session flight recorder for the ``.slow`` command."""
    stats = document["stats"]
    entries = document["entries"]
    header = (
        f"flight recorder: threshold {stats['threshold_seconds']:g}s, "
        f"{stats['captured']}/{stats['considered']} statement(s) captured, "
        f"{stats['held']} held (top {stats['top_k']})"
    )
    if not entries:
        return header + "\n(no slow statements captured)"
    lines = [header]
    for rank, entry in enumerate(entries, start=1):
        statement = " ".join(str(entry.get("statement", "")).split())
        if len(statement) > 100:
            statement = statement[:97] + "..."
        suffix = " (partial)" if entry.get("partial") else ""
        traced = " [traced]" if "trace" in entry else ""
        lines.append(
            f"{rank:3d}. {entry.get('duration_seconds', 0.0):8.3f}s"
            f"{suffix}{traced}  {statement}"
        )
    return "\n".join(lines)


def _demo_session(session: IqmsSession) -> str:
    from repro.datagen import seasonal_dataset

    dataset = seasonal_dataset(n_transactions=4000, n_seasonal_rules=2)
    session.load_database("sales", dataset.database)
    return (
        f"loaded demo dataset 'sales': {len(dataset.database)} transactions, "
        f"{len(dataset.embedded)} embedded seasonal rules"
    )


def _dispatch_dot(session: IqmsSession, line: str) -> Optional[str]:
    """Handle a dot-command; returns output text, or None to quit."""
    parts = line.split()
    command = parts[0]
    if command in (".quit", ".exit"):
        return None
    if command == ".help":
        return _HELP
    if command == ".budget":
        budget = session.budget
        if budget is None:
            return "no budget set (SET BUDGET TIME <s>, CANDIDATES <n>, RULES <n>;)"
        return f"budget: {budget.describe()}"
    if command == ".engine":
        if len(parts) == 1:
            from repro.columnar.backends import available_backends

            known = ", ".join(["auto"] + available_backends())
            return f"engine: {session.engine} (available: {known})"
        if len(parts) != 2:
            return "usage: .engine [<backend>|auto]"
        session.set_engine(parts[1])
        return f"engine: {session.engine}"
    if command == ".workers":
        if len(parts) == 1:
            if session.workers is None:
                return "workers: auto (planner-sized)"
            mode = "serial" if session.workers == 1 else "sharded"
            return f"workers: {session.workers} ({mode})"
        if len(parts) == 2 and parts[1].lower() == "auto":
            session.set_workers(None)
            return "workers: auto (planner-sized)"
        if len(parts) != 2 or not parts[1].isdigit() or int(parts[1]) < 1:
            return "usage: .workers [auto|<n>=1]"
        session.set_workers(int(parts[1]))
        return f"workers: {session.workers}"
    if command == ".demo":
        return _demo_session(session)
    if command == ".load":
        if len(parts) != 3:
            return "usage: .load <name> <csv-path>"
        loaded = session.load_csv(parts[1], parts[2])
        return f"loaded {loaded} transactions as {parts[1]!r}"
    if command == ".datasets":
        datasets = session.datasets()
        if not datasets:
            return "(no datasets; try .demo or .load)"
        return "\n".join(f"{name}: {size} transactions" for name, size in datasets.items())
    if command == ".table":
        return session.last_table()
    if command == ".filter":
        if len(parts) != 2:
            return "usage: .filter <item-label>"
        report = session.analyse_item(parts[1])
        return report.format(session._last_catalog())
    if command == ".profile":
        if len(parts) < 4:
            return "usage: .profile <source> <granularity> <item> [<item> ...]"
        from repro.system.profile import support_profile
        from repro.temporal import Granularity

        database = session.environment.resolve(parts[1])
        profile = support_profile(
            database, parts[3:], Granularity.parse(parts[2])
        )
        session.workflow.record(f"profiled {parts[3:]} by {parts[2]}")
        return profile.format(database.catalog)
    if command == ".export":
        if len(parts) != 2:
            return "usage: .export <path.csv|path.json>"
        from repro.system.export import write_report

        report = session._require_report()
        written = write_report(report, parts[1], session._last_catalog())
        session.workflow.record(f"exported {written} rows to {parts[1]}")
        return f"wrote {written} row(s) to {parts[1]}"
    if command == ".serve":
        if len(parts) == 2 and parts[1] == "stop":
            if session.serving_url is None:
                return "not serving"
            session.stop_serving()
            return "stopped serving"
        if len(parts) == 2 and parts[1] == "status":
            if session.serving_url is None or session._service is None:
                return "not serving"
            status = session._service.status()
            scheduler = status["scheduler"]
            journal = status.get("journal", {})
            journal_line = (
                f"journal: {journal.get('path')} "
                f"(states {journal.get('states')})"
                if journal.get("enabled")
                else "journal: disabled"
            )
            return (
                f"serving on {session.serving_url}\n"
                f"queue: {scheduler['queue_depth']}/{scheduler['max_queue_depth']}"
                f" queued, {scheduler['running']} running"
                f"{' (draining)' if scheduler.get('draining') else ''}\n"
                f"{journal_line}"
            )
        if len(parts) > 2 or (len(parts) == 2 and not parts[1].isdigit()):
            return "usage: .serve [<port>|stop|status]"
        if session.serving_url is not None:
            return f"already serving on {session.serving_url} (.serve stop first)"
        port = int(parts[1]) if len(parts) == 2 else 0
        url = session.serve(port=port)
        return (
            f"serving on {url}\n"
            "endpoints: POST /v1/query  GET /v1/jobs/{id}  "
            "DELETE /v1/jobs/{id}  GET /v1/status  GET /v1/metrics"
        )
    if command == ".stats":
        return session.stats()
    if command == ".slow":
        return _format_slow(session.slow_queries())
    if command == ".log":
        return session.workflow.format_log()
    return f"unknown command {command!r}; try .help"


def repl(
    session: Optional[IqmsSession] = None,
    stdin=None,
    stdout=None,
) -> None:
    """Run the interactive loop (injectable streams for testing)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    session = session if session is not None else IqmsSession()
    buffer: List[str] = []

    def emit(text: str) -> None:
        stdout.write(text + "\n")
        stdout.flush()

    emit("IQMS — integrated query and mining system (type .help)")
    while True:
        prompt = " ...> " if buffer else "iqms> "
        stdout.write(prompt)
        stdout.flush()
        line = stdin.readline()
        if not line:
            break
        line = line.rstrip("\n")
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            try:
                output = _dispatch_dot(session, stripped)
            except ReproError as error:
                emit(f"error: {error}")
                continue
            if output is None:
                break
            emit(output)
            continue
        if not stripped and not buffer:
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(buffer)
            buffer = []
            try:
                result = _run_cancellable(session, statement)
                emit(result.text)
            except ReproError as error:
                emit(f"error: {error}")
    session.stop_serving()
    emit("bye")


def _run_cancellable(session: IqmsSession, statement: str):
    """Run one statement with Ctrl-C mapped to cooperative cancellation.

    While the statement executes, SIGINT cancels the mining run (which
    then returns a partial report) instead of raising KeyboardInterrupt
    and killing the shell.  Installing a handler only works on the main
    thread; elsewhere (tests driving the REPL from a worker) the
    statement just runs without the remap.
    """

    def _cancel(signum, frame):
        session.cancel()

    previous = None
    try:
        previous = signal.signal(signal.SIGINT, _cancel)
    except ValueError:
        pass  # not the main thread
    try:
        return session.run(statement)
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)


def main() -> int:
    """Console entry point (``iqms``)."""
    try:
        repl()
    except KeyboardInterrupt:
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
