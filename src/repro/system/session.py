"""The IQMS session — the integrated query and mining system's kernel.

An :class:`IqmsSession` ties together the pieces the paper's prototype
integrates: the SQLite store (query function), the TML executor (ad-hoc
mining function), the result-analysis helpers, and the IQMI workflow
state machine.  It is both the programmatic API and what the terminal
REPL (:mod:`repro.system.repl`) drives.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.transactions import TransactionDatabase
from repro.db.query import QueryResult
from repro.db.sqlite_store import SqliteStore
from repro.errors import ReproError, TmlExecutionError
from repro.mining.results import MiningReport
from repro.system.reporting import (
    compare_reports,
    filter_by_item,
    report_table,
    result_keys,
)
from repro.runtime.budget import RunBudget
from repro.system.workflow import MiningWorkflow, Stage
from repro.tml.ast import (
    ExplainStatement,
    MineItemsetsStatement,
    MineTrendsStatement,
    MinePeriodicitiesStatement,
    MinePeriodsStatement,
    MineRulesStatement,
    SetBudgetStatement,
    SetEngineStatement,
    SetTraceStatement,
    SetWorkersStatement,
    ShowStatement,
    SqlStatement,
)
from repro.obs.distributed import FlightRecorder
from repro.tml.executor import ExecutionEnvironment, ExecutionResult, TmlExecutor

#: Default slow-statement threshold for the session flight recorder
#: (mirrors :class:`~repro.service.core.ServiceConfig.slow_threshold_seconds`).
SLOW_THRESHOLD_SECONDS = 1.0


class IqmsSession:
    """One interactive mining session over one store.

    >>> session = IqmsSession()                          # doctest: +SKIP
    >>> session.load_database("sales", database)         # doctest: +SKIP
    >>> session.run("SHOW SUMMARY;")                     # doctest: +SKIP
    >>> session.run("MINE PERIODS FROM sales ...;")      # doctest: +SKIP
    """

    def __init__(self, store: Optional[SqliteStore] = None):
        self.store = store if store is not None else SqliteStore(":memory:")
        self.environment = ExecutionEnvironment(store=self.store)
        self.executor = TmlExecutor(self.environment)
        self.workflow = MiningWorkflow()
        self.history: List[ExecutionResult] = []
        self.last_report: Optional[MiningReport] = None
        self.previous_report: Optional[MiningReport] = None
        self._last_mine_source: Optional[str] = None
        self._server = None
        self._service = None
        #: Library-side slow-query flight recorder: statements past the
        #: threshold are captured (with their span tree when tracing is
        #: on) for the REPL's ``.slow``.
        self.flight_recorder = FlightRecorder(
            threshold_seconds=SLOW_THRESHOLD_SECONDS
        )

    # ------------------------------------------------------------------
    # data management
    # ------------------------------------------------------------------

    def load_database(
        self, name: str, database: TransactionDatabase, persist: bool = True
    ) -> None:
        """Register an in-memory dataset; optionally mirror to the store."""
        self.environment.register(name, database)
        if persist:
            self.store.clear()
            self.store.save_database(database)
            self.environment.mark_store_backed(name)
        self.workflow.record(f"loaded dataset {name!r} ({len(database)} transactions)")

    def load_csv(self, name: str, path: Union[str, Path]) -> int:
        """Load a (tid, ts, item) CSV into the store and register it."""
        from repro.db.sqlite_store import load_csv

        loaded = load_csv(self.store, path)
        database = self.store.load_database()
        self.environment.register(name, database)
        self.environment.mark_store_backed(name)
        self.workflow.record(f"loaded {loaded} transactions from {path}")
        return loaded

    def datasets(self) -> Dict[str, int]:
        """Registered dataset names with their sizes."""
        return {
            name: len(database)
            for name, database in self.environment.datasets.items()
        }

    # ------------------------------------------------------------------
    # resilience controls
    # ------------------------------------------------------------------

    @property
    def budget(self) -> Optional[RunBudget]:
        """The session budget applied to every mining run (None = off)."""
        return self.environment.budget

    def set_budget(self, budget: Optional[RunBudget]) -> None:
        """Set (or clear, with ``None``) the session mining budget."""
        self.environment.budget = budget
        described = budget.describe() if budget is not None else "off"
        self.workflow.record(f"set budget: {described}")

    @property
    def engine(self) -> str:
        """The counting backend used by mining runs (``"auto"`` = heuristic)."""
        return self.environment.engine

    def set_engine(self, engine: str) -> None:
        """Pin (or, with ``"auto"``, unpin) the counting backend."""
        self.environment.set_engine(engine)
        self.workflow.record(f"set engine: {engine}")

    @property
    def workers(self) -> Optional[int]:
        """Worker-process count for mining runs (None = planner AUTO)."""
        return self.environment.workers

    def set_workers(self, workers: Optional[int]) -> None:
        """Fan counting out to ``workers`` processes.

        ``None`` (AUTO) lets the planner size the fan-out per query;
        ``1`` pins serial.
        """
        self.environment.set_workers(workers)
        shown = "auto" if workers is None else workers
        self.workflow.record(f"set workers: {shown}")

    @property
    def trace(self) -> bool:
        """Whether mining runs collect span trees (see :meth:`stats`)."""
        return self.environment.trace

    def set_trace(self, trace: bool) -> None:
        """Turn span-tree tracing of mining runs on or off."""
        self.environment.set_trace(trace)
        self.workflow.record(f"set trace: {'on' if trace else 'off'}")

    def cancel(self) -> None:
        """Ask the mining run in flight to stop at its next safe boundary.

        Safe to call from a signal handler or another thread; the run
        returns a partial report (or raises in strict mode).  A no-op
        when nothing is running — the token is reset at the next
        :meth:`run`.
        """
        self.environment.cancel_token.cancel()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_path: Optional[str] = None,
    ) -> str:
        """Expose this session's store over HTTP; returns the URL.

        Starts a :class:`~repro.service.core.MiningService` sharing this
        session's :class:`SqliteStore` (safe: the store serializes access
        behind its lock) plus a background
        :class:`~repro.service.http.MiningHTTPServer`.  Service queries
        see the store's current contents — a mutation made here shows up
        there as a new dataset fingerprint, so cached results are never
        served stale.  ``port=0`` picks an ephemeral port.

        ``journal_path`` attaches the durable job journal: jobs
        submitted over HTTP survive a session crash and are recovered
        by whichever service next opens the same journal.
        """
        if self._server is not None:
            raise TmlExecutionError(
                f"already serving on {self._server.url} (stop_serving() first)"
            )
        from repro.service.core import MiningService, ServiceConfig
        from repro.service.http import start_server

        self._service = MiningService(
            store=self.store,
            config=ServiceConfig(
                engine=self.environment.engine,
                mining_workers=self.environment.workers,
                default_budget=self.environment.budget,
                journal_path=journal_path,
            ),
        )
        self._server, _ = start_server(self._service, host=host, port=port)
        self.workflow.record(f"serving on {self._server.url}")
        return self._server.url

    def stop_serving(self) -> None:
        """Shut down the HTTP server started by :meth:`serve` (idempotent)."""
        if self._server is None:
            return
        url = self._server.url
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._service is not None:
            self._service.close()
            self._service = None
        self.workflow.record(f"stopped serving on {url}")

    @property
    def serving_url(self) -> Optional[str]:
        """The URL of the running HTTP server, or None."""
        return self._server.url if self._server is not None else None

    # ------------------------------------------------------------------
    # the IQMI loop
    # ------------------------------------------------------------------

    def run(self, text: str) -> ExecutionResult:
        """Execute one TML/SQL statement, advancing the workflow."""
        self.environment.cancel_token.reset()
        started = time.perf_counter()
        result = self.executor.execute(text)
        self._record_slow(text, result, time.perf_counter() - started)
        self._account(result)
        return result

    def run_script(self, text: str) -> List[ExecutionResult]:
        """Execute a multi-statement script, advancing the workflow."""
        self.environment.cancel_token.reset()
        started = time.perf_counter()
        results = self.executor.execute_script(text)
        elapsed = time.perf_counter() - started
        if results:
            # A script is captured as one entry — statement-level
            # timings are not observable from the script API.
            self._record_slow(text, results[-1], elapsed)
        for result in results:
            self._account(result)
        return results

    def _record_slow(
        self, text: str, result: ExecutionResult, elapsed: float
    ) -> None:
        entry: Dict[str, object] = {
            "statement": text.strip(),
            "kind": type(result.statement).__name__,
        }
        payload = result.payload
        if isinstance(payload, MiningReport):
            if payload.partial:
                entry["partial"] = True
            if payload.trace is not None:
                entry["trace"] = payload.trace
        self.flight_recorder.consider(elapsed, entry)

    def slow_queries(self) -> Dict[str, object]:
        """The flight recorder's captures (backs the REPL's ``.slow``)."""
        return {
            "stats": self.flight_recorder.stats(),
            "entries": self.flight_recorder.snapshot(),
        }

    def _account(self, result: ExecutionResult) -> None:
        self.history.append(result)
        statement = result.statement
        from repro.tml.ast import ProfileStatement

        if isinstance(
            statement,
            (
                SetBudgetStatement,
                SetEngineStatement,
                SetTraceStatement,
                SetWorkersStatement,
            ),
        ):
            self.workflow.record(statement.render())
            return
        if isinstance(statement, (SqlStatement, ShowStatement, ProfileStatement, ExplainStatement)):
            if self.workflow.stage in (Stage.MINING,):
                # Mining is always followed by analysis in the process.
                self.workflow.advance(Stage.RESULT_ANALYSIS, "inspect results")
            if self.workflow.stage is not Stage.DATA_UNDERSTANDING:
                self.workflow.advance(Stage.DATA_UNDERSTANDING, "query the data")
            else:
                self.workflow.record(statement.render())
            return
        if isinstance(
            statement,
            (
                MinePeriodsStatement,
                MinePeriodicitiesStatement,
                MineRulesStatement,
                MineItemsetsStatement,
                MineTrendsStatement,
            ),
        ):
            if self.workflow.stage is not Stage.TASK_DESIGN:
                self.workflow.advance(Stage.TASK_DESIGN, statement.render())
            else:
                self.workflow.record(statement.render())
            self.workflow.advance(Stage.MINING, f"mine from {statement.source}")
            findings = f"{len(result.payload)} finding(s)"  # type: ignore[arg-type]
            if isinstance(result.payload, MiningReport) and result.payload.partial:
                findings += " (partial)"
            self.workflow.advance(Stage.RESULT_ANALYSIS, findings)
            self.previous_report = self.last_report
            if isinstance(result.payload, MiningReport):
                self.last_report = result.payload
            self._last_mine_source = statement.source

    # ------------------------------------------------------------------
    # result analysis
    # ------------------------------------------------------------------

    def analyse_item(self, label: str) -> MiningReport:
        """Filter the last report to rules mentioning one item."""
        report = self._require_report()
        catalog = self._last_catalog()
        filtered = filter_by_item(report, label, catalog)
        self.workflow.record(f"filtered last report by item {label!r}")
        return filtered

    def compare_with_previous(self):
        """(gained, lost, kept) keys vs the previous mining round."""
        if self.last_report is None or self.previous_report is None:
            raise TmlExecutionError("need two mining rounds to compare")
        comparison = compare_reports(self.previous_report, self.last_report)
        self.workflow.record(
            f"compared rounds: +{len(comparison[0])} -{len(comparison[1])} "
            f"={len(comparison[2])}"
        )
        return comparison

    def last_table(self) -> str:
        """The last mining report as a text table."""
        report = self._require_report()
        return report_table(report, self._last_catalog())

    def stats(self) -> str:
        """A text digest of the session's telemetry.

        Shows the last run's diagnostics, its span tree when tracing was
        on (``SET TRACE ON;`` / :meth:`set_trace`), and the counters from
        the session's metrics registry.  Backs the REPL's ``.stats``.
        """
        from repro.obs.metrics import default_registry
        from repro.obs.trace import format_trace

        lines: List[str] = []
        report = self.last_report
        if report is None:
            lines.append("last run: (no mining run yet)")
        else:
            summary = f"last run: {report.task_name} — {len(report.results)} finding(s)"
            if report.partial:
                summary += " (partial)"
            lines.append(summary)
            diagnostics = report.diagnostics
            if diagnostics is not None:
                lines.append(
                    f"  passes={diagnostics.passes_completed}"
                    f" granules={diagnostics.granules_covered}"
                    f" candidates={diagnostics.candidates_generated}"
                    f" rules={diagnostics.rules_emitted}"
                    f" stop={diagnostics.stop_reason or 'completed'}"
                )
            if report.trace is not None:
                lines.append("trace:")
                for line in format_trace(report.trace).splitlines():
                    lines.append(f"  {line}")
        registry = (
            self.environment.metrics
            if self.environment.metrics is not None
            else default_registry()
        )
        snapshot = registry.snapshot()
        if snapshot:
            lines.append("metrics:")
            for name in sorted(snapshot):
                value = snapshot[name]
                if isinstance(value, dict) and set(value) == {"count", "sum"}:
                    lines.append(
                        f"  {name} count={value['count']:g} sum={value['sum']:g}"
                    )
                elif isinstance(value, dict):
                    for labels in sorted(value):
                        inner = value[labels]
                        if isinstance(inner, dict):
                            lines.append(
                                f"  {name}{{{labels}}} "
                                f"count={inner['count']:g} sum={inner['sum']:g}"
                            )
                        else:
                            lines.append(f"  {name}{{{labels}}} = {inner:g}")
                else:
                    lines.append(f"  {name} = {value:g}")
        return "\n".join(lines)

    def conclude(self, note: str = "expected knowledge found") -> None:
        """Declare the loop finished (Knowledge reached)."""
        if self.workflow.stage is not Stage.RESULT_ANALYSIS:
            raise TmlExecutionError(
                "conclude() is only meaningful after analysing mining results"
            )
        self.workflow.advance(Stage.KNOWLEDGE, note)

    def _require_report(self) -> MiningReport:
        if self.last_report is None:
            raise TmlExecutionError("no mining report yet — run a MINE statement")
        return self.last_report

    def _last_catalog(self):
        if self._last_mine_source is None:
            raise TmlExecutionError("no mining source yet")
        return self.environment.resolve(self._last_mine_source).catalog
