"""IQMS — the integrated query and mining system (paper Section 2)."""

from repro.system.profile import TemporalProfile, support_profile
from repro.system.export import report_rows, to_csv, to_json, write_report
from repro.system.reporting import (
    compare_reports,
    filter_by_item,
    filter_report,
    render_table,
    report_table,
    result_keys,
    top_by_support,
)
from repro.system.session import IqmsSession
from repro.system.workflow import Activity, MiningWorkflow, Stage

__all__ = [
    "Activity",
    "TemporalProfile",
    "IqmsSession",
    "MiningWorkflow",
    "Stage",
    "compare_reports",
    "filter_by_item",
    "filter_report",
    "render_table",
    "report_rows",
    "report_table",
    "result_keys",
    "to_csv",
    "to_json",
    "top_by_support",
    "support_profile",
    "write_report",
]
