"""Result-analysis helpers for the IQMS session.

The IQMI loop ends each round with *result analysis*: "the mining
results need to be further analysed to judge if the expected knowledge
has been found or whether the mining task should be adjusted".  These
helpers support that judgment: filtering, ranking and diffing mining
reports, and rendering them as plain-text tables.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.items import ItemCatalog
from repro.core.rulegen import RuleKey
from repro.mining.results import (
    ConstrainedRule,
    MiningReport,
    PeriodicityFinding,
    ValidPeriodRule,
)


def result_keys(report: MiningReport) -> Set[RuleKey]:
    """The distinct rule keys appearing in any report type."""
    keys: Set[RuleKey] = set()
    for record in report:
        key = getattr(record, "key", None)
        if isinstance(key, RuleKey):
            keys.add(key)
    return keys


def filter_report(
    report: MiningReport, predicate: Callable[[object], bool]
) -> MiningReport:
    """A copy of ``report`` keeping only records where ``predicate`` holds."""
    kept = tuple(record for record in report if predicate(record))
    return MiningReport(
        task_name=report.task_name,
        results=kept,
        n_transactions=report.n_transactions,
        n_units=report.n_units,
        elapsed_seconds=report.elapsed_seconds,
    )


def filter_by_item(
    report: MiningReport, label: str, catalog: ItemCatalog
) -> MiningReport:
    """Keep findings whose rule mentions the item ``label``.

    Unknown labels yield an empty report rather than an error — in an
    interactive analysis a typo should show "0 results", not a stack
    trace.
    """
    if label not in catalog:
        return filter_report(report, lambda _record: False)
    item = catalog.id(label)

    def mentions(record: object) -> bool:
        key = getattr(record, "key", None)
        return isinstance(key, RuleKey) and item in key.itemset

    return filter_report(report, mentions)


def top_by_support(report: MiningReport, limit: int = 10) -> List[object]:
    """Records ranked by their (best) temporal support."""

    def support_of(record: object) -> float:
        if isinstance(record, ValidPeriodRule):
            return max((p.temporal_support for p in record.periods), default=0.0)
        if isinstance(record, PeriodicityFinding):
            return record.temporal_support
        if isinstance(record, ConstrainedRule):
            return record.rule.support
        return 0.0

    return sorted(report, key=support_of, reverse=True)[:limit]


def compare_reports(
    before: MiningReport, after: MiningReport
) -> Tuple[Set[RuleKey], Set[RuleKey], Set[RuleKey]]:
    """(gained, lost, kept) rule keys between two mining rounds.

    The bread-and-butter of iterative task adjustment: after changing a
    threshold, what appeared and what disappeared?
    """
    keys_before = result_keys(before)
    keys_after = result_keys(after)
    return (
        keys_after - keys_before,
        keys_before - keys_after,
        keys_after & keys_before,
    )


def render_table(
    columns: Sequence[str], rows: Iterable[Sequence[object]], limit: int = 0
) -> str:
    """Generic fixed-width table rendering."""
    materialized = [tuple(str(v) for v in row) for row in rows]
    shown = materialized if limit == 0 else materialized[:limit]
    widths = [len(c) for c in columns]
    for row in shown:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in shown:
        lines.append(" | ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    if limit and len(materialized) > limit:
        lines.append(f"... {len(materialized) - limit} more row(s)")
    return "\n".join(lines)


def report_table(report: MiningReport, catalog: Optional[ItemCatalog] = None) -> str:
    """Tabular rendering of a mining report, one row per finding."""
    rows: List[Tuple[object, ...]] = []
    if report.task_name.startswith("valid_periods"):
        columns = ("rule", "period", "freq", "supp", "conf")
        for record in report:
            assert isinstance(record, ValidPeriodRule)
            for period in record.periods:
                rows.append(
                    (
                        record.key.format(catalog),
                        period.label(record.granularity),
                        f"{period.frequency:.2f}",
                        f"{period.temporal_support:.3f}",
                        f"{period.temporal_confidence:.3f}",
                    )
                )
    elif report.task_name.startswith("periodicities"):
        columns = ("rule", "periodicity", "match", "supp", "conf")
        for record in report:
            assert isinstance(record, PeriodicityFinding)
            rows.append(
                (
                    record.key.format(catalog),
                    record.periodicity.describe(),
                    f"{record.match_ratio:.2f}",
                    f"{record.temporal_support:.3f}",
                    f"{record.temporal_confidence:.3f}",
                )
            )
    elif report.task_name.startswith("itemset_periods"):
        columns = ("itemset", "period", "freq", "supp")
        for record in report:
            rendered = (
                catalog.format(record.itemset)
                if catalog is not None
                else ", ".join(str(i) for i in record.itemset)
            )
            for period in record.periods:
                rows.append(
                    (
                        "{" + rendered + "}",
                        period.label(record.granularity),
                        f"{period.frequency:.2f}",
                        f"{period.temporal_support:.3f}",
                    )
                )
    elif report.task_name.startswith("trends"):
        columns = ("itemset", "direction", "supp_change", "slope", "r2")
        for record in report:
            rendered = (
                catalog.format(record.itemset)
                if catalog is not None
                else ", ".join(str(i) for i in record.itemset)
            )
            rows.append(
                (
                    "{" + rendered + "}",
                    record.direction,
                    f"{record.start_support:.3f} -> {record.end_support:.3f}",
                    f"{record.slope:+.5f}",
                    f"{record.r_squared:.2f}",
                )
            )
    elif report.task_name.startswith("constrained"):
        columns = ("rule", "feature", "supp", "conf", "lift")
        for record in report:
            assert isinstance(record, ConstrainedRule)
            rows.append(
                (
                    record.rule.format(catalog),
                    record.feature_description,
                    f"{record.rule.support:.3f}",
                    f"{record.rule.confidence:.3f}",
                    f"{record.rule.lift:.2f}",
                )
            )
    else:
        from repro.errors import ReproError

        raise ReproError(f"cannot tabulate report of task {report.task_name!r}")
    return render_table(columns, rows)
