"""The IQMI mining-process state machine (Figure 1 of the paper).

The paper's "IQMI-based mining process" iterates::

    Business Requirement → Data Understanding → Task Design →
    Ad hoc Mining → Result Analysis → (adjust task, mine again) → Knowledge

:class:`MiningWorkflow` tracks the session's position in that loop,
validates transitions and keeps an auditable activity log.  The IQMS
session advances the workflow automatically as the user queries, mines
and analyses.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import WorkflowError


class Stage(enum.Enum):
    """The IQMI process stages."""

    DATA_UNDERSTANDING = "data understanding"
    TASK_DESIGN = "task design"
    MINING = "ad hoc mining"
    RESULT_ANALYSIS = "result analysis"
    KNOWLEDGE = "knowledge"

    def __str__(self) -> str:
        return self.value


# Legal transitions; the loop structure of Figure 1.
_TRANSITIONS = {
    Stage.DATA_UNDERSTANDING: {
        Stage.DATA_UNDERSTANDING,
        Stage.TASK_DESIGN,
    },
    Stage.TASK_DESIGN: {
        Stage.DATA_UNDERSTANDING,
        Stage.TASK_DESIGN,
        Stage.MINING,
    },
    Stage.MINING: {Stage.RESULT_ANALYSIS},
    Stage.RESULT_ANALYSIS: {
        Stage.RESULT_ANALYSIS,
        Stage.DATA_UNDERSTANDING,
        Stage.TASK_DESIGN,
        Stage.MINING,
        Stage.KNOWLEDGE,
    },
    Stage.KNOWLEDGE: set(),
}


@dataclass(frozen=True)
class Activity:
    """One logged step of the process."""

    stage: Stage
    description: str
    timestamp: float

    def format(self) -> str:
        return f"[{self.stage}] {self.description}"


class MiningWorkflow:
    """Tracks and validates progress around the IQMI loop.

    >>> flow = MiningWorkflow()
    >>> flow.advance(Stage.TASK_DESIGN, "sketch seasonal task")
    >>> flow.advance(Stage.MINING, "run MINE PERIODS")
    >>> flow.advance(Stage.RESULT_ANALYSIS, "inspect 12 findings")
    >>> flow.stage
    <Stage.RESULT_ANALYSIS: 'result analysis'>
    """

    def __init__(self) -> None:
        self._stage = Stage.DATA_UNDERSTANDING
        self._log: List[Activity] = []
        self._iterations = 0

    @property
    def stage(self) -> Stage:
        return self._stage

    @property
    def iterations(self) -> int:
        """How many mining rounds the session has completed."""
        return self._iterations

    @property
    def log(self) -> Tuple[Activity, ...]:
        return tuple(self._log)

    def is_finished(self) -> bool:
        return self._stage is Stage.KNOWLEDGE

    def advance(self, to: Stage, description: str = "") -> None:
        """Move to stage ``to``; raises :class:`WorkflowError` if illegal."""
        if to not in _TRANSITIONS[self._stage]:
            raise WorkflowError(
                f"cannot move from '{self._stage}' to '{to}'; "
                f"legal next stages: "
                f"{sorted(str(s) for s in _TRANSITIONS[self._stage])}"
            )
        if to is Stage.RESULT_ANALYSIS and self._stage is Stage.MINING:
            self._iterations += 1
        self._stage = to
        self._log.append(
            Activity(stage=to, description=description, timestamp=time.time())
        )

    def record(self, description: str) -> None:
        """Log an activity within the current stage (no transition)."""
        self._log.append(
            Activity(stage=self._stage, description=description, timestamp=time.time())
        )

    def format_log(self) -> str:
        if not self._log:
            return "(no activity yet)"
        return "\n".join(activity.format() for activity in self._log)
