"""Exporting mining results to CSV and JSON.

The IQMI loop ends with *knowledge* that usually leaves the system —
into a spreadsheet, a report, a downstream job.  These exporters flatten
any :class:`~repro.mining.results.MiningReport` into rows with stable
column sets per task type.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.items import ItemCatalog
from repro.errors import ReproError
from repro.mining.results import (
    ConstrainedRule,
    MiningReport,
    PeriodicityFinding,
    ValidPeriod,
    ValidPeriodRule,
)

VALID_PERIOD_COLUMNS = (
    "antecedent",
    "consequent",
    "period_start",
    "period_end",
    "n_units",
    "frequency",
    "temporal_support",
    "temporal_confidence",
)
PERIODICITY_COLUMNS = (
    "antecedent",
    "consequent",
    "periodicity",
    "n_member_units",
    "match_ratio",
    "temporal_support",
    "temporal_confidence",
)
CONSTRAINED_COLUMNS = (
    "antecedent",
    "consequent",
    "feature",
    "support",
    "confidence",
    "lift",
)
ITEMSET_PERIOD_COLUMNS = (
    "itemset",
    "period_start",
    "period_end",
    "n_units",
    "frequency",
    "temporal_support",
)
TREND_COLUMNS = (
    "itemset",
    "direction",
    "slope",
    "r_squared",
    "start_support",
    "end_support",
)


def _sides(key, catalog: Optional[ItemCatalog]) -> Tuple[str, str]:
    if catalog is not None:
        return catalog.format(key.antecedent), catalog.format(key.consequent)
    return (
        ", ".join(str(i) for i in key.antecedent),
        ", ".join(str(i) for i in key.consequent),
    )


def report_rows(
    report: MiningReport, catalog: Optional[ItemCatalog] = None
) -> Tuple[Tuple[str, ...], List[Dict[str, object]]]:
    """Flatten a report into (columns, row dicts)."""
    rows: List[Dict[str, object]] = []
    if report.task_name.startswith("valid_periods"):
        for record in report:
            assert isinstance(record, ValidPeriodRule)
            antecedent, consequent = _sides(record.key, catalog)
            for period in record.periods:
                rows.append(
                    {
                        "antecedent": antecedent,
                        "consequent": consequent,
                        "period_start": period.interval.start.isoformat(),
                        "period_end": period.interval.end.isoformat(),
                        "n_units": period.n_units,
                        "frequency": round(period.frequency, 6),
                        "temporal_support": round(period.temporal_support, 6),
                        "temporal_confidence": round(period.temporal_confidence, 6),
                    }
                )
        return VALID_PERIOD_COLUMNS, rows
    if report.task_name.startswith("periodicities"):
        for record in report:
            assert isinstance(record, PeriodicityFinding)
            antecedent, consequent = _sides(record.key, catalog)
            rows.append(
                {
                    "antecedent": antecedent,
                    "consequent": consequent,
                    "periodicity": record.periodicity.describe(),
                    "n_member_units": record.n_member_units,
                    "match_ratio": round(record.match_ratio, 6),
                    "temporal_support": round(record.temporal_support, 6),
                    "temporal_confidence": round(record.temporal_confidence, 6),
                }
            )
        return PERIODICITY_COLUMNS, rows
    if report.task_name.startswith("itemset_periods"):
        from repro.mining.itemset_periods import ItemsetPeriods

        for record in report:
            assert isinstance(record, ItemsetPeriods)
            rendered = (
                catalog.format(record.itemset)
                if catalog is not None
                else ", ".join(str(i) for i in record.itemset)
            )
            for period in record.periods:
                rows.append(
                    {
                        "itemset": rendered,
                        "period_start": period.interval.start.isoformat(),
                        "period_end": period.interval.end.isoformat(),
                        "n_units": period.n_units,
                        "frequency": round(period.frequency, 6),
                        "temporal_support": round(period.temporal_support, 6),
                    }
                )
        return ITEMSET_PERIOD_COLUMNS, rows
    if report.task_name.startswith("trends"):
        from repro.mining.trends import TrendFinding

        for record in report:
            assert isinstance(record, TrendFinding)
            rendered = (
                catalog.format(record.itemset)
                if catalog is not None
                else ", ".join(str(i) for i in record.itemset)
            )
            rows.append(
                {
                    "itemset": rendered,
                    "direction": record.direction,
                    "slope": round(record.slope, 6),
                    "r_squared": round(record.r_squared, 6),
                    "start_support": round(record.start_support, 6),
                    "end_support": round(record.end_support, 6),
                }
            )
        return TREND_COLUMNS, rows
    if report.task_name.startswith("constrained"):
        for record in report:
            assert isinstance(record, ConstrainedRule)
            antecedent, consequent = _sides(record.key, catalog)
            lift = record.rule.lift
            rows.append(
                {
                    "antecedent": antecedent,
                    "consequent": consequent,
                    "feature": record.feature_description,
                    "support": round(record.rule.support, 6),
                    "confidence": round(record.rule.confidence, 6),
                    "lift": round(lift, 6) if lift != float("inf") else "inf",
                }
            )
        return CONSTRAINED_COLUMNS, rows
    raise ReproError(f"cannot export report of task {report.task_name!r}")


def to_csv(
    report: MiningReport,
    catalog: Optional[ItemCatalog] = None,
) -> str:
    """Render a report as CSV text (header + one row per finding)."""
    columns, rows = report_rows(report, catalog)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(
    report: MiningReport,
    catalog: Optional[ItemCatalog] = None,
    indent: int = 2,
) -> str:
    """Render a report as a JSON document with run metadata."""
    _columns, rows = report_rows(report, catalog)
    document = {
        "task": report.task_name,
        "n_transactions": report.n_transactions,
        "n_units": report.n_units,
        "elapsed_seconds": round(report.elapsed_seconds, 6),
        "findings": rows,
    }
    return json.dumps(document, indent=indent)


def write_report(
    report: MiningReport,
    path: str,
    catalog: Optional[ItemCatalog] = None,
) -> int:
    """Write a report to ``path`` (.csv or .json by extension).

    Returns the number of rows written.
    """
    lowered = path.lower()
    if lowered.endswith(".csv"):
        text = to_csv(report, catalog)
    elif lowered.endswith(".json"):
        text = to_json(report, catalog)
    else:
        raise ReproError(f"unsupported export extension for {path!r} (.csv/.json)")
    with open(path, "w", newline="") as handle:
        handle.write(text)
    return len(report_rows(report, catalog)[1])
