"""Trend detection — emerging and declining patterns.

A temporal feature the ⟨AR, TF⟩ framework doesn't capture is the
*monotone drift*: an itemset whose support ramps up (an emerging
pattern) or decays (a dying one).  This module fits a least-squares line
to each frequent itemset's per-unit support series and reports itemsets
whose slope and fit are strong enough to call a trend — the natural
companion analysis to valid periods ("when did it hold?") and
periodicities ("how does it recur?"): "where is it *going*?".

Extension beyond the paper (listed in DESIGN.md); statistically this is
the simplest member of the emerging-patterns family.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.items import ItemCatalog, Itemset
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.mining.context import TemporalContext, per_unit_frequent_itemsets
from repro.mining.results import MiningReport
from repro.temporal.granularity import Granularity


@dataclass(frozen=True)
class TrendFinding:
    """One itemset's support trend.

    Attributes:
        itemset: the pattern.
        slope: change in relative support per time unit (least squares).
        r_squared: goodness of the linear fit in [0, 1].
        start_support / end_support: fitted support at the first / last
            unit (clamped to [0, 1]).
        direction: ``"emerging"`` (slope > 0) or ``"declining"``.
    """

    itemset: Itemset
    slope: float
    r_squared: float
    start_support: float
    end_support: float

    @property
    def direction(self) -> str:
        return "emerging" if self.slope > 0 else "declining"

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        rendered = (
            catalog.format(self.itemset)
            if catalog is not None
            else ", ".join(str(i) for i in self.itemset)
        )
        return (
            f"{{{rendered}}}  {self.direction}  "
            f"supp {self.start_support:.3f} -> {self.end_support:.3f}  "
            f"(slope={self.slope:+.5f}/unit, r2={self.r_squared:.2f})"
        )

    def __str__(self) -> str:
        return self.format()


def fit_trend(supports: np.ndarray) -> Tuple[float, float, float, float]:
    """Least-squares line through a support series.

    Returns ``(slope, r_squared, fitted_start, fitted_end)``; a constant
    series has slope 0 and (by convention) r² 0.
    """
    n = len(supports)
    if n < 2:
        value = float(supports[0]) if n else 0.0
        return 0.0, 0.0, value, value
    x = np.arange(n, dtype=float)
    y = np.asarray(supports, dtype=float)
    x_centered = x - x.mean()
    denominator = float((x_centered**2).sum())
    slope = float((x_centered * (y - y.mean())).sum()) / denominator
    intercept = float(y.mean()) - slope * float(x.mean())
    fitted = intercept + slope * x
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - fitted) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 0.0
    clamp = lambda v: min(max(v, 0.0), 1.0)
    return slope, r_squared, clamp(fitted[0]), clamp(fitted[-1])


def detect_trends(
    database: TransactionDatabase,
    granularity: Granularity,
    min_support: float,
    min_total_change: float = 0.1,
    min_r_squared: float = 0.5,
    min_size: int = 1,
    max_size: int = 0,
    context: Optional[TemporalContext] = None,
    counting: str = "auto",
) -> MiningReport:
    """Find itemsets with a clear monotone support trend.

    Args:
        database: the timestamped transaction database.
        granularity: unit granularity of the support series.
        min_support: per-unit threshold for an itemset to be tracked at
            all (it must be locally frequent in at least one unit).
        min_total_change: required fitted support change |end − start|
            over the whole window.
        min_r_squared: required linear-fit quality.
        min_size / max_size: itemset size bounds (0 = unbounded max).

    Returns:
        A :class:`MiningReport` of :class:`TrendFinding` records, sorted
        by descending absolute change.
    """
    if not 0.0 <= min_total_change <= 1.0:
        raise MiningParameterError("min_total_change must be in [0, 1]")
    if not 0.0 <= min_r_squared <= 1.0:
        raise MiningParameterError("min_r_squared must be in [0, 1]")
    started = time.perf_counter()
    if context is None:
        context = TemporalContext(database, granularity)
    counts = per_unit_frequent_itemsets(
        context, min_support, min_units=1, max_size=max_size, counting=counting
    )
    sizes = np.maximum(context.unit_sizes, 1)
    findings: List[TrendFinding] = []
    for itemset, row in counts.counts.items():
        if len(itemset) < min_size:
            continue
        supports = row / sizes
        # Empty units carry no evidence; skip series dominated by gaps.
        observed = context.unit_sizes > 0
        if int(observed.sum()) < 3:
            continue
        slope, r_squared, fitted_start, fitted_end = fit_trend(
            supports[observed]
        )
        if abs(fitted_end - fitted_start) < min_total_change:
            continue
        if r_squared < min_r_squared:
            continue
        findings.append(
            TrendFinding(
                itemset=itemset,
                slope=slope,
                r_squared=r_squared,
                start_support=fitted_start,
                end_support=fitted_end,
            )
        )
    findings.sort(key=lambda f: -abs(f.end_support - f.start_support))
    elapsed = time.perf_counter() - started
    return MiningReport(
        task_name="trends",
        results=tuple(findings),
        n_transactions=len(database),
        n_units=context.n_units,
        elapsed_seconds=elapsed,
    )
