"""Result records for temporal mining.

A discovered temporal association rule is the pair ⟨AR, TF⟩; each task
yields its own record type pairing a :class:`~repro.core.rulegen.RuleKey`
with the temporal feature found and the measures that justify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.items import ItemCatalog
from repro.core.rulegen import AssociationRule, RuleKey
from repro.runtime.budget import RunDiagnostics
from repro.temporal.granularity import Granularity, unit_label
from repro.temporal.interval import TimeInterval
from repro.temporal.periodicity import CalendricPeriodicity, CyclicPeriodicity


@dataclass(frozen=True)
class ValidPeriod:
    """One maximal period during which a rule holds.

    Attributes:
        interval: the period as a concrete time interval.
        first_unit / last_unit: absolute unit indices (inclusive).
        n_units: period length in units.
        n_valid_units: units inside the period where the rule holds.
        frequency: ``n_valid_units / n_units``.
        temporal_support: support of the rule over the period's
            transactions.
        temporal_confidence: confidence over the period's transactions.
    """

    interval: TimeInterval
    first_unit: int
    last_unit: int
    n_units: int
    n_valid_units: int
    frequency: float
    temporal_support: float
    temporal_confidence: float

    def label(self, granularity: Granularity) -> str:
        start = unit_label(self.first_unit, granularity)
        if self.first_unit == self.last_unit:
            return start
        return f"{start}..{unit_label(self.last_unit, granularity)}"


@dataclass(frozen=True)
class ValidPeriodRule:
    """⟨AR, valid periods⟩ — the outcome of Task 1 for one rule."""

    key: RuleKey
    granularity: Granularity
    periods: Tuple[ValidPeriod, ...]

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        periods = "; ".join(
            f"{p.label(self.granularity)} (freq={p.frequency:.2f}, "
            f"supp={p.temporal_support:.3f}, conf={p.temporal_confidence:.3f})"
            for p in self.periods
        )
        return f"{self.key.format(catalog)}  DURING  {periods}"

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class PeriodicityFinding:
    """⟨AR, periodicity⟩ — the outcome of Task 2 for one rule.

    Attributes:
        key: the rule.
        periodicity: the cyclic or calendric periodicity found.
        n_member_units: periodicity member units inside the data window.
        n_valid_units: member units where the rule holds.
        match_ratio: ``n_valid_units / n_member_units``.
        temporal_support / temporal_confidence: measures over the union
            of member units.
    """

    key: RuleKey
    periodicity: Union[CyclicPeriodicity, CalendricPeriodicity]
    n_member_units: int
    n_valid_units: int
    match_ratio: float
    temporal_support: float
    temporal_confidence: float

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        return (
            f"{self.key.format(catalog)}  PERIODIC  {self.periodicity.describe()} "
            f"(match={self.match_ratio:.2f}, supp={self.temporal_support:.3f}, "
            f"conf={self.temporal_confidence:.3f})"
        )

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class ConstrainedRule:
    """⟨AR, given feature⟩ — the outcome of Task 3 for one rule.

    ``rule`` carries measures computed over the feature-restricted
    sub-database; ``feature_description`` records the constraint.
    """

    rule: AssociationRule
    feature_description: str

    @property
    def key(self) -> RuleKey:
        return self.rule.key()

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        return (
            f"{self.rule.format(catalog)}  WITHIN  {self.feature_description} "
            f"(supp={self.rule.support:.3f}, conf={self.rule.confidence:.3f})"
        )

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class MiningReport:
    """A uniform wrapper for any task's result list plus run metadata.

    Attributes:
        task_name: ``"valid_periods"``, ``"periodicities"`` or
            ``"constrained"``.
        results: the task-specific records.
        n_transactions: transactions scanned.
        n_units: time units spanned (0 for Task 3 over raw intervals).
        elapsed_seconds: wall-clock mining time.
        partial: the run stopped early (budget exhausted or cancelled);
            the results are a sound subset of the full run's.
        diagnostics: what the run did and why it stopped (populated
            whenever the run was monitored, partial or not).
        trace: the serialized span tree for the run (populated only
            when the miner ran with tracing enabled; see
            :mod:`repro.obs.trace`).
        plan: the resolved :class:`~repro.planner.QueryPlan` (as a
            dict) the run executed under, when the run went through
            :class:`~repro.mining.engine.TemporalMiner`.
    """

    task_name: str
    results: Tuple[object, ...]
    n_transactions: int
    n_units: int
    elapsed_seconds: float
    partial: bool = False
    diagnostics: Optional[RunDiagnostics] = None
    trace: Optional[Dict] = None
    plan: Optional[Dict] = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def format(self, catalog: Optional[ItemCatalog] = None, limit: int = 0) -> str:
        lines = [
            f"== {self.task_name}: {len(self.results)} result(s) over "
            f"{self.n_transactions} transactions / {self.n_units} units "
            f"in {self.elapsed_seconds:.3f}s =="
        ]
        if self.partial and self.diagnostics is not None:
            lines.append(f"  !! PARTIAL — {self.diagnostics.describe()}")
        elif self.partial:
            lines.append("  !! PARTIAL — run stopped before completion")
        shown = self.results if limit == 0 else self.results[:limit]
        for record in shown:
            formatter = getattr(record, "format", None)
            lines.append("  " + (formatter(catalog) if formatter else str(record)))
        if limit and len(self.results) > limit:
            lines.append(f"  ... {len(self.results) - limit} more")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
