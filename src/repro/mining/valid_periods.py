"""Task 1 — discovery of the valid time periods of association rules.

Given per-unit rule validity (the boolean sequence from
:mod:`repro.mining.rulespace`), a *valid period* is a unit interval
``[a..b]`` that

* starts and ends at units where the rule holds,
* spans at least ``min_coverage`` units, and
* contains the rule's validity in at least ``min_frequency`` of its units
  (1.0 = an unbroken run; lower values tolerate gaps).

Only **maximal** qualifying intervals are reported: an interval contained
in a strictly larger qualifying interval is suppressed.  With
``min_frequency == 1.0`` this reduces to the maximal runs of consecutive
valid units, which the tests cross-check.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.transactions import TransactionDatabase
from repro.mining.context import PerUnitCounts, TemporalContext, per_unit_frequent_itemsets
from repro.mining.results import MiningReport, ValidPeriod, ValidPeriodRule
from repro.mining.rulespace import RuleUnitSeries, candidate_rules
from repro.mining.tasks import ValidPeriodTask
from repro.obs.trace import tracer_of
from repro.runtime.budget import RunInterrupted, RunMonitor
from repro.temporal.interval import TimeInterval

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.parallel.executor import ShardedExecutor

_EPS = 1e-9


def maximal_valid_windows(
    valid: Sequence[bool], min_frequency: float, min_coverage: int
) -> List[Tuple[int, int, int]]:
    """Maximal qualifying windows of a boolean validity sequence.

    Returns ``(start_offset, end_offset, n_valid)`` triples with inclusive
    offsets into ``valid``, sorted by start.

    >>> maximal_valid_windows([1, 1, 0, 1, 1, 1], 1.0, 2)
    [(0, 1, 2), (3, 5, 3)]
    >>> maximal_valid_windows([1, 1, 0, 1, 1, 1], 0.8, 2)
    [(0, 5, 5)]
    """
    flags = np.asarray(valid, dtype=bool)
    positions = np.flatnonzero(flags)
    v = len(positions)
    if v == 0:
        return []
    if min_frequency >= 1.0 - _EPS:
        return _maximal_runs(positions, min_coverage)
    # Candidate windows start and end at valid units: index them by the
    # positions array.  lengths[i, j] = window length; valid count = j-i+1.
    starts = positions[:, None]
    ends = positions[None, :]
    lengths = ends - starts + 1
    n_valid = np.arange(v)[None, :] - np.arange(v)[:, None] + 1
    with np.errstate(divide="ignore", invalid="ignore"):
        frequency = np.where(lengths > 0, n_valid / np.maximum(lengths, 1), 0.0)
    qualify = (
        (lengths >= min_coverage)
        & (n_valid >= 1)
        & (frequency >= min_frequency - _EPS)
    )
    # Also admit singleton windows when coverage allows.
    if not qualify.any():
        return []
    # reach[i, j] = exists qualifying window [i' <= i, j' >= j].
    reach = np.logical_or.accumulate(qualify, axis=0)
    reach = np.logical_or.accumulate(reach[:, ::-1], axis=1)[:, ::-1]
    windows: List[Tuple[int, int, int]] = []
    for i, j in zip(*np.nonzero(qualify)):
        dominated = (i > 0 and reach[i - 1, j]) or (j < v - 1 and reach[i, j + 1])
        if not dominated:
            windows.append((int(positions[i]), int(positions[j]), int(j - i + 1)))
    windows.sort()
    return windows


def _maximal_runs(positions: np.ndarray, min_coverage: int) -> List[Tuple[int, int, int]]:
    """Maximal runs of consecutive valid offsets, length >= min_coverage."""
    runs: List[Tuple[int, int, int]] = []
    run_start = int(positions[0])
    previous = run_start
    for position in positions[1:]:
        position = int(position)
        if position == previous + 1:
            previous = position
            continue
        if previous - run_start + 1 >= min_coverage:
            runs.append((run_start, previous, previous - run_start + 1))
        run_start = position
        previous = position
    if previous - run_start + 1 >= min_coverage:
        runs.append((run_start, previous, previous - run_start + 1))
    return runs


def periods_for_series(
    series: RuleUnitSeries,
    context: TemporalContext,
    min_frequency: float,
    min_coverage: int,
) -> List[ValidPeriod]:
    """Materialize the maximal valid periods of one rule with measures."""
    windows = maximal_valid_windows(series.valid, min_frequency, min_coverage)
    periods: List[ValidPeriod] = []
    for start_offset, end_offset, n_valid in windows:
        mask = np.zeros(context.n_units, dtype=bool)
        mask[start_offset : end_offset + 1] = True
        n_units = end_offset - start_offset + 1
        periods.append(
            ValidPeriod(
                interval=TimeInterval.from_units(
                    context.to_absolute(start_offset),
                    context.to_absolute(end_offset),
                    context.granularity,
                ),
                first_unit=context.to_absolute(start_offset),
                last_unit=context.to_absolute(end_offset),
                n_units=n_units,
                n_valid_units=n_valid,
                frequency=n_valid / n_units,
                temporal_support=series.temporal_support(context.unit_sizes, mask),
                temporal_confidence=series.temporal_confidence(mask),
            )
        )
    return periods


def discover_valid_periods(
    database: TransactionDatabase,
    task: ValidPeriodTask,
    context: Optional[TemporalContext] = None,
    counts: Optional[PerUnitCounts] = None,
    counting: str = "auto",
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> MiningReport:
    """Run Task 1 end to end.

    Args:
        database: the timestamped transaction database.
        task: task parameters.
        context: optional pre-built temporal context (reused by the
            engine across tasks at the same granularity).
        counts: optional pre-computed per-unit counts (must match the
            task's thresholds; used by ablation benchmarks).
        counting: counting-backend name, or ``"auto"`` (see
            :mod:`repro.columnar.backends`).
        monitor: optional run monitor; an exhausted budget or a cancel
            stops the run at a granule/pass boundary and yields a report
            flagged ``partial=True`` whose rules are a subset of the
            unbudgeted run's (strict mode raises instead).
        executor: optional sharded executor parallelizing the counting
            passes (bit-identical output; see :mod:`repro.parallel`).

    Returns:
        A :class:`MiningReport` of :class:`ValidPeriodRule` records.
    """
    started = time.perf_counter()
    tracer = tracer_of(monitor)
    if context is None:
        context = TemporalContext(database, task.granularity)
    if counts is None:
        with tracer.span("count", task="valid_periods"):
            counts = per_unit_frequent_itemsets(
                context,
                task.thresholds.min_support,
                min_units=task.min_valid_units,
                max_size=task.max_rule_size,
                counting=counting,
                monitor=monitor,
                executor=executor,
            )
    series_list = candidate_rules(
        counts,
        task.thresholds.min_confidence,
        min_valid_units=task.min_valid_units,
        max_consequent_size=task.max_consequent_size,
    )
    findings: List[ValidPeriodRule] = []
    # The emission phase runs even after a counting-phase stop: deriving
    # rules from the already-counted passes is cheap, and it is exactly
    # the partial result the stopped run has to show.  Only the rule cap
    # still applies here.
    try:
        with tracer.span("emit", candidates=len(series_list)):
            for series in series_list:
                periods = periods_for_series(
                    series, context, task.min_frequency, task.min_coverage
                )
                if periods:
                    if monitor is not None:
                        monitor.charge_rule()
                    findings.append(
                        ValidPeriodRule(
                            key=series.key,
                            granularity=context.granularity,
                            periods=tuple(periods),
                        )
                    )
    except RunInterrupted:
        pass
    elapsed = time.perf_counter() - started
    if monitor is not None:
        monitor.raise_for_strict()
    return MiningReport(
        task_name="valid_periods",
        results=tuple(findings),
        n_transactions=len(database),
        n_units=context.n_units,
        elapsed_seconds=elapsed,
        partial=monitor.stopped if monitor is not None else False,
        diagnostics=monitor.diagnostics() if monitor is not None else None,
    )
