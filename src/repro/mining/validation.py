"""Temporal holdout validation — do discovered rules generalize?

A periodicity mined from history is a *prediction*: "this rule holds
every Saturday" claims something about Saturdays not yet seen.  The
honest check is a temporal split — mine on the earlier part, re-measure
on the later part — which this module implements for periodicity
findings (the feature type that makes forward claims; a valid period is
a closed statement about the past).

This is an extension beyond the paper (whose evaluation is qualitative),
but it is the natural "result analysis" step before acting on a
discovered periodicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.mining.context import TemporalContext
from repro.mining.results import MiningReport, PeriodicityFinding
from repro.mining.rulespace import rule_series
from repro.mining.context import per_unit_frequent_itemsets
from repro.mining.tasks import PeriodicityTask


def holdout_split(
    database: TransactionDatabase, train_fraction: float = 0.7
) -> Tuple[TransactionDatabase, TransactionDatabase]:
    """Split a database at a time point into (train, test).

    The split point is chosen so the train part holds ``train_fraction``
    of the *time span* (not of the transactions): temporal findings are
    per-unit statements, so the unit axis is what must be divided.
    """
    if not 0.0 < train_fraction < 1.0:
        raise MiningParameterError("train_fraction must be in (0, 1)")
    start, end = database.time_span()
    cut = start + (end - start) * train_fraction
    return database.between(start, cut), database.between(cut, end + _one_microsecond())


def _one_microsecond():
    from datetime import timedelta

    return timedelta(microseconds=1)


@dataclass(frozen=True)
class ValidationResult:
    """One finding's out-of-sample performance.

    Attributes:
        finding: the periodicity finding (mined on the train part).
        test_member_units: member units observed in the test window.
        test_valid_units: of those, units where the rule actually held.
        test_match_ratio: the out-of-sample match ratio (NaN-free: 0.0
            when no member units fall in the test window).
    """

    finding: PeriodicityFinding
    test_member_units: int
    test_valid_units: int
    test_match_ratio: float

    def generalizes(self, min_match: float) -> bool:
        """True when the test-window match ratio meets ``min_match``."""
        return self.test_member_units > 0 and self.test_match_ratio >= min_match

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        return (
            f"{self.finding.key.format(catalog)} / "
            f"{self.finding.periodicity.describe()}: "
            f"train_match={self.finding.match_ratio:.2f} "
            f"test_match={self.test_match_ratio:.2f} "
            f"({self.test_valid_units}/{self.test_member_units} test units)"
        )


def validate_periodicities(
    report: MiningReport,
    test_database: TransactionDatabase,
    task: PeriodicityTask,
) -> List[ValidationResult]:
    """Re-measure every periodicity finding on unseen (later) data.

    Args:
        report: a Task 2 report mined on the train part.
        test_database: the held-out later part.
        task: the task the report was mined with (thresholds define what
            "the rule holds in a unit" means).

    Returns:
        One :class:`ValidationResult` per finding, in report order.
    """
    findings = [f for f in report if isinstance(f, PeriodicityFinding)]
    if not findings or test_database.is_empty():
        return [
            ValidationResult(
                finding=f,
                test_member_units=0,
                test_valid_units=0,
                test_match_ratio=0.0,
            )
            for f in findings
        ]
    context = TemporalContext(test_database, task.granularity)
    counts = per_unit_frequent_itemsets(
        context,
        task.thresholds.min_support,
        min_units=1,
        max_size=task.max_rule_size,
    )
    results: List[ValidationResult] = []
    for finding in findings:
        series = rule_series(counts, finding.key, task.thresholds.min_confidence)
        member_offsets = [
            offset
            for offset in range(context.n_units)
            if finding.periodicity.matches_unit(context.to_absolute(offset))
            and context.unit_sizes[offset] > 0
        ]
        n_members = len(member_offsets)
        n_valid = int(sum(1 for o in member_offsets if series.valid[o]))
        results.append(
            ValidationResult(
                finding=finding,
                test_member_units=n_members,
                test_valid_units=n_valid,
                test_match_ratio=n_valid / n_members if n_members else 0.0,
            )
        )
    return results


def generalization_rate(
    results: Sequence[ValidationResult], min_match: float = 0.8
) -> float:
    """Fraction of findings that generalize to the test window."""
    testable = [r for r in results if r.test_member_units > 0]
    if not testable:
        return 0.0
    return sum(1 for r in testable if r.generalizes(min_match)) / len(testable)
