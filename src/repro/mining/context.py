"""Temporal partitioning and shared per-unit support counting.

All three temporal mining tasks view the database as a sequence of *time
units* at a granularity.  :class:`TemporalContext` buckets the
transactions per unit once, and counts candidate itemsets **per unit in a
single scan** — the shared-counting optimization that the naive baseline
(mine every unit independently, :mod:`repro.baselines.sequential`)
forgoes.

The level-wise :func:`per_unit_frequent_itemsets` is the temporal
analogue of Apriori: an itemset is *locally frequent* in unit ``u`` when
its support within ``D[u]`` meets ``min_support``; candidates for size
k+1 are generated from the union of locally frequent k-itemsets across
units (a superset of the per-unit lattices, hence sound), and an itemset
is kept while it is locally frequent in at least ``min_units`` units —
the temporal anti-monotone prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.columnar.backends import resolve_backend
from repro.columnar.encoded import EncodedDatabase, EncodedSegment
from repro.core.apriori import generate_candidates, _min_count
from repro.core.items import Item, Itemset
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError, TransactionError
from repro.obs.trace import tracer_of
from repro.runtime.budget import RunInterrupted, RunMonitor
from repro.temporal.granularity import Granularity, unit_label

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.parallel.executor import ShardedExecutor


class TemporalContext:
    """A transaction database partitioned into time units.

    The database is encoded into the columnar CSR layout once
    (:class:`~repro.columnar.encoded.EncodedDatabase`); because encoded
    transactions are ordered by timestamp, every time unit is a
    contiguous position range and partitioning reduces to computing the
    per-unit boundary array — no per-unit copies.  Per-unit basket lists
    and bitmap indexes are materialized lazily, only for the units (and
    backends) that actually get counted.

    Attributes:
        granularity: the unit granularity.
        first_unit / last_unit: absolute unit indices spanning the data.
        encoded: the columnar layout every counting path scans.
    """

    def __init__(
        self,
        database: Union[TransactionDatabase, EncodedDatabase],
        granularity: Granularity,
    ):
        if database.is_empty():
            raise TransactionError("cannot build a temporal context over an empty database")
        self.database = database
        self.encoded = (
            database
            if isinstance(database, EncodedDatabase)
            else EncodedDatabase.from_database(database)
        )
        self.granularity = granularity
        self.first_unit, self._bounds = self.encoded.unit_bounds(granularity)
        self.last_unit = self.first_unit + len(self._bounds) - 2
        self.unit_sizes = np.diff(self._bounds)
        self._segments: List[Optional[EncodedSegment]] = [None] * self.n_units

    @property
    def n_units(self) -> int:
        """Number of units spanned (including empty ones)."""
        return self.last_unit - self.first_unit + 1

    @property
    def unit_range(self) -> range:
        """Absolute unit indices covered by the context."""
        return range(self.first_unit, self.last_unit + 1)

    def unit_segment(self, offset: int) -> EncodedSegment:
        """The zero-copy columnar segment of the unit at ``offset``."""
        segment = self._segments[offset]
        if segment is None:
            lo = int(self._bounds[offset])
            hi = int(self._bounds[offset + 1])
            segment = self.encoded.segment(lo, hi)
            self._segments[offset] = segment
        return segment

    def baskets_in_unit(self, offset: int) -> Sequence[Tuple[Item, ...]]:
        """Baskets of the unit at relative ``offset`` (0-based)."""
        return self.unit_segment(offset).baskets()

    def to_offset(self, absolute_unit: int) -> int:
        """Relative offset of an absolute unit index."""
        return absolute_unit - self.first_unit

    def to_absolute(self, offset: int) -> int:
        """Absolute unit index of a relative offset."""
        return offset + self.first_unit

    def label(self, offset: int) -> str:
        """Human-readable label of the unit at ``offset``."""
        return unit_label(self.to_absolute(offset), self.granularity)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def count_items_per_unit(
        self,
        monitor: Optional[RunMonitor] = None,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Dict[Item, np.ndarray]:
        """Per-unit absolute support of every single item (one scan).

        A monitored run checks the budget at every granule boundary and
        raises :class:`~repro.runtime.budget.RunInterrupted` mid-scan;
        callers treat the level-1 pass as incomplete in that case.

        Counting is one :func:`numpy.bincount` per unit over the unit's
        contiguous ``item_ids`` slice — no per-basket Python work.  With
        an ``executor``, the unit range is sharded across worker
        processes and the per-shard matrices merged in shard order
        (bit-identical to the serial scan); the serial loop is the
        fallback whenever the executor declines the pass.
        """
        n = self.n_units
        n_items = self.encoded.n_items
        matrix: Optional[np.ndarray] = None
        if executor is not None:
            matrix = executor.count_items(self.encoded, self._bounds, monitor=monitor)
        if matrix is None:
            matrix = np.zeros((n_items, n), dtype=np.int64)
            ids = self.encoded.item_ids
            offsets = self.encoded.offsets
            bounds = self._bounds
            for offset in range(n):
                if monitor is not None:
                    monitor.tick_granule(offset)
                lo, hi = bounds[offset], bounds[offset + 1]
                if hi > lo:
                    unit_ids = ids[offsets[lo] : offsets[hi]]
                    matrix[:, offset] = np.bincount(unit_ids, minlength=n_items)
        present = np.flatnonzero(matrix.any(axis=1))
        return {int(item): matrix[item] for item in present}

    def count_candidates_per_unit(
        self,
        candidates: Sequence[Itemset],
        unit_mask: Optional[np.ndarray] = None,
        counting: str = "auto",
        monitor: Optional[RunMonitor] = None,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Dict[Itemset, np.ndarray]:
        """Per-unit supports of ``candidates`` in one scan of the data.

        Args:
            candidates: same-size candidate itemsets.
            unit_mask: optional boolean array (length ``n_units``); units
                where it is ``False`` are skipped entirely — the hook the
                cycle-skipping optimization uses.
            counting: ``"auto"`` or any registered counting backend —
                ``"dict"``, ``"hashtree"`` or ``"vertical"`` (see
                :mod:`repro.columnar.backends`).
            monitor: optional run monitor, checked at every granule
                boundary; raises
                :class:`~repro.runtime.budget.RunInterrupted` mid-scan,
                in which case the returned counts are incomplete and the
                caller must discard the pass.
            executor: optional sharded executor; when it accepts the
                pass, counting fans out across worker processes and the
                merged matrix (deterministic shard order) replaces the
                serial scan bit for bit.
        """
        n = self.n_units
        results: Dict[Itemset, np.ndarray] = {
            c: np.zeros(n, dtype=np.int64) for c in candidates
        }
        if not candidates:
            return results
        if executor is not None:
            matrix = executor.count_candidates(
                self.encoded,
                self._bounds,
                candidates,
                counting,
                unit_mask=unit_mask,
                monitor=monitor,
            )
            if matrix is not None:
                for row, candidate in enumerate(candidates):
                    results[candidate] = matrix[row]
                return results
        backend = resolve_backend(counting, len(candidates), len(candidates[0]))
        for offset in range(n):
            if monitor is not None:
                monitor.tick_granule(offset)
            if unit_mask is not None and not unit_mask[offset]:
                continue
            if not self.unit_sizes[offset]:
                continue
            counted = backend.count_pass(
                candidates, self.unit_segment(offset), monitor=monitor
            )
            for itemset, count in counted.items():
                if count:
                    results[itemset][offset] = count
        return results

    def count_candidates_masked(
        self,
        candidates: Sequence[Itemset],
        candidate_masks: np.ndarray,
        counting: str = "auto",
        monitor: Optional[RunMonitor] = None,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Dict[Itemset, np.ndarray]:
        """Per-unit supports with a *per-candidate* unit mask.

        ``candidate_masks`` is a boolean ``(len(candidates), n_units)``
        matrix; candidate ``i`` is only counted in the units where row
        ``i`` is ``True`` — the fine-grained form of cycle skipping the
        interleaved periodicity algorithm relies on.  Serial and sharded
        paths resolve the backend per unit from the *active* candidate
        subset, exactly like the original interleaved loop, so counts
        are bit-identical either way.
        """
        n = self.n_units
        results: Dict[Itemset, np.ndarray] = {
            c: np.zeros(n, dtype=np.int64) for c in candidates
        }
        if not candidates:
            return results
        if executor is not None:
            matrix = executor.count_candidates(
                self.encoded,
                self._bounds,
                candidates,
                counting,
                candidate_masks=candidate_masks,
                monitor=monitor,
            )
            if matrix is not None:
                for row, candidate in enumerate(candidates):
                    results[candidate] = matrix[row]
                return results
        k = len(candidates[0])
        for offset in range(n):
            if monitor is not None:
                monitor.tick_granule(offset)
            active = [
                candidate
                for row, candidate in enumerate(candidates)
                if candidate_masks[row, offset]
            ]
            if not active or not self.unit_sizes[offset]:
                continue
            backend = resolve_backend(counting, len(active), k)
            counted = backend.count_pass(
                active, self.unit_segment(offset), monitor=monitor
            )
            for itemset, count in counted.items():
                if count:
                    results[itemset][offset] = count
        return results

    def local_min_counts(self, min_support: float) -> np.ndarray:
        """Per-unit absolute thresholds implementing relative min-support.

        Empty units get threshold 1 (unsatisfiable), so nothing is
        locally frequent in them.
        """
        thresholds = np.array(
            [
                _min_count(min_support, int(size)) if size else 1
                for size in self.unit_sizes
            ],
            dtype=np.int64,
        )
        return thresholds


@dataclass
class PerUnitCounts:
    """Per-unit support counts for all retained itemsets.

    Attributes:
        context: the temporal context counted against.
        counts: itemset → int64 array of per-unit absolute supports.
        min_support: the local (per-unit) relative support threshold used.
    """

    context: TemporalContext
    counts: Dict[Itemset, np.ndarray]
    min_support: float

    def support_array(self, itemset: Itemset) -> np.ndarray:
        """Per-unit counts for ``itemset`` (zeros when never retained)."""
        row = self.counts.get(itemset)
        if row is None:
            return np.zeros(self.context.n_units, dtype=np.int64)
        return row

    def locally_frequent_mask(self, itemset: Itemset) -> np.ndarray:
        """Boolean per-unit mask: locally frequent at ``min_support``."""
        thresholds = self.context.local_min_counts(self.min_support)
        return self.support_array(itemset) >= thresholds

    def __len__(self) -> int:
        return len(self.counts)


def per_unit_frequent_itemsets(
    context: TemporalContext,
    min_support: float,
    min_units: int = 1,
    max_size: int = 0,
    counting: str = "auto",
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> PerUnitCounts:
    """Level-wise mining of itemsets locally frequent in >= ``min_units`` units.

    Returns per-unit counts for every retained itemset.  All subsets of a
    retained itemset are retained too (per-unit anti-monotonicity), which
    downstream rule evaluation relies on.

    Args:
        context: the partitioned database.
        min_support: per-unit relative support threshold in (0, 1].
        min_units: survival threshold — an itemset must be locally
            frequent in at least this many units to stay in the search
            (the temporal prune; 1 keeps everything frequent anywhere).
        max_size: cap on itemset size (0 = unbounded).
        counting: per-unit counting strategy.
        monitor: optional run monitor; when the run stops, the pass being
            counted is discarded and only fully-counted levels are
            returned, so every retained count is exact and the result is
            a subset of the unbudgeted run's.
        executor: optional :class:`~repro.parallel.executor.ShardedExecutor`
            fanning every counting pass across worker processes; output
            is bit-identical to the serial run.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningParameterError(f"min_support must be in (0, 1], got {min_support}")
    if min_units < 1:
        raise MiningParameterError(f"min_units must be >= 1, got {min_units}")
    thresholds = context.local_min_counts(min_support)
    retained: Dict[Itemset, np.ndarray] = {}
    tracer = tracer_of(monitor)

    try:
        # Level 1: single items in one scan.
        with tracer.span("pass", k=1):
            item_counts = context.count_items_per_unit(
                monitor=monitor, executor=executor
            )
            frontier: List[Itemset] = []
            for item, row in item_counts.items():
                frequent_units = int(np.count_nonzero(row >= thresholds))
                if frequent_units >= min_units:
                    singleton = Itemset((item,))
                    retained[singleton] = row
                    frontier.append(singleton)
            frontier.sort()
            if monitor is not None:
                monitor.complete_pass()

        k = 2
        while frontier and (max_size == 0 or k <= max_size):
            candidates = generate_candidates(frontier)
            if not candidates:
                break
            if monitor is not None:
                monitor.charge_candidates(len(candidates))
            with tracer.span("pass", k=k, candidates=len(candidates)):
                counted = context.count_candidates_per_unit(
                    candidates, counting=counting, monitor=monitor, executor=executor
                )
                frontier = []
                for itemset, row in counted.items():
                    frequent_units = int(np.count_nonzero(row >= thresholds))
                    if frequent_units >= min_units:
                        retained[itemset] = row
                        frontier.append(itemset)
                frontier.sort()
                if monitor is not None:
                    monitor.complete_pass()
            k += 1
    except RunInterrupted:
        # The interrupted pass never touched ``retained``: an incomplete
        # level-1 scan leaves it empty, an incomplete level-k scan is
        # discarded before its survivors are committed.
        pass
    return PerUnitCounts(context=context, counts=retained, min_support=min_support)
