"""Incremental maintenance of temporal mining results.

Transaction databases grow at the tail: new business days append new time
units while history is immutable.  Re-running a temporal task from
scratch after every batch wastes exactly the work the time axis makes
reusable — per-unit validity of closed units never changes.

:class:`IncrementalValidPeriodMiner` exploits that: it keeps per-unit
rule statistics and, on :meth:`append`, recomputes **only the units the
batch touches** (normally just the newest one).  Its report is asserted
(in the test suite) to equal the from-scratch
:func:`repro.baselines.sequential.sequential_valid_periods` on the full
accumulated database, with ``min_frequency == 1.0`` semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.apriori import AprioriOptions, apriori
from repro.core.items import Item, ItemCatalog, Itemset
from repro.core.rulegen import RuleKey, generate_rules
from repro.core.transactions import Transaction, TransactionDatabase
from repro.errors import MiningParameterError, TransactionError
from repro.mining.results import MiningReport, ValidPeriodRule
from repro.mining.rulespace import RuleUnitSeries
from repro.mining.tasks import ValidPeriodTask
from repro.mining.valid_periods import periods_for_series
from repro.temporal.granularity import Granularity, unit_index, unit_start


@dataclass
class _UnitState:
    """Mutable per-unit storage: the baskets plus derived rule stats."""

    baskets: List[Tuple[Item, ...]]
    rule_stats: Dict[RuleKey, Tuple[int, int]]  # key -> (count_xy, count_x)


class IncrementalValidPeriodMiner:
    """Maintains Task 1 results under append-only transaction streams.

    Restrictions (documented, enforced):

    * transactions must arrive in non-decreasing timestamp order — only
      the tail unit may ever be re-opened;
    * ``min_frequency`` is fixed at 1.0 (unbroken runs), the setting
      under which per-unit information alone determines the report.
    """

    def __init__(self, task: ValidPeriodTask, catalog: Optional[ItemCatalog] = None):
        if task.min_frequency < 1.0:
            raise MiningParameterError(
                "the incremental miner supports min_frequency == 1.0 only"
            )
        self.task = task
        self.catalog = catalog if catalog is not None else ItemCatalog()
        self._units: Dict[int, _UnitState] = {}  # absolute unit index -> state
        self._last_timestamp: Optional[datetime] = None
        self._n_transactions = 0
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    @property
    def n_units(self) -> int:
        if not self._units:
            return 0
        return max(self._units) - min(self._units) + 1

    def append(self, timestamp: datetime, items: Iterable[object]) -> None:
        """Ingest one transaction (timestamps must be non-decreasing)."""
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise TransactionError(
                f"out-of-order timestamp {timestamp} < {self._last_timestamp}; "
                "the incremental miner is append-only"
            )
        self._last_timestamp = timestamp
        ids: List[Item] = []
        for element in items:
            if isinstance(element, str):
                ids.append(self.catalog.add(element))
            elif isinstance(element, int):
                ids.append(element)
            else:
                raise TransactionError(f"cannot interpret {element!r} as an item")
        unit = unit_index(timestamp, self.task.granularity)
        state = self._units.get(unit)
        if state is None:
            state = _UnitState(baskets=[], rule_stats={})
            self._units[unit] = state
        state.baskets.append(Itemset(ids).items)
        self._n_transactions += 1
        self._dirty.add(unit)

    def append_batch(
        self, transactions: Iterable[Tuple[datetime, Sequence[object]]]
    ) -> int:
        """Ingest many transactions; returns how many were added."""
        added = 0
        for timestamp, items in transactions:
            self.append(timestamp, items)
            added += 1
        return added

    # ------------------------------------------------------------------
    # incremental recomputation
    # ------------------------------------------------------------------

    def _refresh_dirty_units(self) -> int:
        """Re-mine every touched unit; returns the number refreshed."""
        refreshed = 0
        for unit in sorted(self._dirty):
            state = self._units[unit]
            state.rule_stats = self._mine_unit(unit, state.baskets)
            refreshed += 1
        self._dirty.clear()
        return refreshed

    def _mine_unit(
        self, unit: int, baskets: Sequence[Tuple[Item, ...]]
    ) -> Dict[RuleKey, Tuple[int, int]]:
        if not baskets:
            return {}
        unit_db = TransactionDatabase(catalog=self.catalog)
        stamp = unit_start(unit, self.task.granularity)
        for position, basket in enumerate(baskets):
            unit_db.add(stamp, basket, tid=position)
        frequent = apriori(
            unit_db,
            self.task.thresholds.min_support,
            options=AprioriOptions(max_size=self.task.max_rule_size),
        )
        rules = generate_rules(
            frequent,
            self.task.thresholds.min_confidence,
            max_consequent_size=self.task.max_consequent_size,
        )
        stats: Dict[RuleKey, Tuple[int, int]] = {}
        n = len(unit_db)
        for rule in rules:
            stats[rule.key()] = (
                rule.support_count,
                round(rule.antecedent_support * n),
            )
        return stats

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def report(self) -> MiningReport:
        """The current Task 1 report over everything ingested so far."""
        started = time.perf_counter()
        self._refresh_dirty_units()
        if not self._units:
            return MiningReport(
                task_name="valid_periods(incremental)",
                results=(),
                n_transactions=0,
                n_units=0,
                elapsed_seconds=0.0,
            )
        first_unit = min(self._units)
        last_unit = max(self._units)
        n_units = last_unit - first_unit + 1
        unit_sizes = np.zeros(n_units, dtype=np.int64)
        for unit, state in self._units.items():
            unit_sizes[unit - first_unit] = len(state.baskets)

        per_rule_xy: Dict[RuleKey, np.ndarray] = {}
        per_rule_x: Dict[RuleKey, np.ndarray] = {}
        validity: Dict[RuleKey, np.ndarray] = {}
        for unit, state in self._units.items():
            offset = unit - first_unit
            for key, (count_xy, count_x) in state.rule_stats.items():
                if key not in validity:
                    validity[key] = np.zeros(n_units, dtype=bool)
                    per_rule_xy[key] = np.zeros(n_units, dtype=np.int64)
                    per_rule_x[key] = np.zeros(n_units, dtype=np.int64)
                validity[key][offset] = True
                per_rule_xy[key][offset] = count_xy
                per_rule_x[key][offset] = count_x

        context = _FrozenContext(
            first_unit=first_unit,
            n_units=n_units,
            unit_sizes=unit_sizes,
            granularity=self.task.granularity,
        )
        findings: List[ValidPeriodRule] = []
        for key in sorted(
            validity, key=lambda k: (k.antecedent.items, k.consequent.items)
        ):
            series = RuleUnitSeries(
                key=key,
                itemset_counts=per_rule_xy[key],
                antecedent_counts=per_rule_x[key],
                valid=validity[key],
            )
            if series.n_valid_units() < self.task.min_valid_units:
                continue
            periods = periods_for_series(
                series, context, self.task.min_frequency, self.task.min_coverage
            )
            if periods:
                findings.append(
                    ValidPeriodRule(
                        key=key,
                        granularity=self.task.granularity,
                        periods=tuple(periods),
                    )
                )
        elapsed = time.perf_counter() - started
        return MiningReport(
            task_name="valid_periods(incremental)",
            results=tuple(findings),
            n_transactions=self._n_transactions,
            n_units=n_units,
            elapsed_seconds=elapsed,
        )


@dataclass
class _FrozenContext:
    """The minimal context surface :func:`periods_for_series` consumes."""

    first_unit: int
    n_units: int
    unit_sizes: np.ndarray
    granularity: Granularity

    def to_absolute(self, offset: int) -> int:
        return offset + self.first_unit


class IncrementalPeriodicityMiner(IncrementalValidPeriodMiner):
    """Maintains Task 2 (cyclic periodicities) under append-only streams.

    Shares the per-unit machinery of the valid-period miner — the same
    dirty-unit bookkeeping and per-unit rule statistics — and re-derives
    cycles from the accumulated validity sequences on
    :meth:`periodicity_report`.  Matches
    :func:`repro.baselines.sequential.sequential_periodicities` exactly
    (a tested invariant).
    """

    def __init__(self, task, catalog: Optional[ItemCatalog] = None):
        from repro.mining.tasks import PeriodicityTask, ValidPeriodTask

        if not isinstance(task, PeriodicityTask):
            raise MiningParameterError(
                "IncrementalPeriodicityMiner requires a PeriodicityTask"
            )
        self.periodicity_task = task
        # Reuse the base class by translating the task's per-unit
        # semantics (thresholds and rule-shape caps are shared).
        base_task = ValidPeriodTask(
            granularity=task.granularity,
            thresholds=task.thresholds,
            min_frequency=1.0,
            min_coverage=1,
            max_rule_size=task.max_rule_size,
            max_consequent_size=task.max_consequent_size,
        )
        super().__init__(base_task, catalog=catalog)

    def periodicity_report(self) -> MiningReport:
        """The current Task 2 report over everything ingested so far."""
        from repro.mining.periodicities import _findings_for_series

        started = time.perf_counter()
        self._refresh_dirty_units()
        task = self.periodicity_task
        if not self._units:
            return MiningReport(
                task_name="periodicities(incremental)",
                results=(),
                n_transactions=0,
                n_units=0,
                elapsed_seconds=0.0,
            )
        first_unit = min(self._units)
        last_unit = max(self._units)
        n_units = last_unit - first_unit + 1
        unit_sizes = np.zeros(n_units, dtype=np.int64)
        for unit, state in self._units.items():
            unit_sizes[unit - first_unit] = len(state.baskets)
        context = _FrozenContext(
            first_unit=first_unit,
            n_units=n_units,
            unit_sizes=unit_sizes,
            granularity=task.granularity,
        )

        validity: Dict[RuleKey, np.ndarray] = {}
        per_rule_xy: Dict[RuleKey, np.ndarray] = {}
        per_rule_x: Dict[RuleKey, np.ndarray] = {}
        for unit, state in self._units.items():
            offset = unit - first_unit
            for key, (count_xy, count_x) in state.rule_stats.items():
                if key not in validity:
                    validity[key] = np.zeros(n_units, dtype=bool)
                    per_rule_xy[key] = np.zeros(n_units, dtype=np.int64)
                    per_rule_x[key] = np.zeros(n_units, dtype=np.int64)
                validity[key][offset] = True
                per_rule_xy[key][offset] = count_xy
                per_rule_x[key][offset] = count_x

        findings = []
        for key in sorted(
            validity, key=lambda k: (k.antecedent.items, k.consequent.items)
        ):
            series = RuleUnitSeries(
                key=key,
                itemset_counts=per_rule_xy[key],
                antecedent_counts=per_rule_x[key],
                valid=validity[key],
            )
            if series.n_valid_units() < task.min_repetitions:
                continue
            findings.extend(_findings_for_series(series, context, task))
        elapsed = time.perf_counter() - started
        return MiningReport(
            task_name="periodicities(incremental)",
            results=tuple(findings),
            n_transactions=self._n_transactions,
            n_units=n_units,
            elapsed_seconds=elapsed,
        )
