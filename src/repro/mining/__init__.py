"""Temporal association rule mining — the paper's three tasks.

* Task 1: valid-period discovery (:mod:`repro.mining.valid_periods`)
* Task 2: periodicity discovery (:mod:`repro.mining.periodicities`)
* Task 3: mining under a given temporal feature
  (:mod:`repro.mining.constrained`)

:class:`TemporalMiner` is the facade that runs any of them.
"""

from repro.mining.constrained import (
    describe_feature,
    feature_predicate,
    mine_with_feature,
    restrict_database,
)
from repro.mining.context import (
    PerUnitCounts,
    TemporalContext,
    per_unit_frequent_itemsets,
)
from repro.mining.engine import TemporalMiner
from repro.mining.periodicities import (
    cycles_of_sequence,
    discover_cyclic_interleaved,
    discover_periodicities,
    prune_submultiple_cycles,
)
from repro.mining.granularity_search import (
    GranularityFinding,
    describe_findings,
    discover_across_granularities,
)
from repro.mining.itemset_periods import ItemsetPeriods, discover_itemset_periods
from repro.mining.cooccurrence import (
    CotemporalGroup,
    cotemporal_groups,
    describe_groups,
    temporal_jaccard,
)
from repro.mining.incremental import (
    IncrementalPeriodicityMiner,
    IncrementalValidPeriodMiner,
)
from repro.mining.pruning import (
    PruningOutcome,
    PruningPolicy,
    prune_constrained_report,
    prune_rules,
    prune_temporal_specializations,
)
from repro.mining.results import (
    ConstrainedRule,
    MiningReport,
    PeriodicityFinding,
    ValidPeriod,
    ValidPeriodRule,
)
from repro.mining.rulespace import (
    RuleUnitSeries,
    candidate_rules,
    enumerate_rule_splits,
    rule_series,
)
from repro.mining.tasks import (
    ConstrainedTask,
    PeriodicityTask,
    RuleThresholds,
    TemporalFeature,
    ValidPeriodTask,
)
from repro.mining.trends import TrendFinding, detect_trends, fit_trend
from repro.mining.valid_periods import discover_valid_periods, maximal_valid_windows
from repro.mining.validation import (
    ValidationResult,
    generalization_rate,
    holdout_split,
    validate_periodicities,
)

__all__ = [
    "ConstrainedRule",
    "ConstrainedTask",
    "CotemporalGroup",
    "GranularityFinding",
    "IncrementalPeriodicityMiner",
    "IncrementalValidPeriodMiner",
    "ItemsetPeriods",
    "MiningReport",
    "PerUnitCounts",
    "PeriodicityFinding",
    "PeriodicityTask",
    "PruningOutcome",
    "PruningPolicy",
    "RuleThresholds",
    "RuleUnitSeries",
    "TemporalContext",
    "TemporalFeature",
    "TemporalMiner",
    "TrendFinding",
    "ValidPeriod",
    "ValidPeriodRule",
    "ValidPeriodTask",
    "ValidationResult",
    "candidate_rules",
    "cotemporal_groups",
    "cycles_of_sequence",
    "describe_feature",
    "discover_cyclic_interleaved",
    "discover_itemset_periods",
    "discover_periodicities",
    "describe_findings",
    "describe_groups",
    "detect_trends",
    "discover_across_granularities",
    "discover_valid_periods",
    "enumerate_rule_splits",
    "feature_predicate",
    "fit_trend",
    "maximal_valid_windows",
    "mine_with_feature",
    "per_unit_frequent_itemsets",
    "prune_constrained_report",
    "prune_rules",
    "prune_temporal_specializations",
    "prune_submultiple_cycles",
    "restrict_database",
    "rule_series",
    "generalization_rate",
    "holdout_split",
    "temporal_jaccard",
    "validate_periodicities",
]
