"""Candidate rule enumeration and per-unit rule validity.

Bridges per-unit itemset counts (:class:`~repro.mining.context.PerUnitCounts`)
to rule-level temporal analysis: every retained itemset of size >= 2 is
split into antecedent/consequent pairs, and each rule's per-unit *validity
sequence* — the boolean vector "does the rule hold in unit u" — is derived
from the counts.  The validity sequence is the single structure both the
valid-period and the periodicity algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.items import Itemset
from repro.core.rulegen import RuleKey
from repro.mining.context import PerUnitCounts


@dataclass(frozen=True)
class RuleUnitSeries:
    """Per-unit arrays for one candidate rule.

    Attributes:
        key: the rule (X ⇒ Y).
        itemset_counts: per-unit absolute support of X ∪ Y.
        antecedent_counts: per-unit absolute support of X.
        valid: boolean per-unit validity (support and confidence hold).
    """

    key: RuleKey
    itemset_counts: np.ndarray
    antecedent_counts: np.ndarray
    valid: np.ndarray

    def n_valid_units(self) -> int:
        return int(np.count_nonzero(self.valid))

    def temporal_support(self, unit_sizes: np.ndarray, mask: np.ndarray) -> float:
        """Support of X ∪ Y over the transactions of the masked units."""
        denominator = int(unit_sizes[mask].sum())
        if denominator == 0:
            return 0.0
        return float(self.itemset_counts[mask].sum()) / denominator

    def temporal_confidence(self, mask: np.ndarray) -> float:
        """Confidence over the transactions of the masked units."""
        denominator = int(self.antecedent_counts[mask].sum())
        if denominator == 0:
            return 0.0
        return float(self.itemset_counts[mask].sum()) / denominator


def enumerate_rule_splits(
    itemset: Itemset, max_consequent_size: int = 0
) -> Iterator[RuleKey]:
    """All (antecedent, consequent) splits of an itemset.

    Both sides non-empty and disjoint; ``max_consequent_size`` caps |Y|
    (0 = unbounded).

    >>> [str(k) for k in enumerate_rule_splits(Itemset.of(1, 2), 1)]
    ['{2} => {1}', '{1} => {2}']
    """
    items = itemset.items
    size = len(items)
    if size < 2:
        return
    limit = size - 1 if max_consequent_size == 0 else min(max_consequent_size, size - 1)
    for consequent_size in range(1, limit + 1):
        for consequent_items in combinations(items, consequent_size):
            consequent = Itemset(consequent_items)
            antecedent = itemset.difference(consequent)
            yield RuleKey(antecedent=antecedent, consequent=consequent)


def rule_series(
    counts: PerUnitCounts,
    key: RuleKey,
    min_confidence: float,
) -> RuleUnitSeries:
    """Build the per-unit validity series of one rule.

    A rule holds in unit ``u`` when its itemset is locally frequent there
    (per-unit support >= the counts' ``min_support``) and the unit
    confidence meets ``min_confidence``.
    """
    itemset_counts = counts.support_array(key.itemset)
    antecedent_counts = counts.support_array(key.antecedent)
    thresholds = counts.context.local_min_counts(counts.min_support)
    support_ok = itemset_counts >= thresholds
    with np.errstate(divide="ignore", invalid="ignore"):
        confidence = np.where(
            antecedent_counts > 0,
            itemset_counts / np.maximum(antecedent_counts, 1),
            0.0,
        )
    confidence_ok = confidence >= (min_confidence - 1e-12)
    return RuleUnitSeries(
        key=key,
        itemset_counts=itemset_counts,
        antecedent_counts=antecedent_counts,
        valid=support_ok & confidence_ok,
    )


def candidate_rules(
    counts: PerUnitCounts,
    min_confidence: float,
    min_valid_units: int = 1,
    max_consequent_size: int = 0,
) -> List[RuleUnitSeries]:
    """Every candidate rule holding in at least ``min_valid_units`` units.

    Enumerates splits of all retained itemsets of size >= 2 and filters by
    the validity count — the rule-level temporal prune.
    """
    results: List[RuleUnitSeries] = []
    for itemset in counts.counts:
        if len(itemset) < 2:
            continue
        for key in enumerate_rule_splits(itemset, max_consequent_size):
            series = rule_series(counts, key, min_confidence)
            if series.n_valid_units() >= min_valid_units:
                results.append(series)
    results.sort(key=lambda s: (s.key.antecedent.items, s.key.consequent.items))
    return results
