"""Task 3 — mining association rules under a *given* temporal feature.

The user supplies the temporal feature (an interval, an interval set, a
periodicity, or a calendar pattern/expression); the task restricts the
database to the transactions falling inside the feature and mines rules
there with the classical thresholds.  Rules that are invisible globally —
diluted below ``min_support`` by the rest of the history — surface once
the data is restricted, which is the paper's headline motivation.
"""

from __future__ import annotations

import time
from datetime import datetime
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.apriori import AprioriOptions, apriori
from repro.core.rulegen import generate_rules
from repro.core.transactions import Transaction, TransactionDatabase
from repro.errors import MiningParameterError
from repro.mining.results import ConstrainedRule, MiningReport
from repro.mining.tasks import ConstrainedTask, TemporalFeature
from repro.obs.trace import tracer_of
from repro.runtime.budget import RunInterrupted, RunMonitor
from repro.temporal.calendar_algebra import CalendarExpression, CalendarPattern
from repro.temporal.granularity import Granularity, unit_index
from repro.temporal.interval import IntervalSet, TimeInterval
from repro.temporal.periodicity import CalendricPeriodicity, CyclicPeriodicity

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.parallel.executor import ShardedExecutor


def feature_predicate(
    feature: TemporalFeature, granularity: Granularity
) -> Callable[[datetime], bool]:
    """A timestamp predicate implementing membership in ``feature``.

    Unit-based features (periodicities) classify the *unit* containing
    the timestamp at ``granularity``; instant-based features (intervals,
    calendars) classify the timestamp directly.
    """
    if isinstance(feature, TimeInterval):
        return feature.contains
    if isinstance(feature, IntervalSet):
        return feature.contains
    if isinstance(feature, CyclicPeriodicity):
        period = feature

        def in_cycle(instant: datetime) -> bool:
            return period.matches_unit(unit_index(instant, period.granularity))

        return in_cycle
    if isinstance(feature, CalendricPeriodicity):
        calendric = feature

        def in_calendar_units(instant: datetime) -> bool:
            return calendric.matches_unit(
                unit_index(instant, calendric.granularity)
            )

        return in_calendar_units
    if isinstance(feature, (CalendarPattern, CalendarExpression)):
        return feature.matches_instant
    raise MiningParameterError(f"unsupported temporal feature {feature!r}")


def describe_feature(feature: TemporalFeature) -> str:
    """Short human-readable description of a temporal feature."""
    if isinstance(feature, TimeInterval):
        return f"period {feature}"
    if isinstance(feature, IntervalSet):
        return f"periods {feature!r}"
    if isinstance(feature, (CyclicPeriodicity, CalendricPeriodicity)):
        return feature.describe()
    if isinstance(feature, CalendarPattern):
        return f"calendar[{feature.format()}]"
    if isinstance(feature, CalendarExpression):
        return f"calendar[{feature.format()}]"
    return str(feature)


def restrict_database(
    database: TransactionDatabase,
    feature: TemporalFeature,
    granularity: Granularity,
) -> TransactionDatabase:
    """The sub-database of transactions inside the temporal feature."""
    if isinstance(feature, TimeInterval):
        # Fast path: one binary-searched slice.
        return database.between(feature.start, feature.end)
    predicate = feature_predicate(feature, granularity)

    def transaction_in_feature(transaction: Transaction) -> bool:
        return predicate(transaction.timestamp)

    return database.restrict(transaction_in_feature)


def mine_with_feature(
    database: TransactionDatabase,
    task: ConstrainedTask,
    apriori_options: Optional[AprioriOptions] = None,
    counting: str = "auto",
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> MiningReport:
    """Run Task 3 end to end.

    ``counting`` selects the Apriori counting backend when
    ``apriori_options`` is not given (explicit options win); an
    ``executor`` parallelizes Apriori's candidate passes
    count-distribution style.

    Returns a :class:`MiningReport` of :class:`ConstrainedRule` records,
    sorted by descending confidence then support (the order
    :func:`repro.core.rulegen.generate_rules` produces).  A monitored
    run that stops early reports the rules derivable from Apriori's
    completed passes with ``partial=True`` (strict mode raises).
    """
    started = time.perf_counter()
    tracer = tracer_of(monitor)
    granularity = task.effective_granularity()
    with tracer.span("restrict"):
        restricted = restrict_database(database, task.feature, granularity)
    description = describe_feature(task.feature)
    results: List[ConstrainedRule] = []
    if len(restricted):
        options = apriori_options or AprioriOptions(
            counting=counting, max_size=task.max_rule_size
        )
        if options.max_size != task.max_rule_size and task.max_rule_size:
            options = AprioriOptions(
                counting=options.counting,
                transaction_reduction=options.transaction_reduction,
                max_size=task.max_rule_size,
            )
        with tracer.span("count", task="constrained", n_transactions=len(restricted)):
            frequent = apriori(
                restricted,
                task.thresholds.min_support,
                options=options,
                monitor=monitor,
                executor=executor,
            )
        rules = generate_rules(
            frequent,
            task.thresholds.min_confidence,
            max_consequent_size=task.max_consequent_size,
        )
        if task.required_items:
            catalog = restricted.catalog
            # An unknown label can match no rule at all.
            if all(label in catalog for label in task.required_items):
                required = {catalog.id(label) for label in task.required_items}
                rules = [
                    rule
                    for rule in rules
                    if required.issubset(set(rule.itemset))
                ]
            else:
                rules = []
        try:
            for rule in rules:
                if monitor is not None:
                    monitor.charge_rule()
                results.append(
                    ConstrainedRule(rule=rule, feature_description=description)
                )
        except RunInterrupted:
            pass
    elapsed = time.perf_counter() - started
    if monitor is not None:
        monitor.raise_for_strict()
    return MiningReport(
        task_name="constrained",
        results=tuple(results),
        n_transactions=len(restricted),
        n_units=0,
        elapsed_seconds=elapsed,
        partial=monitor.stopped if monitor is not None else False,
        diagnostics=monitor.diagnostics() if monitor is not None else None,
    )
