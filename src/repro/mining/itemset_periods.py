"""Valid periods of *itemsets* (frequent-pattern level, IADT'98 framing).

The companion paper on valid-period discovery defines temporal support
for itemsets before rules: an itemset's valid period is a maximal
interval of units in which the itemset is locally frequent.  Rule-level
analysis (:mod:`repro.mining.valid_periods`) adds the confidence
dimension; itemset-level analysis is what an analyst wants when asking
"when does this *product bundle* sell?" without fixing a direction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.items import ItemCatalog, Itemset
from repro.core.transactions import TransactionDatabase
from repro.mining.context import PerUnitCounts, TemporalContext, per_unit_frequent_itemsets
from repro.mining.results import MiningReport, ValidPeriod
from repro.mining.tasks import ValidPeriodTask
from repro.mining.valid_periods import maximal_valid_windows
from repro.temporal.granularity import Granularity
from repro.temporal.interval import TimeInterval


@dataclass(frozen=True)
class ItemsetPeriods:
    """⟨itemset, valid periods⟩ — one frequent pattern's temporal extent."""

    itemset: Itemset
    granularity: Granularity
    periods: Tuple[ValidPeriod, ...]

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        rendered = (
            catalog.format(self.itemset)
            if catalog is not None
            else ", ".join(str(i) for i in self.itemset)
        )
        periods = "; ".join(
            f"{p.label(self.granularity)} (supp={p.temporal_support:.3f})"
            for p in self.periods
        )
        return f"{{{rendered}}}  DURING  {periods}"

    def __str__(self) -> str:
        return self.format()


def discover_itemset_periods(
    database: TransactionDatabase,
    task: ValidPeriodTask,
    min_size: int = 2,
    context: Optional[TemporalContext] = None,
    counts: Optional[PerUnitCounts] = None,
    counting: str = "auto",
) -> MiningReport:
    """Find every itemset's maximal valid periods.

    Args:
        database: the timestamped transaction database.
        task: thresholds and period constraints (``min_confidence`` is
            ignored — itemsets have no direction).
        min_size: smallest itemset reported (default 2; singletons are
            usually noise at this level).
        context / counts: optional precomputed structures.

    Returns:
        A :class:`MiningReport` of :class:`ItemsetPeriods` records.
    """
    started = time.perf_counter()
    if context is None:
        context = TemporalContext(database, task.granularity)
    if counts is None:
        counts = per_unit_frequent_itemsets(
            context,
            task.thresholds.min_support,
            min_units=task.min_valid_units,
            max_size=task.max_rule_size,
            counting=counting,
        )
    thresholds = context.local_min_counts(task.thresholds.min_support)
    findings: List[ItemsetPeriods] = []
    for itemset in sorted(counts.counts):
        if len(itemset) < min_size:
            continue
        row = counts.counts[itemset]
        valid = row >= thresholds
        windows = maximal_valid_windows(valid, task.min_frequency, task.min_coverage)
        if not windows:
            continue
        periods: List[ValidPeriod] = []
        for start_offset, end_offset, n_valid in windows:
            mask = np.zeros(context.n_units, dtype=bool)
            mask[start_offset : end_offset + 1] = True
            denominator = int(context.unit_sizes[mask].sum())
            support = (
                float(row[mask].sum()) / denominator if denominator else 0.0
            )
            n_units = end_offset - start_offset + 1
            periods.append(
                ValidPeriod(
                    interval=TimeInterval.from_units(
                        context.to_absolute(start_offset),
                        context.to_absolute(end_offset),
                        context.granularity,
                    ),
                    first_unit=context.to_absolute(start_offset),
                    last_unit=context.to_absolute(end_offset),
                    n_units=n_units,
                    n_valid_units=n_valid,
                    frequency=n_valid / n_units,
                    temporal_support=support,
                    temporal_confidence=1.0,  # undirected: no confidence
                )
            )
        findings.append(
            ItemsetPeriods(
                itemset=itemset,
                granularity=context.granularity,
                periods=tuple(periods),
            )
        )
    elapsed = time.perf_counter() - started
    return MiningReport(
        task_name="itemset_periods",
        results=tuple(findings),
        n_transactions=len(database),
        n_units=context.n_units,
        elapsed_seconds=elapsed,
    )
