"""Task descriptions for the three temporal mining tasks.

The paper identifies "three forms of interesting mining tasks for temporal
association rules with certain constraints":

1. discovery of **valid time periods** during which association rules hold
   (:class:`ValidPeriodTask`),
2. discovery of possible **periodicities** that association rules have
   (:class:`PeriodicityTask`),
3. discovery of **association rules with (given) temporal features**
   (:class:`ConstrainedTask`).

Each task value is a plain, validated parameter record; the algorithms
live in their own modules and the :class:`~repro.mining.engine.TemporalMiner`
facade dispatches on the task type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.errors import MiningParameterError
from repro.temporal.calendar_algebra import CalendarExpression, CalendarPattern
from repro.temporal.granularity import Granularity
from repro.temporal.interval import IntervalSet, TimeInterval
from repro.temporal.periodicity import CalendricPeriodicity, CyclicPeriodicity

TemporalFeature = Union[
    TimeInterval,
    IntervalSet,
    CyclicPeriodicity,
    CalendricPeriodicity,
    CalendarPattern,
    CalendarExpression,
]
"""Any temporal feature a rule can be paired with (the TF of ⟨AR, TF⟩)."""


def _check_fraction(name: str, value: float, low_open: bool = False) -> None:
    lo_ok = value > 0.0 if low_open else value >= 0.0
    if not (lo_ok and value <= 1.0):
        bound = "(0, 1]" if low_open else "[0, 1]"
        raise MiningParameterError(f"{name} must be in {bound}, got {value}")


@dataclass(frozen=True)
class RuleThresholds:
    """The classical support/confidence thresholds, applied per time unit."""

    min_support: float
    min_confidence: float

    def __post_init__(self) -> None:
        _check_fraction("min_support", self.min_support, low_open=True)
        _check_fraction("min_confidence", self.min_confidence)


@dataclass(frozen=True)
class ValidPeriodTask:
    """Task 1 — find rules and the maximal periods in which they hold.

    A rule *holds* in a time unit when its per-unit support and confidence
    meet the thresholds.  A period ``[u1..u2]`` is *valid* for the rule
    when it starts and ends in units where the rule holds, the rule holds
    in at least ``min_frequency`` of its units, and it spans at least
    ``min_coverage`` units.  Only maximal such periods are reported.

    Attributes:
        granularity: time-unit granularity.
        thresholds: per-unit support/confidence thresholds.
        min_frequency: fraction of units inside the period in which the
            rule must hold (1.0 = every unit; lower tolerates gaps).
        min_coverage: minimum period length in units.
        max_rule_size: cap on |X ∪ Y| (0 = unbounded).
        max_consequent_size: cap on |Y| (0 = unbounded).
    """

    granularity: Granularity
    thresholds: RuleThresholds
    min_frequency: float = 1.0
    min_coverage: int = 2
    max_rule_size: int = 0
    max_consequent_size: int = 1

    def __post_init__(self) -> None:
        _check_fraction("min_frequency", self.min_frequency, low_open=True)
        if self.min_coverage < 1:
            raise MiningParameterError("min_coverage must be >= 1")
        if self.max_rule_size < 0 or self.max_consequent_size < 0:
            raise MiningParameterError("size caps must be >= 0")

    @property
    def min_valid_units(self) -> int:
        """Fewest units a rule must hold in to possibly have a valid period."""
        import math

        return max(1, math.ceil(self.min_coverage * self.min_frequency - 1e-9))


@dataclass(frozen=True)
class PeriodicityTask:
    """Task 2 — find the periodicities association rules obey.

    Searches cyclic periodicities (period, offset) up to ``max_period``
    and, optionally, a supplied space of calendar patterns.  A periodicity
    fits a rule when the rule holds in at least ``min_match`` of the
    periodicity's units inside the data window, with at least
    ``min_repetitions`` member units observed.

    Attributes:
        granularity: time-unit granularity.
        thresholds: per-unit support/confidence thresholds.
        max_period: largest cyclic period searched (in units).
        min_match: required fraction of member units where the rule holds
            (1.0 reproduces exact cyclic rules).
        min_repetitions: member units that must fall inside the window.
        calendar_patterns: calendar patterns to test as calendric
            periodicities (empty = cyclic search only).
        prune_submultiples: drop a cycle when a divisor cycle with the
            congruent offset was already found (e.g. keep period 7 and
            drop period 14 duplicates).
        max_rule_size / max_consequent_size: as in :class:`ValidPeriodTask`.
    """

    granularity: Granularity
    thresholds: RuleThresholds
    max_period: int = 12
    min_match: float = 1.0
    min_repetitions: int = 2
    calendar_patterns: Tuple[CalendarPattern, ...] = ()
    prune_submultiples: bool = True
    max_rule_size: int = 0
    max_consequent_size: int = 1

    def __post_init__(self) -> None:
        if self.max_period < 1:
            raise MiningParameterError("max_period must be >= 1")
        _check_fraction("min_match", self.min_match, low_open=True)
        if self.min_repetitions < 1:
            raise MiningParameterError("min_repetitions must be >= 1")
        for pattern in self.calendar_patterns:
            if not pattern.is_compatible_with(self.granularity):
                raise MiningParameterError(
                    f"calendar pattern {pattern} is finer than granularity "
                    f"{self.granularity}"
                )


@dataclass(frozen=True)
class ConstrainedTask:
    """Task 3 — mine rules inside a *given* temporal feature.

    The feature selects a sub-database (all transactions falling in the
    feature's units/intervals); rules are mined there with the classical
    thresholds.

    Attributes:
        feature: the temporal feature restricting the data.
        thresholds: support/confidence thresholds over the restriction.
        granularity: unit granularity used to interpret unit-based
            features (defaults to the feature's own granularity when it
            has one).
        required_items: item labels that every reported rule's itemset
            must contain (empty = no constraint).
        max_rule_size / max_consequent_size: as in :class:`ValidPeriodTask`.
    """

    feature: TemporalFeature
    thresholds: RuleThresholds
    granularity: Optional[Granularity] = None
    required_items: Tuple[str, ...] = ()
    max_rule_size: int = 0
    max_consequent_size: int = 1

    def __post_init__(self) -> None:
        if self.max_rule_size < 0 or self.max_consequent_size < 0:
            raise MiningParameterError("size caps must be >= 0")

    def effective_granularity(self) -> Granularity:
        """The granularity used to materialize unit-based features."""
        if self.granularity is not None:
            return self.granularity
        feature_granularity = getattr(self.feature, "granularity", None)
        if isinstance(feature_granularity, Granularity):
            return feature_granularity
        return Granularity.DAY
