"""The :class:`TemporalMiner` facade — one object, three mining tasks.

This is the programmatic kernel that both the TML executor and the IQMS
system drive.  It caches the temporal partitioning per granularity so an
interactive session that refines thresholds (the IQMI iterative loop)
does not re-bucket the data every time.

Every task method accepts the resilience knobs from
:mod:`repro.runtime`: a :class:`~repro.runtime.budget.RunBudget`, a
:class:`~repro.runtime.budget.CancellationToken`, or a pre-built
:class:`~repro.runtime.budget.RunMonitor` (which wins when given — the
fault-injection harness uses it to attach granule hooks).
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from typing import Callable, Dict, Optional, Tuple, Union

from repro.columnar.backends import available_backends
from repro.core.apriori import AprioriOptions
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.incremental import IncrementalContext, append_encoded
from repro.mining.constrained import mine_with_feature
from repro.mining.context import TemporalContext
from repro.mining.periodicities import discover_cyclic_interleaved, discover_periodicities
from repro.mining.results import MiningReport
from repro.mining.tasks import ConstrainedTask, PeriodicityTask, ValidPeriodTask
from repro.mining.valid_periods import discover_valid_periods
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.parallel.executor import ShardedExecutor
from repro.planner import (
    INCREMENTAL_MODES,
    QueryPlan,
    RefreshDecision,
    StatementShape,
    StoreStats,
    choose_refresh,
    compute_stats,
    plan_query,
    record_observed,
    stats_of_encoded,
)
from repro.runtime.budget import CancellationToken, RunBudget, RunMonitor
from repro.temporal.granularity import Granularity, unit_index

logger = get_logger(__name__)

#: ``trace=`` accepts a switch or a JSONL sink path.
TraceSetting = Union[bool, str, "os.PathLike[str]"]


def _shape_of(
    task: Union[ValidPeriodTask, PeriodicityTask, ConstrainedTask],
    interleaved: bool = False,
    cacheable: bool = False,
) -> StatementShape:
    """The planner's view of one task object."""
    if isinstance(task, ConstrainedTask):
        # Task 3 mines one Apriori over the feature-restricted segment;
        # there is no per-unit loop, so the shape is unitless.
        return StatementShape(
            task="constrained",
            granularity=None,
            min_support=task.thresholds.min_support,
            cacheable=cacheable,
            passes=task.max_rule_size if task.max_rule_size else 3,
        )
    name = "valid_periods" if isinstance(task, ValidPeriodTask) else "periodicities"
    return StatementShape(
        task=name,
        granularity=task.granularity,
        min_support=task.thresholds.min_support,
        interleaved=interleaved,
        cacheable=cacheable,
        passes=task.max_rule_size if task.max_rule_size else 3,
    )


def _make_monitor(
    budget: Optional[RunBudget],
    token: Optional[CancellationToken],
    monitor: Optional[RunMonitor],
    granule_hook: Optional[Callable[[int], None]],
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[RunMonitor]:
    """Resolve the monitor for one run (explicit monitor wins)."""
    if monitor is not None:
        return monitor
    if budget is None and token is None and granule_hook is None:
        return None
    return RunMonitor(
        budget=budget, token=token, granule_hook=granule_hook, metrics=metrics
    )


def _workers_from_env() -> Optional[int]:
    """The ``REPRO_WORKERS`` pin (``None`` = AUTO when unset).

    Lets CI run the *entire* suite with a pinned worker count without
    touching any test: every miner built with the default worker setting
    picks it up, and bit-identical semantics mean all assertions must
    still hold.  When the variable is absent the planner chooses per
    query (AUTO).

    A set-but-malformed value (``"two"``, ``"0"``, ``"-3"``) also falls
    back to AUTO, but emits a :class:`RuntimeWarning` naming the
    rejected value — a misconfigured deployment should degrade loudly,
    not silently change behaviour.
    """
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None or not raw.strip():
        return None
    text = raw.strip()
    if text.isdigit() and int(text) >= 1:
        return int(text)
    logger.warning(
        "ignoring malformed REPRO_WORKERS value %r "
        "(expected an integer >= 1); leaving worker selection to the planner",
        raw,
    )
    warnings.warn(
        f"ignoring malformed REPRO_WORKERS value {raw!r} "
        "(expected an integer >= 1); leaving worker selection to the planner",
        RuntimeWarning,
        stacklevel=2,
    )
    return None


def _incremental_from_env() -> str:
    """The ``REPRO_INCREMENTAL`` default mode (``"off"`` when unset).

    Mirrors :func:`_workers_from_env`: CI flips the whole suite to
    ``auto`` without touching a test, bit-identical semantics mean every
    assertion must still hold, and a malformed value degrades loudly to
    ``"off"`` rather than silently changing behaviour.
    """
    raw = os.environ.get("REPRO_INCREMENTAL")
    if raw is None or not raw.strip():
        return "off"
    text = raw.strip().lower()
    if text in INCREMENTAL_MODES:
        return text
    logger.warning(
        "ignoring malformed REPRO_INCREMENTAL value %r (expected ON, OFF or "
        "AUTO); incremental maintenance stays off",
        raw,
    )
    warnings.warn(
        f"ignoring malformed REPRO_INCREMENTAL value {raw!r} (expected ON, "
        "OFF or AUTO); incremental maintenance stays off",
        RuntimeWarning,
        stacklevel=2,
    )
    return "off"


class TemporalMiner:
    """High-level entry point for temporal association rule discovery.

    >>> miner = TemporalMiner(database)                    # doctest: +SKIP
    >>> report = miner.valid_periods(ValidPeriodTask(...)) # doctest: +SKIP
    """

    def __init__(
        self,
        database: TransactionDatabase,
        counting: str = "auto",
        workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: TraceSetting = False,
        incremental: Optional[str] = None,
    ):
        self.database = database
        self.counting = counting
        self.metrics = metrics
        self.trace = trace
        self._contexts: Dict[Granularity, TemporalContext] = {}
        self.workers: Optional[int] = None
        self._executor: Optional[ShardedExecutor] = None
        self._db_stats: Optional[StoreStats] = None
        self.incremental = "off"
        self.set_incremental(
            incremental if incremental is not None else _incremental_from_env()
        )
        self.set_workers(workers if workers is not None else _workers_from_env())

    def set_trace(self, trace: TraceSetting) -> None:
        """Toggle per-run tracing for subsequent runs.

        ``True`` attaches a serialized span tree to every report's
        ``trace`` field; a path value additionally appends one JSON line
        per run to that file.  ``False`` (the default) keeps the hot
        loops span-free.
        """
        self.trace = trace

    def set_workers(self, workers: Optional[int]) -> None:
        """Pin the worker-process count for subsequent runs, or un-pin.

        ``None`` (AUTO, the default) lets the planner choose per query.
        ``1`` pins everything serial; ``N >= 2`` pins counting passes to
        a sharded process pool of that size (results stay bit-identical
        either way — see :mod:`repro.parallel`).  Changing the setting
        tears the existing pool down; the next run builds a fresh one
        lazily.
        """
        if workers is not None and workers < 1:
            raise MiningParameterError(f"workers must be >= 1, got {workers}")
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.workers = workers

    @property
    def executor(self) -> Optional[ShardedExecutor]:
        """The current sharded executor; ``None`` while serial.

        With a pinned ``workers >= 2`` the executor is created on
        demand; under AUTO it exists only after a planned run that chose
        to fan out.
        """
        if self.workers is not None and self.workers >= 2 and self._executor is None:
            self._executor = ShardedExecutor(self.workers, metrics=self.metrics)
        return self._executor

    def _executor_for(self, plan: QueryPlan) -> Optional[ShardedExecutor]:
        """The executor matching one plan's worker/shard decision."""
        if plan.workers < 2:
            return None
        executor = self._executor
        if (
            executor is None
            or executor.workers != plan.workers
            or executor.n_shards != plan.n_shards
        ):
            if executor is not None:
                executor.close()
            executor = ShardedExecutor(
                plan.workers, metrics=self.metrics, n_shards=plan.n_shards
            )
            self._executor = executor
        return executor

    def close(self) -> None:
        """Release the worker pool (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "TemporalMiner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def set_counting(self, counting: str) -> None:
        """Select the counting backend for subsequent runs.

        Accepts ``"auto"`` or any registered backend name; raises
        :class:`~repro.errors.MiningParameterError` otherwise.  Cached
        contexts survive — the partitioning is backend-independent.
        """
        if counting != "auto" and counting not in available_backends():
            known = ", ".join(["auto"] + available_backends())
            raise MiningParameterError(
                f"unknown counting backend {counting!r}; available: {known}"
            )
        self.counting = counting

    def set_incremental(self, mode: str) -> None:
        """Select the incremental-maintenance mode for subsequent runs.

        ``"off"`` (the default) keeps no per-unit state between runs;
        ``"on"`` always takes the delta path once state exists; ``"auto"``
        lets the planner fall back to a full recount above the dirty
        fraction threshold.  Results are bit-identical under every mode
        (the differential suite in ``tests/incremental`` enforces it) —
        only latency changes.  Switching modes drops cached contexts.
        """
        normalized = str(mode).strip().lower()
        if normalized not in INCREMENTAL_MODES:
            known = ", ".join(INCREMENTAL_MODES)
            raise MiningParameterError(
                f"unknown incremental mode {mode!r}; expected one of: {known}"
            )
        if normalized != self.incremental:
            self.incremental = normalized
            self._contexts.clear()

    def context(self, granularity: Granularity) -> TemporalContext:
        """The (cached) temporal partitioning at ``granularity``."""
        context = self._contexts.get(granularity)
        if context is None:
            if self.incremental != "off":
                context = IncrementalContext(
                    self.database, granularity, metrics=self.metrics
                )
            else:
                context = TemporalContext(self.database, granularity)
            self._contexts[granularity] = context
        return context

    def invalidate(self) -> None:
        """Drop cached partitionings (call after mutating the database)."""
        self._contexts.clear()
        self._db_stats = None

    def apply_append(self, transactions) -> int:
        """Fold appended transactions into the miner without a rebuild.

        ``transactions`` is an iterable of ``(timestamp, items)`` or
        ``(timestamp, items, tid)`` tuples (items may be labels or ids;
        ``tid=None`` auto-assigns).  The attached database gains the
        rows either way; with incremental maintenance enabled the cached
        per-granularity contexts are *rebased* — the CSR layout extended
        in place of a re-encode, the touched units marked dirty, cached
        per-unit counts retained — otherwise they are simply dropped.
        Returns the number of transactions applied.
        """
        batch = list(transactions)
        if not batch:
            return 0
        added = []
        for entry in batch:
            timestamp, items = entry[0], entry[1]
            tid = entry[2] if len(entry) > 2 else None
            added.append(self.database.add(timestamp, items, tid=tid))
        self._db_stats = None
        if self.incremental == "off" or not self._contexts:
            self.invalidate()
            return len(added)
        triples = [
            (transaction.tid, transaction.timestamp, transaction.items.items)
            for transaction in added
        ]
        for granularity, context in list(self._contexts.items()):
            if not isinstance(context, IncrementalContext):
                del self._contexts[granularity]
                continue
            result = append_encoded(context.encoded, triples)
            touched = {
                unit_index(transaction.timestamp, granularity)
                for transaction in added
            }
            self._contexts[granularity] = context.rebased(result.encoded, touched)
        return len(added)

    def refresh_for(self, granularity: Granularity) -> Optional[RefreshDecision]:
        """The refresh decision the next run at ``granularity`` would take.

        ``None`` while incremental maintenance is off (there is no
        decision to make).  Side-effect free — ``EXPLAIN`` calls this.
        """
        if self.incremental == "off":
            return None
        context = self.context(granularity)
        if not isinstance(context, IncrementalContext):
            return None
        return choose_refresh(
            self.incremental,
            context.dirty_unit_count(),
            context.n_units,
            context.has_state(),
        )

    def _refresh_for_run(self, granularity: Granularity) -> Optional[RefreshDecision]:
        """Resolve and *apply* the refresh decision for one run.

        A ``full`` decision over cached state resets the context cache so
        the run counts cold (and records the fallback metric); a
        ``delta`` decision leaves the cache in place for the counting
        overrides to splice against.
        """
        if self.incremental == "off":
            return None
        context = self.context(granularity)
        if not isinstance(context, IncrementalContext):
            return None
        decision = choose_refresh(
            self.incremental,
            context.dirty_unit_count(),
            context.n_units,
            context.has_state(),
            metrics=self.metrics,
        )
        if decision.strategy == "full" and context.has_state():
            context.reset_cache()
        return decision

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Planner statistics of the attached database (memoized)."""
        if self._db_stats is None:
            if self._contexts:
                context = next(iter(self._contexts.values()))
                self._db_stats = stats_of_encoded(context.encoded)
            else:
                self._db_stats = compute_stats(self.database)
        return self._db_stats

    def plan_for(
        self,
        task: Union[ValidPeriodTask, PeriodicityTask, ConstrainedTask],
        interleaved: bool = False,
        cacheable: bool = False,
    ) -> QueryPlan:
        """Resolve the execution plan one task would run under *now*.

        Explicit ``counting=``/``set_counting`` and ``workers=``/
        ``set_workers`` settings become pins; everything left on AUTO is
        decided by the cost model.  ``EXPLAIN`` calls this without
        mining.
        """
        pin_backend = None if self.counting == "auto" else self.counting
        return plan_query(
            self.stats(),
            _shape_of(task, interleaved=interleaved, cacheable=cacheable),
            pin_backend=pin_backend,
            pin_workers=self.workers,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # per-run telemetry plumbing
    # ------------------------------------------------------------------

    def _monitor_for_run(
        self,
        budget: Optional[RunBudget],
        token: Optional[CancellationToken],
        monitor: Optional[RunMonitor],
        granule_hook: Optional[Callable[[int], None]],
    ) -> Tuple[Optional[RunMonitor], Optional[Tracer]]:
        """The (monitor, tracer) pair for one run.

        Tracing rides on the monitor (``monitor.trace``) because the
        monitor is the one per-run object already threaded through every
        counting loop; enabling tracing therefore forces a monitor even
        when no budget or token was requested.
        """
        resolved = _make_monitor(
            budget, token, monitor, granule_hook, metrics=self.metrics
        )
        if not self.trace:
            return resolved, None
        if resolved is None:
            resolved = RunMonitor(metrics=self.metrics)
        tracer = Tracer()
        resolved.trace = tracer
        return resolved, tracer

    def _finalize(
        self,
        report: MiningReport,
        tracer: Optional[Tracer],
        plan: Optional[QueryPlan] = None,
        refresh: Optional[RefreshDecision] = None,
    ) -> MiningReport:
        """Attach the plan, refresh decision and run trace to the report.

        Also feeds the observed wall time back into the planner's
        calibration counters, so later plans correct for model bias.
        """
        if plan is not None:
            record_observed(plan, report.elapsed_seconds, self.metrics)
            plan_dict = plan.to_dict()
            if refresh is not None:
                plan_dict["refresh"] = refresh.to_dict()
            report = dataclasses.replace(report, plan=plan_dict)
        if tracer is None:
            return report
        trace = tracer.to_dict()
        if plan is not None:
            trace = {**trace, "plan": report.plan}
        report = dataclasses.replace(report, trace=trace)
        if not isinstance(self.trace, bool):
            record = {"task": report.task_name, **trace}
            with open(os.fspath(self.trace), "a", encoding="utf-8") as sink:
                sink.write(json.dumps(record, sort_keys=True) + "\n")
        return report

    # ------------------------------------------------------------------
    # the three tasks
    # ------------------------------------------------------------------

    def valid_periods(
        self,
        task: ValidPeriodTask,
        budget: Optional[RunBudget] = None,
        token: Optional[CancellationToken] = None,
        monitor: Optional[RunMonitor] = None,
        granule_hook: Optional[Callable[[int], None]] = None,
    ) -> MiningReport:
        """Task 1 — discover the valid periods of rules."""
        resolved, tracer = self._monitor_for_run(budget, token, monitor, granule_hook)
        context = self.context(task.granularity)
        refresh = self._refresh_for_run(task.granularity)
        plan = self.plan_for(task)
        report = discover_valid_periods(
            self.database,
            task,
            context=context,
            counting=plan.backend,
            monitor=resolved,
            executor=self._executor_for(plan),
        )
        return self._finalize(report, tracer, plan, refresh=refresh)

    def periodicities(
        self,
        task: PeriodicityTask,
        interleaved: bool = False,
        budget: Optional[RunBudget] = None,
        token: Optional[CancellationToken] = None,
        monitor: Optional[RunMonitor] = None,
        granule_hook: Optional[Callable[[int], None]] = None,
    ) -> MiningReport:
        """Task 2 — discover rule periodicities.

        ``interleaved=True`` selects the cycle-pruning/cycle-skipping
        algorithm (exact cyclic search only; see
        :func:`repro.mining.periodicities.discover_cyclic_interleaved`).
        """
        resolved, tracer = self._monitor_for_run(budget, token, monitor, granule_hook)
        context = self.context(task.granularity)
        refresh = self._refresh_for_run(task.granularity)
        plan = self.plan_for(task, interleaved=interleaved)
        discover = discover_cyclic_interleaved if interleaved else discover_periodicities
        report = discover(
            self.database,
            task,
            context=context,
            counting=plan.backend,
            monitor=resolved,
            executor=self._executor_for(plan),
        )
        return self._finalize(report, tracer, plan, refresh=refresh)

    def with_feature(
        self,
        task: ConstrainedTask,
        apriori_options: Optional[AprioriOptions] = None,
        budget: Optional[RunBudget] = None,
        token: Optional[CancellationToken] = None,
        monitor: Optional[RunMonitor] = None,
        granule_hook: Optional[Callable[[int], None]] = None,
    ) -> MiningReport:
        """Task 3 — mine rules inside a given temporal feature."""
        resolved, tracer = self._monitor_for_run(budget, token, monitor, granule_hook)
        plan = self.plan_for(task)
        report = mine_with_feature(
            self.database,
            task,
            apriori_options=apriori_options,
            counting=plan.backend,
            monitor=resolved,
            executor=self._executor_for(plan),
        )
        return self._finalize(report, tracer, plan)
