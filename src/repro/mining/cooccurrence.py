"""Co-temporal rule analysis — which rules share their valid periods?

A result-analysis tool for Task 1 output: two rules are *co-temporal*
when their valid periods cover (nearly) the same stretches of time.
Groups of co-temporal rules usually share one underlying cause (a
season, a promotion, an event), so surfacing the groups turns a long
rule list into a short phenomenon list — the kind of judgment the IQMI
"result analysis" stage is about.

Similarity is the temporal Jaccard of the rules' period interval-sets;
grouping is single-linkage over the similarity graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.items import ItemCatalog
from repro.core.rulegen import RuleKey
from repro.errors import MiningParameterError
from repro.mining.results import MiningReport, ValidPeriodRule
from repro.temporal.interval import IntervalSet


def period_interval_set(record: ValidPeriodRule) -> IntervalSet:
    """The rule's valid periods as one canonical interval set."""
    return IntervalSet(period.interval for period in record.periods)


def temporal_jaccard(left: IntervalSet, right: IntervalSet) -> float:
    """|∩| / |∪| of two interval sets, measured in seconds."""
    intersection = left.intersection(right).total_duration().total_seconds()
    union = left.union(right).total_duration().total_seconds()
    return intersection / union if union > 0 else 0.0


@dataclass(frozen=True)
class CotemporalGroup:
    """One group of rules sharing their valid periods.

    Attributes:
        keys: the member rules.
        extent: the union of the members' valid periods.
    """

    keys: Tuple[RuleKey, ...]
    extent: IntervalSet

    def format(self, catalog: Optional[ItemCatalog] = None) -> str:
        members = "; ".join(key.format(catalog) for key in self.keys)
        window = self.extent.span()
        stamp = (
            f"{window.start.date()}..{window.end.date()}" if window else "(empty)"
        )
        return f"[{stamp}] {members}"


def cotemporal_groups(
    report: MiningReport,
    min_similarity: float = 0.8,
) -> List[CotemporalGroup]:
    """Group a valid-periods report into co-temporal rule clusters.

    Args:
        report: a Task 1 report (:class:`ValidPeriodRule` records).
        min_similarity: temporal Jaccard threshold for linking two rules.

    Returns:
        Groups sorted by (earliest start, first key); singleton groups
        are included, so every input rule appears exactly once.
    """
    if not 0.0 < min_similarity <= 1.0:
        raise MiningParameterError("min_similarity must be in (0, 1]")
    records = [r for r in report if isinstance(r, ValidPeriodRule)]
    extents = [period_interval_set(record) for record in records]
    n = len(records)

    # Single-linkage connected components over the similarity graph.
    parent = list(range(n))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for i in range(n):
        for j in range(i + 1, n):
            if temporal_jaccard(extents[i], extents[j]) >= min_similarity:
                parent[find(i)] = find(j)

    members: Dict[int, List[int]] = {}
    for index in range(n):
        members.setdefault(find(index), []).append(index)

    groups = []
    for indices in members.values():
        extent = IntervalSet()
        for index in indices:
            extent = extent.union(extents[index])
        keys = tuple(
            sorted(
                (records[i].key for i in indices),
                key=lambda k: (k.antecedent.items, k.consequent.items),
            )
        )
        groups.append(CotemporalGroup(keys=keys, extent=extent))
    from datetime import datetime as _datetime

    groups.sort(
        key=lambda g: (
            g.extent.span().start if g.extent.span() else _datetime.min,
            g.keys[0].antecedent.items,
        )
    )
    return groups


def describe_groups(
    groups: Sequence[CotemporalGroup], catalog: Optional[ItemCatalog] = None
) -> str:
    """Multi-line rendering, one group per line."""
    if not groups:
        return "(no co-temporal groups)"
    return "\n".join(group.format(catalog) for group in groups)
