"""Task 2 — discovery of the periodicities of association rules.

Two search spaces are covered:

* **Cyclic periodicities** (period ``p``, offset ``o``): the rule holds in
  (at least ``min_match`` of) the units ``u ≡ o (mod p)``.  With
  ``min_match = 1.0`` this is exactly the cyclic-association-rules notion
  of Özden, Ramaswamy & Silberschatz, whose *cycle pruning* and *cycle
  skipping* optimizations :func:`discover_cyclic_interleaved` reproduces.
* **Calendric periodicities**: the rule holds in (at least ``min_match``
  of) the units matching a calendar pattern, e.g. "every December".

Both consume the per-unit validity sequences of candidate rules; the
generic path (:func:`discover_periodicities`) computes validity everywhere
and post-hoc detects periodicities, while the interleaved path prunes the
search *during* counting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.apriori import generate_candidates
from repro.core.items import Itemset
from repro.core.rulegen import RuleKey
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.mining.context import PerUnitCounts, TemporalContext, per_unit_frequent_itemsets
from repro.mining.results import MiningReport, PeriodicityFinding
from repro.mining.rulespace import RuleUnitSeries, candidate_rules, enumerate_rule_splits, rule_series
from repro.mining.tasks import PeriodicityTask
from repro.obs.trace import tracer_of
from repro.runtime.budget import RunInterrupted, RunMonitor
from repro.temporal.periodicity import CalendricPeriodicity, CyclicPeriodicity

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.parallel.executor import ShardedExecutor

_EPS = 1e-9

Cycle = Tuple[int, int]
"""A cyclic periodicity as (period, absolute offset)."""


def cycles_of_sequence(
    valid: np.ndarray,
    first_unit: int,
    max_period: int,
    min_repetitions: int,
    min_match: float,
) -> List[Tuple[Cycle, int, int]]:
    """All qualifying cycles of a validity sequence.

    Args:
        valid: boolean per-unit validity, index 0 = absolute ``first_unit``.
        first_unit: absolute unit index of offset 0.
        max_period: largest period searched.
        min_repetitions: least member units required inside the window.
        min_match: required fraction of member units that are valid.

    Returns:
        ``((period, absolute_offset), n_members, n_valid)`` triples sorted
        by period then offset.
    """
    n = len(valid)
    results: List[Tuple[Cycle, int, int]] = []
    for period in range(1, max_period + 1):
        for relative in range(min(period, n)):
            members = valid[relative::period]
            n_members = len(members)
            if n_members < min_repetitions:
                continue
            n_valid = int(np.count_nonzero(members))
            if n_valid / n_members >= min_match - _EPS:
                absolute_offset = (first_unit + relative) % period
                results.append(((period, absolute_offset), n_members, n_valid))
    return results


def prune_submultiple_cycles(
    cycles: Sequence[Tuple[Cycle, int, int]]
) -> List[Tuple[Cycle, int, int]]:
    """Drop cycles implied by a shorter cycle already present.

    ``(p, o)`` is a *sub-multiple duplicate* when some kept ``(q, r)`` has
    ``q`` dividing ``p`` and ``o ≡ r (mod q)`` — its member units are a
    subset of the shorter cycle's, so it conveys nothing new.
    """
    kept: List[Tuple[Cycle, int, int]] = []
    for entry in sorted(cycles, key=lambda e: (e[0][0], e[0][1])):
        (period, offset), _, _ = entry
        dominated = any(
            period % q == 0 and offset % q == r for (q, r), _, _ in kept
        )
        if not dominated:
            kept.append(entry)
    return kept


def _member_mask(cycle: Cycle, first_unit: int, n_units: int) -> np.ndarray:
    period, offset = cycle
    relative = (offset - first_unit) % period
    mask = np.zeros(n_units, dtype=bool)
    mask[relative::period] = True
    return mask


def _calendar_member_mask(
    periodicity: CalendricPeriodicity, context: TemporalContext
) -> np.ndarray:
    mask = np.zeros(context.n_units, dtype=bool)
    for offset in range(context.n_units):
        if periodicity.matches_unit(context.to_absolute(offset)):
            mask[offset] = True
    return mask


def _findings_for_series(
    series: RuleUnitSeries,
    context: TemporalContext,
    task: PeriodicityTask,
) -> List[PeriodicityFinding]:
    findings: List[PeriodicityFinding] = []
    cycles = cycles_of_sequence(
        series.valid,
        context.first_unit,
        task.max_period,
        task.min_repetitions,
        task.min_match,
    )
    if task.prune_submultiples:
        cycles = prune_submultiple_cycles(cycles)
    for cycle, n_members, n_valid in cycles:
        mask = _member_mask(cycle, context.first_unit, context.n_units)
        findings.append(
            PeriodicityFinding(
                key=series.key,
                periodicity=CyclicPeriodicity(
                    period=cycle[0], offset=cycle[1], granularity=context.granularity
                ),
                n_member_units=n_members,
                n_valid_units=n_valid,
                match_ratio=n_valid / n_members,
                temporal_support=series.temporal_support(context.unit_sizes, mask),
                temporal_confidence=series.temporal_confidence(mask),
            )
        )
    for pattern in task.calendar_patterns:
        periodicity = CalendricPeriodicity(pattern, context.granularity)
        mask = _calendar_member_mask(periodicity, context)
        n_members = int(np.count_nonzero(mask))
        if n_members < task.min_repetitions:
            continue
        n_valid = int(np.count_nonzero(series.valid & mask))
        if n_valid / n_members < task.min_match - _EPS:
            continue
        findings.append(
            PeriodicityFinding(
                key=series.key,
                periodicity=periodicity,
                n_member_units=n_members,
                n_valid_units=n_valid,
                match_ratio=n_valid / n_members,
                temporal_support=series.temporal_support(context.unit_sizes, mask),
                temporal_confidence=series.temporal_confidence(mask),
            )
        )
    return findings


def discover_periodicities(
    database: TransactionDatabase,
    task: PeriodicityTask,
    context: Optional[TemporalContext] = None,
    counts: Optional[PerUnitCounts] = None,
    counting: str = "auto",
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> MiningReport:
    """Run Task 2 end to end (generic path: count everywhere, then detect).

    Returns a :class:`MiningReport` of :class:`PeriodicityFinding` records
    sorted by rule then period.  A monitored run that exhausts its budget
    (or is cancelled) stops counting at a granule/pass boundary and
    reports the findings derivable from the completed passes with
    ``partial=True`` (strict mode raises instead).
    """
    started = time.perf_counter()
    tracer = tracer_of(monitor)
    if context is None:
        context = TemporalContext(database, task.granularity)
    if counts is None:
        with tracer.span("count", task="periodicities"):
            counts = per_unit_frequent_itemsets(
                context,
                task.thresholds.min_support,
                min_units=task.min_repetitions,
                max_size=task.max_rule_size,
                counting=counting,
                monitor=monitor,
                executor=executor,
            )
    series_list = candidate_rules(
        counts,
        task.thresholds.min_confidence,
        min_valid_units=task.min_repetitions,
        max_consequent_size=task.max_consequent_size,
    )
    findings: List[PeriodicityFinding] = []
    # Detection over already-counted data still runs after a counting
    # stop (it is the partial result); only the rule cap applies here.
    try:
        with tracer.span("detect", candidates=len(series_list)):
            for series in series_list:
                for finding in _findings_for_series(series, context, task):
                    if monitor is not None:
                        monitor.charge_rule()
                    findings.append(finding)
    except RunInterrupted:
        pass
    elapsed = time.perf_counter() - started
    if monitor is not None:
        monitor.raise_for_strict()
    return MiningReport(
        task_name="periodicities",
        results=tuple(findings),
        n_transactions=len(database),
        n_units=context.n_units,
        elapsed_seconds=elapsed,
        partial=monitor.stopped if monitor is not None else False,
        diagnostics=monitor.diagnostics() if monitor is not None else None,
    )


# ----------------------------------------------------------------------
# Interleaved algorithm: cycle pruning + cycle skipping
# ----------------------------------------------------------------------


def _sequence_cycles_exact(
    valid: np.ndarray, first_unit: int, max_period: int, min_repetitions: int
) -> Set[Cycle]:
    """Cycles (min_match = 1.0) of a validity sequence, as a set."""
    return {
        cycle
        for cycle, _, _ in cycles_of_sequence(
            valid, first_unit, max_period, min_repetitions, 1.0
        )
    }


def _cycle_units(cycles: Set[Cycle], first_unit: int, n_units: int) -> np.ndarray:
    """Union member mask of a set of cycles."""
    mask = np.zeros(n_units, dtype=bool)
    for cycle in cycles:
        mask |= _member_mask(cycle, first_unit, n_units)
    return mask


def discover_cyclic_interleaved(
    database: TransactionDatabase,
    task: PeriodicityTask,
    context: Optional[TemporalContext] = None,
    counting: str = "auto",
    monitor: Optional[RunMonitor] = None,
    executor: Optional["ShardedExecutor"] = None,
) -> MiningReport:
    """Optimized cyclic discovery with cycle pruning and cycle skipping.

    Requires ``min_match == 1.0`` and no calendar patterns (the exact
    cyclic setting in which the two optimizations are sound):

    * **cycle pruning** — a candidate itemset can only have cycles common
      to all the cycles of its subsets, so candidates whose inherited
      cycle set is empty are dropped before counting;
    * **cycle skipping** — a candidate is only counted in units belonging
      to one of its still-live candidate cycles.

    Produces exactly the cyclic findings of :func:`discover_periodicities`
    (a property the test suite asserts) while scanning far fewer
    (unit, candidate) pairs.
    """
    if task.min_match < 1.0 - _EPS:
        raise MiningParameterError(
            "the interleaved algorithm requires min_match == 1.0"
        )
    if task.calendar_patterns:
        raise MiningParameterError(
            "the interleaved algorithm searches cyclic periodicities only"
        )
    started = time.perf_counter()
    if context is None:
        context = TemporalContext(database, task.granularity)
    thresholds = context.local_min_counts(task.thresholds.min_support)
    n_units = context.n_units
    first_unit = context.first_unit

    counts: Dict[Itemset, np.ndarray] = {}
    itemset_cycles: Dict[Itemset, Set[Cycle]] = {}
    tracer = tracer_of(monitor)

    try:
        # Level 1: one full scan (no skipping possible before cycles exist).
        with tracer.span("pass", k=1):
            for item, row in context.count_items_per_unit(
                monitor=monitor, executor=executor
            ).items():
                singleton = Itemset((item,))
                support_valid = row >= thresholds
                cycles = _sequence_cycles_exact(
                    support_valid, first_unit, task.max_period, task.min_repetitions
                )
                if cycles:
                    counts[singleton] = row
                    itemset_cycles[singleton] = cycles
            if monitor is not None:
                monitor.complete_pass()

        frontier = sorted(itemset_cycles)
        k = 2
        while frontier and (task.max_rule_size == 0 or k <= task.max_rule_size):
            joined = generate_candidates(frontier)
            if monitor is not None:
                monitor.charge_candidates(len(joined))
            # Cycle pruning: inherit the intersection of the subsets' cycles.
            candidate_cycles: Dict[Itemset, Set[Cycle]] = {}
            for candidate in joined:
                inherited: Optional[Set[Cycle]] = None
                ok = True
                for subset in candidate.subsets_of_size(k - 1):
                    subset_cycles = itemset_cycles.get(subset)
                    if subset_cycles is None:
                        ok = False
                        break
                    inherited = (
                        set(subset_cycles)
                        if inherited is None
                        else inherited & subset_cycles
                    )
                if ok and inherited:
                    candidate_cycles[candidate] = inherited
            if not candidate_cycles:
                break
            # Cycle skipping: count each candidate only in its live-cycle units.
            candidate_masks = {
                candidate: _cycle_units(cycles, first_unit, n_units)
                for candidate, cycles in candidate_cycles.items()
            }
            ordered = list(candidate_cycles)
            with tracer.span("pass", k=k, candidates=len(ordered)):
                per_candidate_counts = context.count_candidates_masked(
                    ordered,
                    np.stack([candidate_masks[candidate] for candidate in ordered]),
                    counting=counting,
                    monitor=monitor,
                    executor=executor,
                )
            # Re-derive surviving cycles from actual counts.  An
            # interruption above leaves this level uncommitted, so
            # ``counts``/``itemset_cycles`` only ever hold exact passes.
            frontier = []
            for candidate, row in per_candidate_counts.items():
                support_valid = (row >= thresholds) & candidate_masks[candidate]
                survivors = {
                    cycle
                    for cycle in candidate_cycles[candidate]
                    if bool(
                        support_valid[
                            _member_mask(cycle, first_unit, n_units)
                        ].all()
                    )
                }
                if survivors:
                    counts[candidate] = row
                    itemset_cycles[candidate] = survivors
                    frontier.append(candidate)
            frontier.sort()
            if monitor is not None:
                monitor.complete_pass()
            k += 1
    except RunInterrupted:
        pass

    # Rule phase: a rule's cycles are the itemset's support-cycles filtered
    # by per-unit confidence.  Runs over exact committed passes even after
    # a counting stop; only the rule cap applies.
    findings: List[PeriodicityFinding] = []
    min_confidence = task.thresholds.min_confidence
    interrupted = False
    for itemset in sorted(itemset_cycles):
        if interrupted:
            break
        if len(itemset) < 2:
            continue
        itemset_row = counts[itemset]
        for key in enumerate_rule_splits(itemset, task.max_consequent_size):
            if interrupted:
                break
            antecedent_row = counts.get(key.antecedent)
            if antecedent_row is None:
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                confidence = np.where(
                    antecedent_row > 0,
                    itemset_row / np.maximum(antecedent_row, 1),
                    0.0,
                )
            valid = (itemset_row >= thresholds) & (
                confidence >= min_confidence - 1e-12
            )
            rule_cycles: List[Tuple[Cycle, int, int]] = []
            for cycle in itemset_cycles[itemset]:
                mask = _member_mask(cycle, first_unit, n_units)
                n_members = int(np.count_nonzero(mask))
                if n_members < task.min_repetitions:
                    continue
                if bool(valid[mask].all()):
                    rule_cycles.append((cycle, n_members, n_members))
            if task.prune_submultiples:
                rule_cycles = prune_submultiple_cycles(rule_cycles)
            for cycle, n_members, n_valid in rule_cycles:
                if monitor is not None:
                    try:
                        monitor.charge_rule()
                    except RunInterrupted:
                        interrupted = True
                        break
                mask = _member_mask(cycle, first_unit, n_units)
                denominator_support = int(context.unit_sizes[mask].sum())
                denominator_confidence = int(antecedent_row[mask].sum())
                numerator = int(itemset_row[mask].sum())
                findings.append(
                    PeriodicityFinding(
                        key=key,
                        periodicity=CyclicPeriodicity(
                            period=cycle[0],
                            offset=cycle[1],
                            granularity=context.granularity,
                        ),
                        n_member_units=n_members,
                        n_valid_units=n_valid,
                        match_ratio=1.0,
                        temporal_support=(
                            numerator / denominator_support
                            if denominator_support
                            else 0.0
                        ),
                        temporal_confidence=(
                            numerator / denominator_confidence
                            if denominator_confidence
                            else 0.0
                        ),
                    )
                )
    elapsed = time.perf_counter() - started
    findings.sort(
        key=lambda f: (
            f.key.antecedent.items,
            f.key.consequent.items,
            f.periodicity.period,  # type: ignore[union-attr]
            f.periodicity.offset,  # type: ignore[union-attr]
        )
    )
    if monitor is not None:
        monitor.raise_for_strict()
    return MiningReport(
        task_name="periodicities",
        results=tuple(findings),
        n_transactions=len(database),
        n_units=context.n_units,
        elapsed_seconds=elapsed,
        partial=monitor.stopped if monitor is not None else False,
        diagnostics=monitor.diagnostics() if monitor is not None else None,
    )
