"""Pruning of uninteresting temporal association rules.

The paper motivates its restricted tasks by the "two-dimensional solution
space" — rules x temporal features — being too large to report wholesale.
Beyond restricting the *search*, the companion literature prunes the
*output*; this module implements the three classic output prunes, applied
to this library's rule and report types:

* **misleading rules** — ``X ⇒ y`` is misleading when some generalization
  ``X' ⊂ X`` predicts ``y`` at least ``gamma`` times as confidently: the
  extra antecedent items *reduce* the likelihood of ``y``.
* **statistically insignificant rules** — the Megiddo–Srikant binomial
  p-value of the rule exceeds ``alpha`` (the co-occurrence is explainable
  by chance).
* **uninteresting specializations** — ``X ⇒ y`` adds nothing over a kept
  ``X' ⇒ y`` unless its confidence is at least ``delta`` times the
  generalization's (the local-pruning interest criterion).

All three need sub-rule confidences; when a
:class:`~repro.core.apriori.FrequentItemsets` is supplied they are exact,
otherwise they are computed against the rules present in the input list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.apriori import FrequentItemsets
from repro.core.items import Itemset
from repro.core.measures import rule_p_value
from repro.core.rulegen import AssociationRule, RuleKey
from repro.errors import MiningParameterError
from repro.mining.results import ConstrainedRule, MiningReport


@dataclass(frozen=True)
class PruningPolicy:
    """What to prune and how aggressively.

    Attributes:
        misleading_gamma: prune ``X ⇒ y`` when a generalization is at
            least this factor more confident (>= 1.0; 0 disables).
        significance_alpha: prune rules with p-value above this (None
            disables).
        interest_delta: keep a specialization only when its confidence is
            at least ``delta`` times its best kept generalization's
            (<= 1.0 keeps everything; 0 disables).
    """

    misleading_gamma: float = 1.0
    significance_alpha: Optional[float] = 0.05
    interest_delta: float = 0.0

    def __post_init__(self) -> None:
        if self.misleading_gamma < 0:
            raise MiningParameterError("misleading_gamma must be >= 0")
        if self.significance_alpha is not None and not (
            0.0 < self.significance_alpha <= 1.0
        ):
            raise MiningParameterError("significance_alpha must be in (0, 1]")
        if self.interest_delta < 0:
            raise MiningParameterError("interest_delta must be >= 0")


@dataclass
class PruningOutcome:
    """The verdicts of one pruning pass."""

    kept: List[AssociationRule]
    misleading: List[AssociationRule]
    insignificant: List[AssociationRule]
    uninteresting: List[AssociationRule]

    def summary(self) -> str:
        return (
            f"kept={len(self.kept)} misleading={len(self.misleading)} "
            f"insignificant={len(self.insignificant)} "
            f"uninteresting={len(self.uninteresting)}"
        )


class _ConfidenceOracle:
    """Confidence of arbitrary sub-rules, exact when counts are known."""

    def __init__(
        self,
        rules: Sequence[AssociationRule],
        frequent: Optional[FrequentItemsets],
    ):
        self._frequent = frequent
        self._by_key: Dict[RuleKey, float] = {
            rule.key(): rule.confidence for rule in rules
        }
        self._consequent_support: Dict[Itemset, float] = {
            rule.consequent: rule.consequent_support for rule in rules
        }

    def confidence(self, antecedent: Itemset, consequent: Itemset) -> Optional[float]:
        """conf(antecedent ⇒ consequent), or None when unknowable.

        The empty antecedent's "confidence" is supp(consequent), matching
        the misleading-rule definition that admits ``X' = ∅``.
        """
        if len(antecedent) == 0:
            support = self._consequent_support.get(consequent)
            if support is not None:
                return support
            if self._frequent is not None:
                return self._frequent.support(consequent)
            return None
        known = self._by_key.get(RuleKey(antecedent, consequent))
        if known is not None:
            return known
        if self._frequent is not None:
            count_x = self._frequent.count(antecedent)
            count_xy = self._frequent.count(antecedent.union(consequent))
            if count_x > 0 and count_xy > 0:
                return count_xy / count_x
        return None

    def generalizations(self, rule: AssociationRule) -> Iterable[Tuple[Itemset, float]]:
        """(antecedent', confidence) for every proper subset antecedent'."""
        antecedent = rule.antecedent
        for size in range(0, len(antecedent)):
            for subset in antecedent.subsets_of_size(size):
                confidence = self.confidence(subset, rule.consequent)
                if confidence is not None:
                    yield subset, confidence


def prune_rules(
    rules: Sequence[AssociationRule],
    policy: PruningPolicy = PruningPolicy(),
    frequent: Optional[FrequentItemsets] = None,
) -> PruningOutcome:
    """Apply the full pruning pipeline to a rule list.

    Order matters and follows the classic pipeline: global prunes first
    (misleading, insignificance), then the local interest prune processed
    general-to-specific so specializations are judged against *kept*
    generalizations only.
    """
    oracle = _ConfidenceOracle(rules, frequent)
    misleading: List[AssociationRule] = []
    insignificant: List[AssociationRule] = []
    survivors: List[AssociationRule] = []

    for rule in rules:
        if policy.misleading_gamma and _is_misleading(rule, oracle, policy):
            misleading.append(rule)
            continue
        if policy.significance_alpha is not None and _is_insignificant(rule, policy):
            insignificant.append(rule)
            continue
        survivors.append(rule)

    uninteresting: List[AssociationRule] = []
    kept: List[AssociationRule] = []
    if policy.interest_delta:
        kept_confidence: Dict[RuleKey, float] = {}
        # General-to-specific: shorter antecedents first.
        for rule in sorted(survivors, key=lambda r: (len(r.antecedent), r.antecedent.items)):
            interesting = True
            for subset, _conf in _kept_generalizations(rule, kept_confidence):
                if rule.confidence < policy.interest_delta * _conf:
                    interesting = False
                    break
            if interesting:
                kept.append(rule)
                kept_confidence[rule.key()] = rule.confidence
            else:
                uninteresting.append(rule)
        # Restore the input ordering for the kept rules.
        kept_keys = {rule.key() for rule in kept}
        kept = [rule for rule in survivors if rule.key() in kept_keys]
    else:
        kept = survivors

    return PruningOutcome(
        kept=kept,
        misleading=misleading,
        insignificant=insignificant,
        uninteresting=uninteresting,
    )


def _is_misleading(
    rule: AssociationRule, oracle: _ConfidenceOracle, policy: PruningPolicy
) -> bool:
    # Misleading iff some generalization is strictly more confident by the
    # gamma factor: the extra antecedent items lower the chance of y.
    # (Exact ties are not misleading — they are handled, if at all, by the
    # interest prune.)
    threshold = max(
        policy.misleading_gamma * rule.confidence, rule.confidence + 1e-12
    )
    return any(
        confidence >= threshold
        for _subset, confidence in oracle.generalizations(rule)
    )


def _is_insignificant(rule: AssociationRule, policy: PruningPolicy) -> bool:
    p_value = rule_p_value(
        rule.n_transactions,
        rule.support_count,
        rule.antecedent_support,
        rule.consequent_support,
    )
    return p_value > policy.significance_alpha  # type: ignore[operator]


def _kept_generalizations(
    rule: AssociationRule, kept_confidence: Dict[RuleKey, float]
) -> Iterable[Tuple[Itemset, float]]:
    antecedent = rule.antecedent
    for size in range(1, len(antecedent)):
        for subset in antecedent.subsets_of_size(size):
            confidence = kept_confidence.get(RuleKey(subset, rule.consequent))
            if confidence is not None:
                yield subset, confidence


def prune_constrained_report(
    report: MiningReport,
    policy: PruningPolicy = PruningPolicy(),
    frequent: Optional[FrequentItemsets] = None,
) -> Tuple[MiningReport, PruningOutcome]:
    """Prune a Task 3 report; returns (pruned report, verdicts)."""
    records = list(report)
    rules = [record.rule for record in records if isinstance(record, ConstrainedRule)]
    outcome = prune_rules(rules, policy, frequent)
    kept_keys = {rule.key() for rule in outcome.kept}
    kept_records = tuple(
        record
        for record in records
        if isinstance(record, ConstrainedRule) and record.key in kept_keys
    )
    pruned_report = MiningReport(
        task_name=report.task_name + "(pruned)",
        results=kept_records,
        n_transactions=report.n_transactions,
        n_units=report.n_units,
        elapsed_seconds=report.elapsed_seconds,
    )
    return pruned_report, outcome


def prune_temporal_specializations(report: MiningReport) -> MiningReport:
    """Drop ⟨rule, TF⟩ findings dominated by a generalization's finding.

    A valid-period (or periodicity) finding for ``X ⇒ y`` is dominated
    when some ``X' ⊂ X`` with the same consequent reports a temporal
    feature covering every unit of it — the specialized rule holds in a
    subset of the time its generalization already holds, so it adds no
    temporal information.
    """
    records = list(report)
    by_key: Dict[RuleKey, object] = {}
    for record in records:
        key = getattr(record, "key", None)
        if isinstance(key, RuleKey):
            by_key[key] = record
    kept = []
    for record in records:
        key = getattr(record, "key", None)
        if not isinstance(key, RuleKey) or len(key.antecedent) <= 1:
            kept.append(record)
            continue
        dominated = False
        for size in range(1, len(key.antecedent)):
            for subset in key.antecedent.subsets_of_size(size):
                parent = by_key.get(RuleKey(subset, key.consequent))
                if parent is not None and _feature_covers(parent, record):
                    dominated = True
                    break
            if dominated:
                break
        if not dominated:
            kept.append(record)
    return MiningReport(
        task_name=report.task_name + "(despecialized)",
        results=tuple(kept),
        n_transactions=report.n_transactions,
        n_units=report.n_units,
        elapsed_seconds=report.elapsed_seconds,
    )


def _feature_covers(parent: object, child: object) -> bool:
    """Does the parent finding's temporal extent cover the child's?"""
    parent_periods = getattr(parent, "periods", None)
    child_periods = getattr(child, "periods", None)
    if parent_periods is not None and child_periods is not None:
        return all(
            any(
                p.first_unit <= c.first_unit and c.last_unit <= p.last_unit
                for p in parent_periods
            )
            for c in child_periods
        )
    parent_periodicity = getattr(parent, "periodicity", None)
    child_periodicity = getattr(child, "periodicity", None)
    if parent_periodicity is not None and child_periodicity is not None:
        return parent_periodicity == child_periodicity
    return False
