"""Multi-granularity temporal discovery.

The paper's temporal features live at a granularity (days, weeks,
months, ...), and the most *useful* description of a rule's temporal
behaviour is the one at the coarsest granularity that still explains the
data: "valid June–August" beats the same fact spelled out as 92 daily
intervals.

:func:`discover_across_granularities` runs Task 1 at several
granularities and, per rule, keeps the finding from the coarsest
granularity at which the rule has any valid period; finer granularities
are consulted only for rules invisible at the coarser ones (e.g. a
weekend rule has no valid *month*, but clean valid days).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.rulegen import RuleKey
from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.mining.results import MiningReport, ValidPeriodRule
from repro.mining.tasks import ValidPeriodTask
from repro.mining.valid_periods import discover_valid_periods
from repro.temporal.granularity import Granularity

# Coarse-to-fine default ladder; QUARTER/YEAR are rarely useful on
# year-scale datasets, HOUR explodes the unit count.
DEFAULT_LADDER: Tuple[Granularity, ...] = (
    Granularity.MONTH,
    Granularity.WEEK,
    Granularity.DAY,
)


@dataclass(frozen=True)
class GranularityFinding:
    """One rule's best-granularity valid periods."""

    record: ValidPeriodRule
    granularity: Granularity

    def format(self, catalog=None) -> str:
        return f"[{self.granularity}] {self.record.format(catalog)}"


def discover_across_granularities(
    database: TransactionDatabase,
    task: ValidPeriodTask,
    ladder: Sequence[Granularity] = DEFAULT_LADDER,
) -> Tuple[List[GranularityFinding], Dict[Granularity, MiningReport]]:
    """Run Task 1 down a granularity ladder, coarsest first.

    Args:
        database: the transaction database.
        task: the task template; its ``granularity`` field is overridden
            by each rung of the ladder.
        ladder: granularities in coarse-to-fine order.

    Returns:
        ``(findings, reports_by_granularity)`` where each rule appears
        once, attributed to the coarsest granularity that yielded a
        valid period for it.
    """
    if not ladder:
        raise MiningParameterError("the granularity ladder must be non-empty")
    seen: Dict[RuleKey, GranularityFinding] = {}
    reports: Dict[Granularity, MiningReport] = {}
    for granularity in ladder:
        rung_task = replace(task, granularity=granularity)
        report = discover_valid_periods(database, rung_task)
        reports[granularity] = report
        for record in report:
            assert isinstance(record, ValidPeriodRule)
            if record.key not in seen:
                seen[record.key] = GranularityFinding(
                    record=record, granularity=granularity
                )
    findings = sorted(
        seen.values(),
        key=lambda f: (f.record.key.antecedent.items, f.record.key.consequent.items),
    )
    return findings, reports


def describe_findings(
    findings: Sequence[GranularityFinding], catalog=None
) -> str:
    """Multi-line rendering grouped by granularity."""
    lines: List[str] = []
    for granularity in Granularity:
        members = [f for f in findings if f.granularity is granularity]
        if not members:
            continue
        lines.append(f"at {granularity} granularity:")
        for finding in members:
            lines.append("  " + finding.record.format(catalog))
    return "\n".join(lines) if lines else "(no temporal rules found)"
