"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class at the
system boundary (e.g. the IQMS REPL catches :class:`ReproError` and prints
the message instead of a traceback).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ItemError(ReproError):
    """Invalid item or itemset construction."""


class TransactionError(ReproError):
    """Invalid transaction or transaction-database operation."""


class MiningParameterError(ReproError):
    """A mining threshold or parameter is out of its valid range."""


class TemporalError(ReproError):
    """Invalid temporal object (interval, calendar pattern, periodicity)."""


class GranularityError(TemporalError):
    """Unknown or incompatible time granularity."""


class CalendarPatternError(TemporalError):
    """Malformed calendar pattern or calendar expression."""


class PeriodicityError(TemporalError):
    """Malformed periodicity specification."""


class BudgetExceededError(ReproError):
    """A mining run exhausted its :class:`~repro.runtime.RunBudget`.

    Raised only in *strict* mode; by default exhausted runs return a
    partial :class:`~repro.mining.results.MiningReport` instead.  The
    ``diagnostics`` attribute carries the run's
    :class:`~repro.runtime.RunDiagnostics` when available.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = diagnostics


class MiningCancelledError(ReproError):
    """A mining run was cancelled via a cooperative cancellation token.

    Raised only in *strict* mode; by default cancelled runs return a
    partial report.  Carries ``diagnostics`` like
    :class:`BudgetExceededError`.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = diagnostics


class DatabaseError(ReproError):
    """Failure in the SQLite-backed transaction store."""


class TransientDatabaseError(DatabaseError):
    """A retryable store failure (e.g. ``database is locked``) that still
    failed after the bounded retry budget was exhausted.

    The ``attempts`` attribute records how many tries were made.
    """

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class SchemaError(DatabaseError):
    """The relational schema does not match what the loader expects."""


class TmlError(ReproError):
    """Base class for Temporal Mining Language errors."""


class TmlLexError(TmlError):
    """Lexical error while tokenizing TML source text."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class TmlParseError(TmlError):
    """Syntax error while parsing TML source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class TmlExecutionError(TmlError):
    """Semantic or runtime error while executing a TML statement."""


class WorkflowError(ReproError):
    """Illegal transition in the IQMI mining-process workflow."""


class ServiceError(ReproError):
    """Base class for mining-service (scheduler / HTTP API) errors."""


class AdmissionError(ServiceError):
    """The service rejected a job because its queue is saturated (or the
    process is draining for shutdown).

    Maps to HTTP 503 at the API boundary; clients should back off and
    retry.  ``retry_after`` carries the server's backoff hint in
    seconds (the ``Retry-After`` header), which retrying clients must
    treat as the *floor* of their next backoff delay.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class JobNotFoundError(ServiceError):
    """No job with the requested id exists (maps to HTTP 404)."""


class ServiceUnreachableError(ServiceError):
    """The client could not reach the service (connect/read failure).

    Transient by nature — the client's retry loop treats it as
    retryable for idempotent requests.  A request that may have been
    *received* before the connection died is only retried when it
    carries an idempotency key.
    """


class JournalError(ServiceError):
    """The durable job journal could not record or recover state."""
