"""Persistent storage and the integrated query function.

The paper's IQMS couples a mining language to a relational DBMS (Oracle);
here the DBMS role is played by SQLite (see DESIGN.md substitutions).
"""

from repro.db.query import (
    QueryResult,
    basket_size_distribution,
    item_support_in_window,
    run_query,
    summarize,
    top_items,
    volume_by_unit,
)
from repro.db.sampling import (
    head,
    sample_transactions,
    select_calendar,
    select_items,
    select_time_window,
)
from repro.db.sqlite_store import SqliteStore, load_csv

__all__ = [
    "QueryResult",
    "SqliteStore",
    "basket_size_distribution",
    "head",
    "item_support_in_window",
    "load_csv",
    "run_query",
    "sample_transactions",
    "select_calendar",
    "select_items",
    "select_time_window",
    "summarize",
    "top_items",
    "volume_by_unit",
]
