"""The ad-hoc query function of the integrated system.

In the IQMI mining process the first step is *data understanding*: "the
data in any database can firstly be analysed ... to get some useful
information (e.g., summary information about the data for designing
mining tasks)".  This module provides that query function: raw read-only
SQL over the store plus canned summaries mining users always need
(volume over time, hot items, basket-size distribution).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional, Sequence, Tuple

from repro.db.sqlite_store import SqliteStore
from repro.errors import DatabaseError
from repro.temporal.granularity import Granularity, unit_index, unit_label

_FORBIDDEN_PREFIXES = (
    "insert", "update", "delete", "drop", "alter", "create", "replace",
    "attach", "detach", "pragma", "vacuum", "reindex",
)

#: DML verbs :func:`run_mutation` accepts (schema changes stay forbidden).
MUTATION_PREFIXES = ("insert", "update", "delete", "replace")


@dataclass(frozen=True)
class QueryResult:
    """A relational result: column names plus rows."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def format(self, limit: int = 20) -> str:
        """Plain-text table rendering (elided past ``limit`` rows)."""
        shown = self.rows if limit == 0 else self.rows[:limit]
        widths = [len(c) for c in self.columns]
        rendered = [[_cell(v) for v in row] for row in shown]
        for row in rendered:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(value))
        lines = [
            " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rendered:
            lines.append(" | ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
        if limit and len(self.rows) > limit:
            lines.append(f"... {len(self.rows) - limit} more row(s)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def run_query(
    store: SqliteStore, sql: str, parameters: Sequence[object] = ()
) -> QueryResult:
    """Execute read-only SQL against the store.

    Mutating statements are rejected — the query function exists for data
    understanding, not data management.
    """
    head = sql.strip().split(None, 1)
    if not head:
        raise DatabaseError("empty query")
    if head[0].lower() in _FORBIDDEN_PREFIXES:
        raise DatabaseError(
            f"only read-only queries are allowed, got {head[0].upper()}"
        )
    try:
        columns, rows = store.fetch_all(sql, tuple(parameters))
    except sqlite3.Error as error:
        raise DatabaseError(f"query failed: {error}") from error
    return QueryResult(columns=columns, rows=rows)


def is_mutating_sql(sql: str) -> bool:
    """True when ``sql`` starts with a DML verb run_mutation accepts."""
    head = sql.strip().split(None, 1)
    return bool(head) and head[0].lower() in MUTATION_PREFIXES


def run_mutation(
    store: SqliteStore, sql: str, parameters: Sequence[object] = ()
) -> QueryResult:
    """Execute a DML statement (INSERT/UPDATE/DELETE/REPLACE) and commit.

    Goes through the store's retry-wrapped primitives, so transient lock
    contention is absorbed.  Returns a one-row result with the affected
    row count.  Schema-changing statements stay rejected.
    """
    head = sql.strip().split(None, 1)
    if not head:
        raise DatabaseError("empty statement")
    verb = head[0].lower()
    if verb not in MUTATION_PREFIXES:
        raise DatabaseError(
            f"only {', '.join(v.upper() for v in MUTATION_PREFIXES)} are "
            f"allowed here, got {head[0].upper()}"
        )
    try:
        # Execute-and-commit atomically with respect to other threads'
        # reads on the shared connection.
        with store.lock:
            cursor = store._execute(sql, tuple(parameters))
            affected = cursor.rowcount
            store._commit()
    except sqlite3.Error as error:
        raise DatabaseError(f"mutation failed: {error}") from error
    return QueryResult(
        columns=("rows_affected",), rows=((affected,),)
    )


def summarize(store: SqliteStore) -> QueryResult:
    """Headline statistics: transactions, items, rows, span."""
    _, rows = store.fetch_all(
        "SELECT COUNT(DISTINCT tid), COUNT(DISTINCT item), COUNT(*),"
        " MIN(ts), MAX(ts) FROM transactions"
    )
    return QueryResult(
        columns=("transactions", "distinct_items", "item_rows", "first_ts", "last_ts"),
        rows=(rows[0],),
    )


def top_items(store: SqliteStore, limit: int = 10) -> QueryResult:
    """Most supported items with absolute and relative support."""
    total = max(store.count_transactions(), 1)
    _, fetched = store.fetch_all(
        "SELECT item, COUNT(DISTINCT tid) AS n FROM transactions"
        " GROUP BY item ORDER BY n DESC, item LIMIT ?",
        (limit,),
    )
    rows = tuple((item, n, n / total) for item, n in fetched)
    return QueryResult(columns=("item", "count", "support"), rows=rows)


def volume_by_unit(
    store: SqliteStore, granularity: Granularity = Granularity.MONTH
) -> QueryResult:
    """Transactions per time unit — the first thing a task designer plots."""
    _, fetched = store.fetch_all(
        "SELECT ts, tid FROM transactions GROUP BY tid ORDER BY ts"
    )
    buckets: dict = {}
    for stamp_text, _tid in fetched:
        index = unit_index(datetime.fromisoformat(stamp_text), granularity)
        buckets[index] = buckets.get(index, 0) + 1
    rows = tuple(
        (unit_label(index, granularity), count)
        for index, count in sorted(buckets.items())
    )
    return QueryResult(columns=(str(granularity), "transactions"), rows=rows)


def basket_size_distribution(store: SqliteStore) -> QueryResult:
    """Histogram of basket sizes (the 'T' parameter of the dataset)."""
    _, rows = store.fetch_all(
        "SELECT size, COUNT(*) FROM ("
        " SELECT tid, COUNT(*) AS size FROM transactions GROUP BY tid)"
        " GROUP BY size ORDER BY size"
    )
    return QueryResult(columns=("basket_size", "transactions"), rows=rows)


def item_support_in_window(
    store: SqliteStore, item: str, start: datetime, end: datetime
) -> float:
    """Relative support of one item within ``[start, end)``.

    A data-understanding probe for picking min-support thresholds.
    """
    _, total_rows = store.fetch_all(
        "SELECT COUNT(DISTINCT tid) FROM transactions WHERE ts >= ? AND ts < ?",
        (start.isoformat(), end.isoformat()),
    )
    total = total_rows[0][0]
    if not total:
        return 0.0
    _, item_rows = store.fetch_all(
        "SELECT COUNT(DISTINCT tid) FROM transactions"
        " WHERE item = ? AND ts >= ? AND ts < ?",
        (item, start.isoformat(), end.isoformat()),
    )
    return item_rows[0][0] / total
