"""SQLite-backed transaction store.

The paper's IQMS prototype integrates its mining language with Oracle
SQL; the Oracle role — a persistent relational store with an ad-hoc query
function — is played here by the Python standard library's ``sqlite3``
(see the substitution table in DESIGN.md).

Relational schema (one row per item occurrence, the classic basket
layout)::

    CREATE TABLE transactions (
        tid   INTEGER NOT NULL,
        ts    TEXT    NOT NULL,   -- ISO-8601 timestamp
        item  TEXT    NOT NULL,
        PRIMARY KEY (tid, item)
    );

The store converts to/from the in-memory
:class:`~repro.core.transactions.TransactionDatabase` that the mining
algorithms consume.
"""

from __future__ import annotations

import sqlite3
from datetime import datetime
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.items import ItemCatalog
from repro.core.transactions import Transaction, TransactionDatabase
from repro.errors import DatabaseError, SchemaError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS transactions (
    tid   INTEGER NOT NULL,
    ts    TEXT    NOT NULL,
    item  TEXT    NOT NULL,
    PRIMARY KEY (tid, item)
);
CREATE INDEX IF NOT EXISTS idx_transactions_ts ON transactions (ts);
CREATE INDEX IF NOT EXISTS idx_transactions_item ON transactions (item);
"""


class SqliteStore:
    """A persistent transaction store over SQLite.

    Usable as a context manager; ``":memory:"`` gives an ephemeral store.

    >>> store = SqliteStore(":memory:")
    >>> store.insert_transaction(datetime(2026, 1, 1), ["bread", "milk"])
    1
    >>> store.count_transactions()
    1
    """

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self.path = str(path)
        try:
            self._connection = sqlite3.connect(self.path)
        except sqlite3.Error as error:
            raise DatabaseError(f"cannot open {self.path!r}: {error}") from error
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection (used by the ad-hoc query function)."""
        return self._connection

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def next_tid(self) -> int:
        row = self._connection.execute("SELECT MAX(tid) FROM transactions").fetchone()
        return (row[0] or 0) + 1

    def insert_transaction(
        self,
        timestamp: datetime,
        items: Iterable[str],
        tid: Optional[int] = None,
    ) -> int:
        """Insert one transaction; returns its tid."""
        labels = sorted(set(items))
        if not labels:
            raise DatabaseError("cannot insert an empty transaction")
        if tid is None:
            tid = self.next_tid()
        try:
            self._connection.executemany(
                "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)",
                [(tid, timestamp.isoformat(), label) for label in labels],
            )
        except sqlite3.IntegrityError as error:
            self._connection.rollback()
            raise DatabaseError(f"duplicate tid {tid}: {error}") from error
        self._connection.commit()
        return tid

    def insert_many(
        self, transactions: Iterable[Tuple[datetime, Sequence[str]]]
    ) -> int:
        """Bulk insert; returns the number of transactions inserted."""
        tid = self.next_tid()
        rows: List[Tuple[int, str, str]] = []
        count = 0
        for timestamp, items in transactions:
            labels = sorted(set(items))
            if not labels:
                continue
            rows.extend((tid, timestamp.isoformat(), label) for label in labels)
            tid += 1
            count += 1
        if rows:
            self._connection.executemany(
                "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
            )
            self._connection.commit()
        return count

    def save_database(self, database: TransactionDatabase, replace: bool = False) -> int:
        """Persist an in-memory database; returns transactions written."""
        if replace:
            self.clear()
        catalog = database.catalog
        rows: List[Tuple[int, str, str]] = []
        for transaction in database:
            stamp = transaction.timestamp.isoformat()
            for item in transaction.items:
                rows.append((transaction.tid, stamp, catalog.label(item)))
        self._connection.executemany(
            "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
        )
        self._connection.commit()
        return len(database)

    def clear(self) -> None:
        """Delete every transaction."""
        self._connection.execute("DELETE FROM transactions")
        self._connection.commit()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def count_transactions(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(DISTINCT tid) FROM transactions"
        ).fetchone()
        return int(row[0])

    def count_items(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(DISTINCT item) FROM transactions"
        ).fetchone()
        return int(row[0])

    def time_span(self) -> Optional[Tuple[datetime, datetime]]:
        row = self._connection.execute(
            "SELECT MIN(ts), MAX(ts) FROM transactions"
        ).fetchone()
        if row[0] is None:
            return None
        return datetime.fromisoformat(row[0]), datetime.fromisoformat(row[1])

    def load_database(
        self,
        where: str = "",
        parameters: Sequence[object] = (),
        catalog: Optional[ItemCatalog] = None,
    ) -> TransactionDatabase:
        """Load (a filtered view of) the store into memory for mining.

        Args:
            where: optional SQL ``WHERE`` body over columns
                ``tid``/``ts``/``item`` (e.g. ``"ts >= ?"``); applied per
                item row, after which complete transactions are rebuilt.
            parameters: bound parameters for ``where``.
            catalog: optional shared catalog (labels register on load).
        """
        sql = "SELECT tid, ts, item FROM transactions"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY ts, tid"
        try:
            cursor = self._connection.execute(sql, tuple(parameters))
        except sqlite3.Error as error:
            raise DatabaseError(f"load query failed: {error}") from error
        database = TransactionDatabase(catalog=catalog)
        current_tid: Optional[int] = None
        current_stamp: Optional[datetime] = None
        current_items: List[str] = []
        for tid, stamp_text, item in cursor:
            if tid != current_tid:
                if current_tid is not None:
                    database.add(current_stamp, current_items, tid=current_tid)
                current_tid = tid
                try:
                    current_stamp = datetime.fromisoformat(stamp_text)
                except (TypeError, ValueError) as error:
                    raise DatabaseError(
                        f"transaction {tid} has a malformed timestamp "
                        f"{stamp_text!r}: {error}"
                    ) from error
                current_items = []
            current_items.append(item)
        if current_tid is not None:
            database.add(current_stamp, current_items, tid=current_tid)
        return database


def load_csv(
    store: SqliteStore,
    path: Union[str, Path],
    timestamp_column: str = "ts",
    tid_column: str = "tid",
    item_column: str = "item",
    delimiter: str = ",",
) -> int:
    """Load a long-format CSV (tid, ts, item) into a store.

    Returns the number of distinct transactions loaded.  Raises
    :class:`SchemaError` when the header lacks the expected columns.
    """
    import csv

    grouped: Dict[int, Tuple[datetime, List[str]]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        header = reader.fieldnames or []
        for column in (timestamp_column, tid_column, item_column):
            if column not in header:
                raise SchemaError(
                    f"CSV {path} lacks column {column!r}; found {header}"
                )
        for row in reader:
            tid = int(row[tid_column])
            stamp = datetime.fromisoformat(row[timestamp_column])
            entry = grouped.get(tid)
            if entry is None:
                grouped[tid] = (stamp, [row[item_column]])
            else:
                entry[1].append(row[item_column])
    rows = [
        (tid, stamp.isoformat(), item)
        for tid, (stamp, items) in sorted(grouped.items())
        for item in sorted(set(items))
    ]
    store.connection.executemany(
        "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
    )
    store.connection.commit()
    return len(grouped)
