"""SQLite-backed transaction store.

The paper's IQMS prototype integrates its mining language with Oracle
SQL; the Oracle role — a persistent relational store with an ad-hoc query
function — is played here by the Python standard library's ``sqlite3``
(see the substitution table in DESIGN.md).

Relational schema (one row per item occurrence, the classic basket
layout)::

    CREATE TABLE transactions (
        tid   INTEGER NOT NULL,
        ts    TEXT    NOT NULL,   -- ISO-8601 timestamp
        item  TEXT    NOT NULL,
        PRIMARY KEY (tid, item)
    );

The store converts to/from the in-memory
:class:`~repro.core.transactions.TransactionDatabase` that the mining
algorithms consume.

Resilience: every SQL primitive goes through
:func:`repro.runtime.retry.retry_call`, so transient ``database is
locked`` errors are retried with exponential backoff before surfacing as
:class:`~repro.errors.TransientDatabaseError`.  Each primitive is safe to
retry because SQLite acquires its lock *before* applying any statement —
a locked ``executemany`` never half-applies.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from datetime import datetime
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from dataclasses import dataclass

from repro.core.items import ItemCatalog
from repro.core.transactions import Transaction, TransactionDatabase
from repro.errors import DatabaseError, SchemaError
from repro.runtime.retry import RetryPolicy, retry_call

_SCHEMA = """
CREATE TABLE IF NOT EXISTS transactions (
    tid   INTEGER NOT NULL,
    ts    TEXT    NOT NULL,
    item  TEXT    NOT NULL,
    PRIMARY KEY (tid, item)
);
CREATE INDEX IF NOT EXISTS idx_transactions_ts ON transactions (ts);
CREATE INDEX IF NOT EXISTS idx_transactions_item ON transactions (item);
CREATE TABLE IF NOT EXISTS applied_appends (
    append_id      TEXT PRIMARY KEY,
    applied_at     TEXT    NOT NULL,
    n_transactions INTEGER NOT NULL
);
"""


@dataclass(frozen=True)
class AppendOutcome:
    """Result of one :meth:`SqliteStore.append_batch` call.

    Attributes:
        applied: ``False`` when the batch's ``append_id`` was already
            applied (the exactly-once dedupe), ``True`` otherwise.
        count: transactions written by *this* call (0 on a duplicate).
        tids: the tids assigned/used, in batch order (empty on a
            duplicate).
    """

    applied: bool
    count: int
    tids: Tuple[int, ...]


class SqliteStore:
    """A persistent transaction store over SQLite.

    Usable as a context manager; ``":memory:"`` gives an ephemeral store.
    File-backed stores run in WAL mode with a ``busy_timeout`` so
    concurrent readers do not starve writers; ``close()`` is idempotent
    and safe to call even when ``__init__`` failed mid-way.

    Thread safety: one store holds **one** connection, shared across
    threads and serialized by an internal :class:`threading.RLock` (the
    documented lock the threaded mining service relies on).  Every SQL
    primitive — including cursor *iteration*, which is the dangerous
    part of cross-thread connection reuse — runs while holding
    :attr:`lock`, so concurrent readers and writers can never interleave
    half-consumed cursors on the shared connection.  Callers composing
    multiple primitives into one atomic step (e.g. mutate-then-commit)
    should take ``with store.lock: ...`` themselves; the lock is
    re-entrant.

    >>> store = SqliteStore(":memory:")
    >>> store.insert_transaction(datetime(2026, 1, 1), ["bread", "milk"])
    1
    >>> store.count_transactions()
    1
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        busy_timeout_ms: int = 5000,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.path = str(path)
        # Set before any fallible work so close() is safe after a failed
        # construction (satellite: no AttributeError from __del__/with).
        self._connection: Optional[sqlite3.Connection] = None
        self._lock = threading.RLock()
        self._fingerprint_cache: Optional[str] = None
        self._fingerprint_key: Optional[Tuple[int, int, int]] = None
        # Planner statistics share the fingerprint's change key, so a
        # mutation invalidates both memos together (a plan can never be
        # built from stale stats against a fresh fingerprint).
        self._stats_cache = None
        self._stats_key: Optional[Tuple[int, int, int]] = None
        self._retry_policy = retry_policy or RetryPolicy()
        self._sleep = sleep
        # Per-thread retry deadline: the service sets this from the
        # running job's RunBudget so backoff sleeps against a contended
        # store can never overshoot the budget (thread-local because the
        # store is shared across worker threads with distinct budgets).
        self._retry_deadlines = threading.local()
        try:
            # check_same_thread=False: the connection is shared across the
            # service's worker threads; every access is serialized by
            # self._lock (see the class docstring).
            self._connection = sqlite3.connect(
                self.path, check_same_thread=False
            )
        except sqlite3.Error as error:
            raise DatabaseError(f"cannot open {self.path!r}: {error}") from error
        self._connection.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        if self.path != ":memory:":
            # WAL lets readers proceed during a write; NORMAL sync is the
            # standard pairing (durability still survives app crashes).
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        self._executescript(_SCHEMA)
        self._commit()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; safe to call repeatedly.

        Also safe on a store whose construction failed before the lock
        existed — the idempotence contract predates the lock.
        """
        lock = getattr(self, "_lock", None)
        if lock is None:
            connection = getattr(self, "_connection", None)
            self._connection = None
            if connection is not None:
                connection.close()
            return
        with lock:
            if self._connection is None:
                return
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection (used by the ad-hoc query function).

        Callers touching it directly from more than one thread must hold
        :attr:`lock` around the execute *and* the fetch.
        """
        if self._connection is None:
            raise DatabaseError(f"store {self.path!r} is closed")
        return self._connection

    @property
    def lock(self) -> threading.RLock:
        """The re-entrant lock serializing all access to the connection."""
        return self._lock

    # ------------------------------------------------------------------
    # retry-wrapped SQL primitives
    # ------------------------------------------------------------------

    def set_retry_deadline(self, deadline: Optional[float]) -> None:
        """Bound this thread's retry backoff by an absolute deadline.

        ``deadline`` is on ``time.monotonic`` (pass
        ``time.monotonic() + budget.max_seconds``, or
        :attr:`RunMonitor.deadline
        <repro.runtime.budget.RunMonitor.deadline>`); ``None`` clears
        the bound.  Only this thread's subsequent operations are
        affected.
        """
        self._retry_deadlines.value = deadline

    def retry_deadline(self) -> Optional[float]:
        """This thread's current retry deadline (``None`` = unbounded)."""
        return getattr(self._retry_deadlines, "value", None)

    def _retry(self, operation: Callable[[], object], describe: str):
        return retry_call(
            operation,
            policy=self._retry_policy,
            sleep=self._sleep,
            describe=describe,
            deadline=self.retry_deadline(),
        )

    def _execute(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        with self._lock:
            connection = self.connection
            return self._retry(
                lambda: connection.execute(sql, tuple(parameters)), f"execute: {sql}"
            )

    def _executemany(
        self, sql: str, rows: Sequence[Sequence[object]]
    ) -> sqlite3.Cursor:
        with self._lock:
            connection = self.connection
            return self._retry(
                lambda: connection.executemany(sql, rows), f"executemany: {sql}"
            )

    def _executescript(self, script: str) -> None:
        with self._lock:
            connection = self.connection
            self._retry(lambda: connection.executescript(script), "executescript")

    def _commit(self) -> None:
        with self._lock:
            connection = self.connection
            self._retry(connection.commit, "commit")

    def fetch_all(
        self, sql: str, parameters: Sequence[object] = ()
    ) -> Tuple[Tuple[str, ...], Tuple[Tuple[object, ...], ...]]:
        """Execute and fully fetch one query under the store lock.

        The thread-safe read primitive: the cursor is drained before the
        lock is released, so no other thread can interleave statements
        into a half-consumed cursor.  Returns ``(columns, rows)``.
        """
        with self._lock:
            cursor = self._execute(sql, parameters)
            columns = tuple(d[0] for d in cursor.description or ())
            return columns, tuple(tuple(row) for row in cursor.fetchall())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def next_tid(self) -> int:
        row = self._execute("SELECT MAX(tid) FROM transactions").fetchone()
        return (row[0] or 0) + 1

    def insert_transaction(
        self,
        timestamp: datetime,
        items: Iterable[str],
        tid: Optional[int] = None,
    ) -> int:
        """Insert one transaction; returns its tid."""
        labels = sorted(set(items))
        if not labels:
            raise DatabaseError("cannot insert an empty transaction")
        with self._lock:
            if tid is None:
                tid = self.next_tid()
            try:
                self._executemany(
                    "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)",
                    [(tid, timestamp.isoformat(), label) for label in labels],
                )
            except sqlite3.IntegrityError as error:
                self.connection.rollback()
                raise DatabaseError(f"duplicate tid {tid}: {error}") from error
            self._commit()
        return tid

    def insert_many(
        self, transactions: Iterable[Tuple[datetime, Sequence[str]]]
    ) -> int:
        """Bulk insert; returns the number of transactions inserted."""
        tid = self.next_tid()
        rows: List[Tuple[int, str, str]] = []
        count = 0
        for timestamp, items in transactions:
            labels = sorted(set(items))
            if not labels:
                continue
            rows.extend((tid, timestamp.isoformat(), label) for label in labels)
            tid += 1
            count += 1
        if rows:
            self._executemany(
                "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
            )
            self._commit()
        return count

    def append_batch(
        self,
        transactions: Iterable[
            Union[
                Tuple[datetime, Sequence[str]],
                Tuple[datetime, Sequence[str], Optional[int]],
            ]
        ],
        append_id: Optional[str] = None,
    ) -> AppendOutcome:
        """Append a batch of transactions atomically, exactly once.

        ``transactions`` holds ``(timestamp, items)`` or
        ``(timestamp, items, tid)`` entries (``tid=None`` auto-assigns
        sequentially from :meth:`next_tid`).  When ``append_id`` is
        given, a marker row in ``applied_appends`` is written **in the
        same SQLite transaction** as the data rows, so a crash-replay of
        the same batch (see the durability journal) is a no-op: either
        the original commit landed — marker present, replay skipped — or
        it did not, and the replay applies it for the first time.  An
        empty batch is a complete no-op (no marker, no commit).
        """
        batch = list(transactions)
        with self._lock:
            if append_id is not None:
                row = self._execute(
                    "SELECT n_transactions FROM applied_appends WHERE append_id = ?",
                    (append_id,),
                ).fetchone()
                if row is not None:
                    return AppendOutcome(applied=False, count=0, tids=())
            if not batch:
                return AppendOutcome(applied=True, count=0, tids=())
            next_tid = self.next_tid()
            rows: List[Tuple[int, str, str]] = []
            tids: List[int] = []
            for entry in batch:
                timestamp, items = entry[0], entry[1]
                tid = entry[2] if len(entry) > 2 else None
                labels = sorted(set(items))
                if not labels:
                    raise DatabaseError("cannot append an empty transaction")
                if tid is None:
                    tid = next_tid
                next_tid = max(next_tid, tid + 1)
                tids.append(int(tid))
                rows.extend(
                    (int(tid), timestamp.isoformat(), label) for label in labels
                )
            try:
                self._executemany(
                    "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)",
                    rows,
                )
                if append_id is not None:
                    self._execute(
                        "INSERT INTO applied_appends "
                        "(append_id, applied_at, n_transactions) VALUES (?, ?, ?)",
                        (append_id, datetime.now().isoformat(), len(tids)),
                    )
            except sqlite3.IntegrityError as error:
                self.connection.rollback()
                raise DatabaseError(
                    f"append batch conflicts with existing rows: {error}"
                ) from error
            self._commit()
        return AppendOutcome(applied=True, count=len(tids), tids=tuple(tids))

    def save_database(self, database: TransactionDatabase, replace: bool = False) -> int:
        """Persist an in-memory database; returns transactions written."""
        if replace:
            self.clear()
        catalog = database.catalog
        rows: List[Tuple[int, str, str]] = []
        for transaction in database:
            stamp = transaction.timestamp.isoformat()
            for item in transaction.items:
                rows.append((transaction.tid, stamp, catalog.label(item)))
        self._executemany(
            "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
        )
        self._commit()
        return len(database)

    def clear(self) -> None:
        """Delete every transaction (and the applied-append markers —
        a cleared store has no append history to dedupe against)."""
        self._execute("DELETE FROM transactions")
        self._execute("DELETE FROM applied_appends")
        self._commit()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def count_transactions(self) -> int:
        row = self._execute("SELECT COUNT(DISTINCT tid) FROM transactions").fetchone()
        return int(row[0])

    def count_items(self) -> int:
        row = self._execute("SELECT COUNT(DISTINCT item) FROM transactions").fetchone()
        return int(row[0])

    def time_span(self) -> Optional[Tuple[datetime, datetime]]:
        row = self._execute("SELECT MIN(ts), MAX(ts) FROM transactions").fetchone()
        if row[0] is None:
            return None
        return datetime.fromisoformat(row[0]), datetime.fromisoformat(row[1])

    def _change_key(self) -> Tuple[int, int, int]:
        """Cheap change marker keying both memos (fingerprint + stats).

        ``PRAGMA data_version`` catches other connections' commits,
        :attr:`sqlite3.Connection.total_changes` rows changed through
        this connection, and the row count guards the
        ``DELETE``-without-``WHERE`` truncate optimization (which older
        SQLite builds do not count).  Callers must hold :attr:`lock`.
        """
        connection = self.connection
        version = int(
            self._retry(
                lambda: connection.execute("PRAGMA data_version").fetchone(),
                "execute: PRAGMA data_version",
            )[0]
        )
        rows = int(
            self._retry(
                lambda: connection.execute(
                    "SELECT COUNT(*) FROM transactions"
                ).fetchone(),
                "execute: SELECT COUNT(*) FROM transactions",
            )[0]
        )
        return (version, connection.total_changes, rows)

    def stats(self):
        """Planner statistics of the store, as a ``StoreStats``.

        One aggregate query; memoized against the same change key as
        :meth:`fingerprint`, so both caches go stale (and refresh)
        together when the store mutates — the planner can never pair
        fresh content addressing with stale statistics.
        """
        from repro.planner.stats import StoreStats

        with self._lock:
            key = self._change_key()
            if self._stats_cache is not None and self._stats_key == key:
                return self._stats_cache
            row = self._execute(
                "SELECT COUNT(DISTINCT tid), COUNT(DISTINCT item), COUNT(*), "
                "MIN(ts), MAX(ts) FROM transactions"
            ).fetchone()
            first = datetime.fromisoformat(row[3]) if row[3] is not None else None
            last = datetime.fromisoformat(row[4]) if row[4] is not None else None
            self._stats_cache = StoreStats(
                n_transactions=int(row[0]),
                n_items=int(row[1]),
                n_occurrences=int(row[2]),
                first_timestamp=first,
                last_timestamp=last,
            )
            self._stats_key = key
            return self._stats_cache

    def fingerprint(self) -> str:
        """A content digest of the store — the dataset half of a cache key.

        SHA-256 over every ``(tid, ts, item)`` row in ``(tid, item)``
        order, so two stores holding the same transactions produce the
        same fingerprint regardless of insertion history (content
        addressing, not version counting).  The scan is memoized against
        a cheap change marker — ``PRAGMA data_version`` (bumped by other
        connections' commits), :attr:`sqlite3.Connection.total_changes`
        (rows changed through this connection) and the row count (guards
        the ``DELETE``-without-``WHERE`` truncate optimization, which
        older SQLite builds do not count) — so repeated queries against
        an unchanged store pay one aggregate lookup, not a table scan.
        """
        with self._lock:
            connection = self.connection
            key = self._change_key()
            if self._fingerprint_cache is not None and self._fingerprint_key == key:
                return self._fingerprint_cache
            digest = hashlib.sha256()
            cursor = self._retry(
                lambda: connection.execute(
                    "SELECT tid, ts, item FROM transactions ORDER BY tid, item"
                ),
                "execute: fingerprint scan",
            )
            for tid, stamp, item in cursor:
                digest.update(f"{tid}\x1f{stamp}\x1f{item}\x1e".encode("utf-8"))
            self._fingerprint_cache = digest.hexdigest()
            self._fingerprint_key = key
            return self._fingerprint_cache

    def load_database(
        self,
        where: str = "",
        parameters: Sequence[object] = (),
        catalog: Optional[ItemCatalog] = None,
    ) -> TransactionDatabase:
        """Load (a filtered view of) the store into memory for mining.

        Args:
            where: optional SQL ``WHERE`` body over columns
                ``tid``/``ts``/``item`` (e.g. ``"ts >= ?"``); applied per
                item row, after which complete transactions are rebuilt.
            parameters: bound parameters for ``where``.
            catalog: optional shared catalog (labels register on load).
        """
        sql = "SELECT tid, ts, item FROM transactions"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY ts, tid"
        try:
            # Drain the cursor under the lock: iterating a cursor while
            # another thread executes on the shared connection is the
            # classic cross-thread corruption path.
            with self._lock:
                rows = self._execute(sql, tuple(parameters)).fetchall()
        except sqlite3.Error as error:
            raise DatabaseError(f"load query failed: {error}") from error
        database = TransactionDatabase(catalog=catalog)
        current_tid: Optional[int] = None
        current_stamp: Optional[datetime] = None
        current_items: List[str] = []
        for tid, stamp_text, item in rows:
            if tid != current_tid:
                if current_tid is not None:
                    database.add(current_stamp, current_items, tid=current_tid)
                current_tid = tid
                try:
                    current_stamp = datetime.fromisoformat(stamp_text)
                except (TypeError, ValueError) as error:
                    raise DatabaseError(
                        f"transaction {tid} has a malformed timestamp "
                        f"{stamp_text!r}: {error}"
                    ) from error
                current_items = []
            current_items.append(item)
        if current_tid is not None:
            database.add(current_stamp, current_items, tid=current_tid)
        return database

    def load_encoded(
        self,
        where: str = "",
        parameters: Sequence[object] = (),
        catalog: Optional[ItemCatalog] = None,
    ) -> "EncodedDatabase":
        """Load straight into the columnar layout — the fast mining path.

        Same filtering semantics as :meth:`load_database`, but rows are
        grouped directly into the CSR arrays of an
        :class:`~repro.columnar.encoded.EncodedDatabase` without ever
        materializing per-transaction Python objects — the IO-side half
        of the columnar refactor.
        """
        from repro.columnar.encoded import EncodedDatabase

        sql = "SELECT tid, ts, item FROM transactions"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY ts, tid"
        try:
            with self._lock:
                rows = self._execute(sql, tuple(parameters)).fetchall()
        except sqlite3.Error as error:
            raise DatabaseError(f"load query failed: {error}") from error
        catalog = catalog if catalog is not None else ItemCatalog()

        def grouped_baskets():
            current_tid: Optional[int] = None
            current_stamp: Optional[datetime] = None
            current_ids: List[int] = []
            for tid, stamp_text, item in rows:
                if tid != current_tid:
                    if current_tid is not None:
                        yield current_tid, current_stamp, current_ids
                    current_tid = tid
                    try:
                        current_stamp = datetime.fromisoformat(stamp_text)
                    except (TypeError, ValueError) as error:
                        raise DatabaseError(
                            f"transaction {tid} has a malformed timestamp "
                            f"{stamp_text!r}: {error}"
                        ) from error
                    current_ids = []
                current_ids.append(catalog.add(item))
            if current_tid is not None:
                yield current_tid, current_stamp, current_ids

        return EncodedDatabase.from_baskets(grouped_baskets(), catalog=catalog)


def load_csv(
    store: SqliteStore,
    path: Union[str, Path],
    timestamp_column: str = "ts",
    tid_column: str = "tid",
    item_column: str = "item",
    delimiter: str = ",",
) -> int:
    """Load a long-format CSV (tid, ts, item) into a store.

    Returns the number of distinct transactions loaded.  Raises
    :class:`SchemaError` when the header lacks the expected columns.
    """
    import csv

    grouped: Dict[int, Tuple[datetime, List[str]]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        header = reader.fieldnames or []
        for column in (timestamp_column, tid_column, item_column):
            if column not in header:
                raise SchemaError(
                    f"CSV {path} lacks column {column!r}; found {header}"
                )
        for row in reader:
            tid = int(row[tid_column])
            stamp = datetime.fromisoformat(row[timestamp_column])
            entry = grouped.get(tid)
            if entry is None:
                grouped[tid] = (stamp, [row[item_column]])
            else:
                entry[1].append(row[item_column])
    rows = [
        (tid, stamp.isoformat(), item)
        for tid, (stamp, items) in sorted(grouped.items())
        for item in sorted(set(items))
    ]
    store._executemany(
        "INSERT INTO transactions (tid, ts, item) VALUES (?, ?, ?)", rows
    )
    store._commit()
    return len(grouped)
