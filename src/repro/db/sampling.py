"""Data selection and sampling for mining-task design.

The paper highlights that "data selection and sampling for different data
mining tasks are easy to achieve with the query function that is
integrated in the system".  These helpers implement the standard
selections a task designer uses before committing to a full run.
"""

from __future__ import annotations

import random
from datetime import datetime
from typing import Iterable, Optional, Sequence

from repro.core.transactions import TransactionDatabase
from repro.errors import MiningParameterError
from repro.temporal.calendar_algebra import CalendarExpression, CalendarPattern


def sample_transactions(
    database: TransactionDatabase,
    fraction: float,
    seed: Optional[int] = None,
) -> TransactionDatabase:
    """Bernoulli sample of transactions (each kept with ``fraction``).

    Keeps the shared item catalog so supports remain comparable with the
    full database.
    """
    if not 0.0 < fraction <= 1.0:
        raise MiningParameterError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    return database.restrict(lambda _t: rng.random() < fraction)


def select_time_window(
    database: TransactionDatabase, start: datetime, end: datetime
) -> TransactionDatabase:
    """Transactions with ``start <= timestamp < end``."""
    return database.between(start, end)


def select_calendar(
    database: TransactionDatabase,
    calendar: "CalendarPattern | CalendarExpression",
) -> TransactionDatabase:
    """Transactions whose timestamp matches a calendar pattern."""
    return database.restrict(lambda t: calendar.matches_instant(t.timestamp))


def select_items(
    database: TransactionDatabase, labels: Iterable[str]
) -> TransactionDatabase:
    """Transactions containing at least one of the given item labels.

    Unknown labels are ignored (they cannot occur in any transaction).
    """
    catalog = database.catalog
    wanted = {catalog.id(label) for label in labels if label in catalog}
    if not wanted:
        return database.restrict(lambda _t: False)
    return database.restrict(
        lambda t: any(item in wanted for item in t.items)
    )


def head(database: TransactionDatabase, n: int) -> TransactionDatabase:
    """The first ``n`` transactions in time order."""
    if n < 0:
        raise MiningParameterError(f"n must be >= 0, got {n}")
    subset = TransactionDatabase(catalog=database.catalog)
    for index, transaction in enumerate(database):
        if index >= n:
            break
        subset.append(transaction)
    return subset
