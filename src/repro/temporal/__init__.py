"""Temporal algebra: granularities, intervals, calendars, periodicities.

These are the *temporal features* (TF) in the paper's ⟨AR, TF⟩ pairs:
valid periods (:class:`TimeInterval` / :class:`IntervalSet`),
periodicities (:class:`CyclicPeriodicity`, :class:`CalendricPeriodicity`)
and specific calendars (:class:`CalendarPattern`,
:class:`CalendarExpression`).
"""

from repro.temporal.calendar_algebra import (
    DECEMBER,
    FIRST_WEEK_OF_MONTH,
    NAMED_CALENDARS,
    SUMMER,
    WEEKDAYS,
    WEEKENDS,
    CalendarExpression,
    CalendarPattern,
)
from repro.temporal.granularity import (
    Granularity,
    unit_bounds,
    unit_end,
    unit_index,
    unit_label,
    unit_start,
    units_between,
)
from repro.temporal.interval import IntervalSet, TimeInterval
from repro.temporal.periodicity import (
    CalendricPeriodicity,
    CyclicPeriodicity,
    Periodicity,
    cyclic_from_units,
    describe_units,
)

__all__ = [
    "DECEMBER",
    "FIRST_WEEK_OF_MONTH",
    "NAMED_CALENDARS",
    "SUMMER",
    "WEEKDAYS",
    "WEEKENDS",
    "CalendarExpression",
    "CalendarPattern",
    "CalendricPeriodicity",
    "CyclicPeriodicity",
    "Granularity",
    "IntervalSet",
    "Periodicity",
    "TimeInterval",
    "cyclic_from_units",
    "describe_units",
    "unit_bounds",
    "unit_end",
    "unit_index",
    "unit_label",
    "unit_start",
    "units_between",
]
