"""Periodicities — cyclic and calendric temporal features.

The second kind of temporal feature in the paper is a *periodicity*: the
rule holds in regularly recurring time units.  Two families are modelled:

* :class:`CyclicPeriodicity` — "every p-th unit, at phase o" in the sense
  of cyclic association rules: unit ``u`` belongs iff ``u mod p == o``.
* :class:`CalendricPeriodicity` — a calendar-defined recurrence such as
  "every December" or "every weekend", i.e. a
  :class:`~repro.temporal.calendar_algebra.CalendarPattern` interpreted at
  a granularity.

Both expose the same small surface (``matches_unit``, ``unit_indices``,
``describe``), which is all the mining algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, runtime_checkable

from repro.errors import PeriodicityError
from repro.temporal.calendar_algebra import CalendarPattern
from repro.temporal.granularity import Granularity, unit_label


@runtime_checkable
class Periodicity(Protocol):
    """Anything that classifies time units into a recurring subset."""

    granularity: Granularity

    def matches_unit(self, index: int) -> bool:
        """True when unit ``index`` belongs to the periodic subset."""
        ...

    def unit_indices(self, first_unit: int, last_unit: int) -> List[int]:
        """Member units within ``first_unit..last_unit`` inclusive."""
        ...

    def describe(self) -> str:
        """Human-readable description."""
        ...


@dataclass(frozen=True)
class CyclicPeriodicity:
    """Units ``u`` with ``u ≡ offset (mod period)`` at a granularity.

    >>> weekly = CyclicPeriodicity(period=7, offset=5, granularity=Granularity.DAY)
    >>> weekly.matches_unit(5), weekly.matches_unit(12), weekly.matches_unit(6)
    (True, True, False)
    """

    period: int
    offset: int
    granularity: Granularity

    def __post_init__(self) -> None:
        if self.period < 1:
            raise PeriodicityError(f"period must be >= 1, got {self.period}")
        if not 0 <= self.offset < self.period:
            raise PeriodicityError(
                f"offset must be in [0, period), got {self.offset} with period {self.period}"
            )

    def matches_unit(self, index: int) -> bool:
        return index % self.period == self.offset

    def unit_indices(self, first_unit: int, last_unit: int) -> List[int]:
        if last_unit < first_unit:
            return []
        first_member = first_unit + (self.offset - first_unit) % self.period
        return list(range(first_member, last_unit + 1, self.period))

    def next_member(self, index: int) -> int:
        """Smallest member unit >= ``index`` (cycle-skipping helper)."""
        return index + (self.offset - index) % self.period

    def describe(self) -> str:
        return (
            f"every {self.period} {self.granularity}s at phase {self.offset}"
            if self.period > 1
            else f"every {self.granularity}"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class CalendricPeriodicity:
    """A calendar-pattern recurrence at a granularity.

    >>> decembers = CalendricPeriodicity(CalendarPattern.parse("month=12"),
    ...                                  Granularity.MONTH)
    >>> decembers.describe()
    'calendar[month=12] per month'
    """

    pattern: CalendarPattern
    granularity: Granularity

    def __post_init__(self) -> None:
        if not self.pattern.is_compatible_with(self.granularity):
            raise PeriodicityError(
                f"pattern {self.pattern} is finer than granularity {self.granularity}"
            )

    def matches_unit(self, index: int) -> bool:
        return self.pattern.matches_unit(index, self.granularity)

    def unit_indices(self, first_unit: int, last_unit: int) -> List[int]:
        return [
            index
            for index in range(first_unit, last_unit + 1)
            if self.matches_unit(index)
        ]

    def describe(self) -> str:
        return f"calendar[{self.pattern.format()}] per {self.granularity}"

    def __str__(self) -> str:
        return self.describe()


def cyclic_from_units(
    indices: List[int], granularity: Granularity
) -> Optional[CyclicPeriodicity]:
    """Infer the cyclic periodicity generating exactly ``indices``, if any.

    Returns the periodicity when the indices form a full arithmetic
    progression with a constant step >= 1, else ``None``.  Used by tests
    and by result analysis to label recovered unit sets.
    """
    if len(indices) < 2:
        return None
    ordered = sorted(indices)
    step = ordered[1] - ordered[0]
    if step < 1:
        return None
    if any(b - a != step for a, b in zip(ordered, ordered[1:])):
        return None
    return CyclicPeriodicity(
        period=step, offset=ordered[0] % step, granularity=granularity
    )


def describe_units(indices: List[int], granularity: Granularity, limit: int = 6) -> str:
    """Render unit indices as human-readable labels, elided past ``limit``."""
    labels = [unit_label(index, granularity) for index in indices[:limit]]
    suffix = ", ..." if len(indices) > limit else ""
    return "{" + ", ".join(labels) + suffix + "}"
