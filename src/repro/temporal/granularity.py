"""Time granularities and the discrete time axis.

Temporal association mining works on a discrete axis of *time units* at a
chosen granularity (hour / day / week / month / quarter / year).  A unit
is identified by an integer index relative to the Unix epoch, so unit
arithmetic (cycles, offsets, distances) is plain integer arithmetic:

* HOUR    — hours since 1970-01-01 00:00
* DAY     — days  since 1970-01-01
* WEEK    — ISO-style Monday-anchored weeks; week 0 starts 1969-12-29
* MONTH   — ``(year − 1970) * 12 + (month − 1)``
* QUARTER — ``(year − 1970) * 4 + (month − 1) // 3``
* YEAR    — ``year − 1970``

Negative indices (instants before the epoch) are fully supported.
"""

from __future__ import annotations

import enum
from datetime import datetime, timedelta
from typing import Tuple

from repro.errors import GranularityError

_EPOCH = datetime(1970, 1, 1)
_WEEK0_START = datetime(1969, 12, 29)  # the Monday on or before the epoch


class Granularity(enum.Enum):
    """A calendar granularity of the discrete time axis."""

    HOUR = "hour"
    DAY = "day"
    WEEK = "week"
    MONTH = "month"
    QUARTER = "quarter"
    YEAR = "year"

    @classmethod
    def parse(cls, text: str) -> "Granularity":
        """Parse a (case-insensitive, optionally plural) granularity name."""
        if isinstance(text, Granularity):
            return text
        name = str(text).strip().lower().rstrip("s")
        for member in cls:
            if member.value == name:
                return member
        raise GranularityError(f"unknown granularity {text!r}")

    def __str__(self) -> str:
        return self.value


def unit_index(instant: datetime, granularity: Granularity) -> int:
    """The index of the time unit containing ``instant``."""
    if granularity is Granularity.HOUR:
        delta = instant - _EPOCH
        return _floor_div_seconds(delta, 3600)
    if granularity is Granularity.DAY:
        delta = instant - _EPOCH
        return _floor_div_seconds(delta, 86400)
    if granularity is Granularity.WEEK:
        delta = instant - _WEEK0_START
        return _floor_div_seconds(delta, 7 * 86400)
    if granularity is Granularity.MONTH:
        return (instant.year - 1970) * 12 + (instant.month - 1)
    if granularity is Granularity.QUARTER:
        return (instant.year - 1970) * 4 + (instant.month - 1) // 3
    if granularity is Granularity.YEAR:
        return instant.year - 1970
    raise GranularityError(f"unhandled granularity {granularity!r}")


def unit_start(index: int, granularity: Granularity) -> datetime:
    """The first instant of unit ``index`` (inclusive)."""
    if granularity is Granularity.HOUR:
        return _EPOCH + timedelta(hours=index)
    if granularity is Granularity.DAY:
        return _EPOCH + timedelta(days=index)
    if granularity is Granularity.WEEK:
        return _WEEK0_START + timedelta(weeks=index)
    if granularity is Granularity.MONTH:
        year, month = divmod(index, 12)
        return datetime(1970 + year, month + 1, 1)
    if granularity is Granularity.QUARTER:
        year, quarter = divmod(index, 4)
        return datetime(1970 + year, quarter * 3 + 1, 1)
    if granularity is Granularity.YEAR:
        return datetime(1970 + index, 1, 1)
    raise GranularityError(f"unhandled granularity {granularity!r}")


def unit_end(index: int, granularity: Granularity) -> datetime:
    """The first instant *after* unit ``index`` (exclusive end)."""
    return unit_start(index + 1, granularity)


def unit_bounds(index: int, granularity: Granularity) -> Tuple[datetime, datetime]:
    """Half-open ``[start, end)`` bounds of unit ``index``."""
    return unit_start(index, granularity), unit_end(index, granularity)


def unit_label(index: int, granularity: Granularity) -> str:
    """Human-readable unit name, e.g. ``"2026-07"`` or ``"2026-W27"``."""
    start = unit_start(index, granularity)
    if granularity is Granularity.HOUR:
        return start.strftime("%Y-%m-%d %H:00")
    if granularity is Granularity.DAY:
        return start.strftime("%Y-%m-%d")
    if granularity is Granularity.WEEK:
        iso = start.isocalendar()
        return f"{iso[0]}-W{iso[1]:02d}"
    if granularity is Granularity.MONTH:
        return start.strftime("%Y-%m")
    if granularity is Granularity.QUARTER:
        return f"{start.year}-Q{(start.month - 1) // 3 + 1}"
    if granularity is Granularity.YEAR:
        return str(start.year)
    raise GranularityError(f"unhandled granularity {granularity!r}")


def units_between(start: datetime, end: datetime, granularity: Granularity) -> range:
    """Indices of all units overlapping the half-open span ``[start, end)``.

    >>> list(units_between(datetime(2026, 1, 15), datetime(2026, 3, 2),
    ...                    Granularity.MONTH))  # Jan, Feb, Mar 2026
    [672, 673, 674]
    """
    if end <= start:
        return range(0)
    first = unit_index(start, granularity)
    # end is exclusive: the unit containing (end - epsilon) is the last one.
    last = unit_index(end - timedelta(microseconds=1), granularity)
    return range(first, last + 1)


def _floor_div_seconds(delta: timedelta, seconds: int) -> int:
    total = delta.days * 86400 + delta.seconds  # microseconds never push past a unit
    return total // seconds if total >= 0 else -((-total + seconds - 1) // seconds)
