"""Calendar patterns and calendar expressions.

The third kind of temporal feature in the paper is "a specific calendar":
a symbolic description such as *every December*, *weekends*, *the first
week of each month* or *business hours on weekdays*.  We model these as
:class:`CalendarPattern` — a conjunction of per-field constraints over the
calendar fields (year, month, day-of-month, weekday, hour), each either a
wildcard or a set of admitted values — combined into richer
:class:`CalendarExpression` values with union / intersection / difference.

A pattern classifies *instants*; granularity-aware helpers lift that to
time units (a unit matches when every instant in it matches, which for
calendar-aligned units reduces to checking the unit's start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import CalendarPatternError
from repro.temporal.granularity import (
    Granularity,
    unit_bounds,
    unit_start,
)
from repro.temporal.interval import IntervalSet, TimeInterval

_MONTH_NAMES = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}
_WEEKDAY_NAMES = {
    "mon": 0, "tue": 1, "wed": 2, "thu": 3, "fri": 4, "sat": 5, "sun": 6,
}

_FIELD_RANGES = {
    "year": (1, 9999),
    "month": (1, 12),
    "day": (1, 31),
    "weekday": (0, 6),
    "hour": (0, 23),
}

# Field order from coarsest to finest; used to find the finest constrained
# field when checking granularity compatibility.
_FIELD_FINENESS = ("year", "month", "day", "weekday", "hour")

# The finest calendar field still meaningful at each unit granularity.
_GRANULARITY_FINEST = {
    Granularity.YEAR: "year",
    Granularity.QUARTER: "month",
    Granularity.MONTH: "month",
    Granularity.WEEK: "day",      # a week straddles months/days freely
    Granularity.DAY: "weekday",
    Granularity.HOUR: "hour",
}


@dataclass(frozen=True)
class CalendarPattern:
    """A conjunction of calendar-field constraints.

    Each field is ``None`` (wildcard) or a frozen set of admitted values.
    Weekdays follow :meth:`datetime.date.weekday` (0 = Monday).

    >>> december = CalendarPattern(months=frozenset({12}))
    >>> december.matches_instant(datetime(2026, 12, 25))
    True
    >>> weekends = CalendarPattern(weekdays=frozenset({5, 6}))
    >>> weekends.matches_instant(datetime(2026, 7, 4))  # a Saturday
    True
    """

    years: Optional[FrozenSet[int]] = None
    months: Optional[FrozenSet[int]] = None
    days: Optional[FrozenSet[int]] = None
    weekdays: Optional[FrozenSet[int]] = None
    hours: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        for name, values in self._fields():
            if values is None:
                continue
            if not values:
                raise CalendarPatternError(f"field {name!r} admits no values")
            low, high = _FIELD_RANGES[name]
            bad = [v for v in values if not (low <= v <= high)]
            if bad:
                raise CalendarPatternError(
                    f"field {name!r} values {sorted(bad)} outside [{low}, {high}]"
                )

    def _fields(self) -> Tuple[Tuple[str, Optional[FrozenSet[int]]], ...]:
        return (
            ("year", self.years),
            ("month", self.months),
            ("day", self.days),
            ("weekday", self.weekdays),
            ("hour", self.hours),
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def wildcard(cls) -> "CalendarPattern":
        """The pattern matching every instant."""
        return cls()

    @classmethod
    def parse(cls, text: str) -> "CalendarPattern":
        """Parse compact pattern text.

        Grammar: whitespace/comma-separated ``field=spec`` terms, where
        ``spec`` is ``*`` or a comma-free list ``v1|v2|lo..hi`` of values
        and ranges.  Month and weekday names (3-letter prefixes) are
        accepted.

        >>> CalendarPattern.parse("month=12 day=1..7")
        CalendarPattern(... months=frozenset({12}), days=frozenset({1, 2, ..., 7}) ...)
        """
        kwargs: dict = {}
        field_map = {
            "year": "years",
            "month": "months",
            "day": "days",
            "weekday": "weekdays",
            "hour": "hours",
        }
        for term in text.replace(",", " ").split():
            if "=" not in term:
                raise CalendarPatternError(f"bad pattern term {term!r}")
            name, _, spec = term.partition("=")
            name = name.strip().lower()
            if name not in field_map:
                raise CalendarPatternError(f"unknown calendar field {name!r}")
            if field_map[name] in kwargs:
                raise CalendarPatternError(f"duplicate calendar field {name!r}")
            spec = spec.strip()
            if spec == "*" or spec == "":
                continue
            kwargs[field_map[name]] = frozenset(cls._parse_spec(name, spec))
        return cls(**kwargs)

    @staticmethod
    def _parse_spec(name: str, spec: str) -> Iterable[int]:
        values: List[int] = []
        for piece in spec.split("|"):
            piece = piece.strip().lower()
            if not piece:
                raise CalendarPatternError(f"empty value in field {name!r}")
            if ".." in piece:
                lo_text, _, hi_text = piece.partition("..")
                lo = CalendarPattern._parse_value(name, lo_text)
                hi = CalendarPattern._parse_value(name, hi_text)
                if hi < lo:
                    raise CalendarPatternError(
                        f"descending range {piece!r} in field {name!r}"
                    )
                values.extend(range(lo, hi + 1))
            else:
                values.append(CalendarPattern._parse_value(name, piece))
        return values

    @staticmethod
    def _parse_value(name: str, text: str) -> int:
        text = text.strip().lower()
        if name == "month" and text[:3] in _MONTH_NAMES:
            return _MONTH_NAMES[text[:3]]
        if name == "weekday" and text[:3] in _WEEKDAY_NAMES:
            return _WEEKDAY_NAMES[text[:3]]
        try:
            return int(text)
        except ValueError:
            raise CalendarPatternError(
                f"cannot parse {text!r} as a {name} value"
            ) from None

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    def matches_instant(self, instant: datetime) -> bool:
        """True when ``instant`` satisfies every field constraint."""
        if self.years is not None and instant.year not in self.years:
            return False
        if self.months is not None and instant.month not in self.months:
            return False
        if self.days is not None and instant.day not in self.days:
            return False
        if self.weekdays is not None and instant.weekday() not in self.weekdays:
            return False
        if self.hours is not None and instant.hour not in self.hours:
            return False
        return True

    def finest_field(self) -> Optional[str]:
        """Name of the finest constrained field (None for the wildcard)."""
        finest = None
        for name, values in self._fields():
            if values is not None:
                finest = name
        return finest

    def is_compatible_with(self, granularity: Granularity) -> bool:
        """True when unit membership is well-defined at ``granularity``.

        A pattern constraining hours cannot classify whole days: some
        instants of the day match and others do not.
        """
        finest = self.finest_field()
        if finest is None:
            return True
        allowed_up_to = _GRANULARITY_FINEST[granularity]
        return _FIELD_FINENESS.index(finest) <= _FIELD_FINENESS.index(allowed_up_to)

    def matches_unit(self, index: int, granularity: Granularity) -> bool:
        """True when every instant of unit ``index`` matches the pattern.

        Requires compatibility (see :meth:`is_compatible_with`); for
        week-granularity units the pattern is checked against each of the
        seven days, since a week can straddle month boundaries.
        """
        if not self.is_compatible_with(granularity):
            raise CalendarPatternError(
                f"pattern constrains {self.finest_field()!r}, finer than "
                f"granularity {granularity}"
            )
        start, end = unit_bounds(index, granularity)
        if granularity is Granularity.WEEK:
            day = start
            while day < end:
                if not self.matches_instant(day):
                    return False
                day += timedelta(days=1)
            return True
        if granularity is Granularity.QUARTER:
            # Check each of the three months in the quarter.
            probe = start
            while probe < end:
                if not self.matches_instant(probe):
                    return False
                month = probe.month + 1
                year = probe.year + (1 if month > 12 else 0)
                month = 1 if month > 12 else month
                probe = probe.replace(year=year, month=month)
            return True
        return self.matches_instant(start)

    # ------------------------------------------------------------------
    # materialization and display
    # ------------------------------------------------------------------

    def unit_indices(
        self, first_unit: int, last_unit: int, granularity: Granularity
    ) -> List[int]:
        """Matching unit indices in ``first_unit..last_unit`` inclusive."""
        return [
            index
            for index in range(first_unit, last_unit + 1)
            if self.matches_unit(index, granularity)
        ]

    def to_interval_set(
        self, window: TimeInterval, granularity: Granularity
    ) -> IntervalSet:
        """Materialize the matching units inside ``window``."""
        from repro.temporal.granularity import units_between

        indices = [
            index
            for index in units_between(window.start, window.end, granularity)
            if self.matches_unit(index, granularity)
        ]
        materialized = IntervalSet.from_unit_indices(indices, granularity)
        return materialized.intersection(IntervalSet((window,)))

    def format(self) -> str:
        """Compact text form accepted back by :meth:`parse`."""
        parts: List[str] = []
        for name, values in self._fields():
            if values is not None:
                rendered = "|".join(str(v) for v in sorted(values))
                parts.append(f"{name}={rendered}")
        return " ".join(parts) if parts else "*"

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class CalendarExpression:
    """An algebraic combination of calendar patterns.

    ``op`` is one of ``"pattern"``, ``"union"``, ``"intersect"``,
    ``"difference"``; leaves carry a :class:`CalendarPattern`.
    """

    op: str
    pattern: Optional[CalendarPattern] = None
    left: Optional["CalendarExpression"] = None
    right: Optional["CalendarExpression"] = None

    def __post_init__(self) -> None:
        if self.op == "pattern":
            if self.pattern is None:
                raise CalendarPatternError("leaf expression requires a pattern")
        elif self.op in ("union", "intersect", "difference"):
            if self.left is None or self.right is None:
                raise CalendarPatternError(f"{self.op} requires two operands")
        else:
            raise CalendarPatternError(f"unknown calendar operator {self.op!r}")

    @classmethod
    def of(cls, pattern: CalendarPattern) -> "CalendarExpression":
        return cls(op="pattern", pattern=pattern)

    @classmethod
    def parse(cls, text: str) -> "CalendarExpression":
        """Parse leaf pattern text (operators are built programmatically
        or via TML, which constructs expressions from its own grammar)."""
        return cls.of(CalendarPattern.parse(text))

    def union(self, other: "CalendarExpression") -> "CalendarExpression":
        return CalendarExpression(op="union", left=self, right=other)

    def intersect(self, other: "CalendarExpression") -> "CalendarExpression":
        return CalendarExpression(op="intersect", left=self, right=other)

    def difference(self, other: "CalendarExpression") -> "CalendarExpression":
        return CalendarExpression(op="difference", left=self, right=other)

    def matches_instant(self, instant: datetime) -> bool:
        if self.op == "pattern":
            assert self.pattern is not None
            return self.pattern.matches_instant(instant)
        assert self.left is not None and self.right is not None
        if self.op == "union":
            return self.left.matches_instant(instant) or self.right.matches_instant(instant)
        if self.op == "intersect":
            return self.left.matches_instant(instant) and self.right.matches_instant(instant)
        return self.left.matches_instant(instant) and not self.right.matches_instant(instant)

    def matches_unit(self, index: int, granularity: Granularity) -> bool:
        if self.op == "pattern":
            assert self.pattern is not None
            return self.pattern.matches_unit(index, granularity)
        assert self.left is not None and self.right is not None
        if self.op == "union":
            return self.left.matches_unit(index, granularity) or self.right.matches_unit(
                index, granularity
            )
        if self.op == "intersect":
            return self.left.matches_unit(index, granularity) and self.right.matches_unit(
                index, granularity
            )
        return self.left.matches_unit(index, granularity) and not self.right.matches_unit(
            index, granularity
        )

    def is_compatible_with(self, granularity: Granularity) -> bool:
        if self.op == "pattern":
            assert self.pattern is not None
            return self.pattern.is_compatible_with(granularity)
        assert self.left is not None and self.right is not None
        return self.left.is_compatible_with(granularity) and self.right.is_compatible_with(
            granularity
        )

    def unit_indices(
        self, first_unit: int, last_unit: int, granularity: Granularity
    ) -> List[int]:
        return [
            index
            for index in range(first_unit, last_unit + 1)
            if self.matches_unit(index, granularity)
        ]

    def to_interval_set(
        self, window: TimeInterval, granularity: Granularity
    ) -> IntervalSet:
        from repro.temporal.granularity import units_between

        indices = [
            index
            for index in units_between(window.start, window.end, granularity)
            if self.matches_unit(index, granularity)
        ]
        materialized = IntervalSet.from_unit_indices(indices, granularity)
        return materialized.intersection(IntervalSet((window,)))

    def format(self) -> str:
        if self.op == "pattern":
            assert self.pattern is not None
            return self.pattern.format()
        assert self.left is not None and self.right is not None
        symbol = {"union": "OR", "intersect": "AND", "difference": "MINUS"}[self.op]
        return f"({self.left.format()} {symbol} {self.right.format()})"

    def __str__(self) -> str:
        return self.format()


# Commonly used named calendars (the paper's motivating examples).
WEEKENDS = CalendarPattern(weekdays=frozenset({5, 6}))
WEEKDAYS = CalendarPattern(weekdays=frozenset({0, 1, 2, 3, 4}))
DECEMBER = CalendarPattern(months=frozenset({12}))
SUMMER = CalendarPattern(months=frozenset({6, 7, 8}))
FIRST_WEEK_OF_MONTH = CalendarPattern(days=frozenset(range(1, 8)))

NAMED_CALENDARS = {
    "weekends": WEEKENDS,
    "weekdays": WEEKDAYS,
    "december": DECEMBER,
    "summer": SUMMER,
    "first_week_of_month": FIRST_WEEK_OF_MONTH,
}
