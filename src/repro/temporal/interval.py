"""Time intervals and coalesced interval sets.

A *valid period* — the first kind of temporal feature in the paper — is a
half-open time interval ``[start, end)``.  :class:`IntervalSet` maintains a
canonical (sorted, pairwise-disjoint, non-adjacent) sequence of intervals
with the usual algebra: union, intersection, difference, complement over a
bounding window, and containment.

Canonical form is an invariant: any two equal point-sets compare equal as
:class:`IntervalSet` values, which the property-based tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TemporalError
from repro.temporal.granularity import Granularity, unit_bounds, unit_index


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A half-open interval ``[start, end)`` on the time line."""

    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if not isinstance(self.start, datetime) or not isinstance(self.end, datetime):
            raise TemporalError("interval bounds must be datetimes")
        if self.end <= self.start:
            raise TemporalError(
                f"interval end must be after start, got [{self.start}, {self.end})"
            )

    @classmethod
    def from_units(
        cls, first_unit: int, last_unit: int, granularity: Granularity
    ) -> "TimeInterval":
        """Interval covering units ``first_unit..last_unit`` inclusive."""
        if last_unit < first_unit:
            raise TemporalError(
                f"last_unit {last_unit} precedes first_unit {first_unit}"
            )
        start, _ = unit_bounds(first_unit, granularity)
        _, end = unit_bounds(last_unit, granularity)
        return cls(start, end)

    @property
    def duration(self) -> timedelta:
        return self.end - self.start

    def contains(self, instant: datetime) -> bool:
        """Point containment (half-open semantics)."""
        return self.start <= instant < self.end

    def contains_interval(self, other: "TimeInterval") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def meets_or_overlaps(self, other: "TimeInterval") -> bool:
        """True when the union of the two intervals is itself an interval."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return None
        return TimeInterval(start, end)

    def merge(self, other: "TimeInterval") -> "TimeInterval":
        """Union of two meeting/overlapping intervals."""
        if not self.meets_or_overlaps(other):
            raise TemporalError(f"cannot merge disjoint intervals {self} and {other}")
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def unit_count(self, granularity: Granularity) -> int:
        """Number of whole-or-partial units of ``granularity`` overlapped."""
        from repro.temporal.granularity import units_between

        return len(units_between(self.start, self.end, granularity))

    def jaccard(self, other: "TimeInterval") -> float:
        """Temporal Jaccard similarity |∩| / |∪| measured in seconds.

        Used by the experiment harness to score how well a recovered valid
        period matches an embedded ground-truth period.
        """
        intersection = self.intersect(other)
        if intersection is None:
            return 0.0
        inter = intersection.duration.total_seconds()
        union = (
            self.duration.total_seconds()
            + other.duration.total_seconds()
            - inter
        )
        return inter / union if union > 0 else 0.0

    def __str__(self) -> str:
        return f"[{self.start.isoformat()}, {self.end.isoformat()})"


class IntervalSet:
    """A canonical union of disjoint half-open intervals.

    >>> a = IntervalSet([TimeInterval(datetime(2026, 1, 1), datetime(2026, 2, 1)),
    ...                  TimeInterval(datetime(2026, 2, 1), datetime(2026, 3, 1))])
    >>> len(a.intervals)   # adjacent intervals coalesce
    1
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[TimeInterval] = ()):
        self._intervals: Tuple[TimeInterval, ...] = self._coalesce(intervals)

    @staticmethod
    def _coalesce(intervals: Iterable[TimeInterval]) -> Tuple[TimeInterval, ...]:
        ordered = sorted(intervals, key=lambda i: (i.start, i.end))
        merged: List[TimeInterval] = []
        for interval in ordered:
            if merged and merged[-1].meets_or_overlaps(interval):
                merged[-1] = merged[-1].merge(interval)
            else:
                merged.append(interval)
        return tuple(merged)

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def single(cls, start: datetime, end: datetime) -> "IntervalSet":
        return cls((TimeInterval(start, end),))

    @classmethod
    def from_unit_indices(
        cls, indices: Iterable[int], granularity: Granularity
    ) -> "IntervalSet":
        """Interval set covering exactly the given unit indices.

        Consecutive indices coalesce into one interval.
        """
        return cls(
            TimeInterval(*unit_bounds(index, granularity))
            for index in sorted(set(indices))
        )

    @property
    def intervals(self) -> Tuple[TimeInterval, ...]:
        return self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[TimeInterval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(str(i) for i in self._intervals)
        return f"IntervalSet({inner})"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._intervals + other._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        result: List[TimeInterval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if overlap is not None:
                result.append(overlap)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        result: List[TimeInterval] = []
        for interval in self._intervals:
            pieces = [interval]
            for hole in other._intervals:
                if hole.start >= interval.end:
                    break
                next_pieces: List[TimeInterval] = []
                for piece in pieces:
                    if not piece.overlaps(hole):
                        next_pieces.append(piece)
                        continue
                    if piece.start < hole.start:
                        next_pieces.append(TimeInterval(piece.start, hole.start))
                    if hole.end < piece.end:
                        next_pieces.append(TimeInterval(hole.end, piece.end))
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet(result)

    def complement(self, window: TimeInterval) -> "IntervalSet":
        """The parts of ``window`` not covered by this set."""
        return IntervalSet((window,)).difference(self)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def contains(self, instant: datetime) -> bool:
        import bisect

        starts = [i.start for i in self._intervals]
        position = bisect.bisect_right(starts, instant) - 1
        return position >= 0 and self._intervals[position].contains(instant)

    def covers(self, interval: TimeInterval) -> bool:
        """True when ``interval`` lies entirely inside one member."""
        return any(member.contains_interval(interval) for member in self._intervals)

    def total_duration(self) -> timedelta:
        return sum((i.duration for i in self._intervals), timedelta())

    def span(self) -> Optional[TimeInterval]:
        """Smallest single interval covering the whole set (None if empty)."""
        if not self._intervals:
            return None
        return TimeInterval(self._intervals[0].start, self._intervals[-1].end)

    def unit_indices(self, granularity: Granularity) -> List[int]:
        """All unit indices whose units overlap this set."""
        from repro.temporal.granularity import units_between

        indices: List[int] = []
        for interval in self._intervals:
            indices.extend(units_between(interval.start, interval.end, granularity))
        return sorted(set(indices))
