"""The job scheduler — priority queue, bounded workers, job lifecycle.

One :class:`JobScheduler` turns the single-user library into a
multi-tenant service: statements arrive as *jobs*, wait in a priority
queue, and run on a bounded pool of worker threads (mining releases the
GIL in its numpy kernels and can additionally fan out to the PR 3
process shards, so threads are the right concurrency unit here).

Lifecycle::

    submit() ──> QUEUED ──> RUNNING ──> DONE
                    │           │  └──> FAILED
                    └───────────┴─────> CANCELLED

* **Admission control** — at most ``max_queue_depth`` jobs may be
  queued; past that, :meth:`submit` raises
  :class:`~repro.errors.AdmissionError` (HTTP 503 at the API boundary).
* **Per-job resilience wiring** — every job gets its own
  :class:`~repro.runtime.budget.CancellationToken`, and may carry its
  own :class:`~repro.runtime.budget.RunBudget`.  Cancelling a queued
  job removes it before it ever runs; cancelling a running job trips
  its token, and the PR 1 machinery stops the run at the next pass
  boundary with a *sound partial result*, which is kept on the job
  record.
* **Observability** — every job is queryable by id until it ages out of
  the bounded finished-job history; :meth:`stats` reports queue depth
  and per-state counts for ``GET /v1/status``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, JobNotFoundError, ServiceError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.runtime.budget import CancellationToken, RunBudget

logger = get_logger(__name__)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One unit of service work: a TML statement plus its lifecycle."""

    job_id: str
    statement: str
    priority: int = 0
    budget: Optional[RunBudget] = None
    trace: bool = False
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[str] = None
    cached: bool = False
    cancel_requested: bool = False
    token: CancellationToken = field(default_factory=CancellationToken)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True on arrival)."""
        return self._done.wait(timeout)

    def to_dict(self) -> Dict:
        """The job record as served by ``GET /v1/jobs/{id}``."""
        record = {
            "job_id": self.job_id,
            "statement": self.statement,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "result": self.result,
        }
        if self.budget is not None:
            record["budget"] = self.budget.describe()
        if self.trace:
            record["trace"] = True
        return record


class JobScheduler:
    """Priority queue + bounded worker pool over an execute callback.

    Args:
        execute: ``execute(statement_text, token, budget, trace) ->
            (result, cached)`` — the service core's statement runner.
            It must honour the token cooperatively (PR 1 semantics) and
            may raise any :class:`~repro.errors.ReproError`.
        workers: worker-thread count (>= 1).
        max_queue_depth: queued-job bound enforced at admission.
        history_limit: finished jobs retained for ``GET /v1/jobs/{id}``.
        clock: injectable wall clock (tests).
        metrics: registry for the scheduler's instruments (the
            process-global default when omitted).
    """

    def __init__(
        self,
        execute: Callable[..., Tuple[Dict, bool]],
        workers: int = 2,
        max_queue_depth: int = 64,
        history_limit: int = 1024,
        clock: Callable[[], float] = time.time,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if workers < 1:
            raise ServiceError(f"scheduler workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._execute = execute
        registry = metrics if metrics is not None else default_registry()
        self._m_admitted = registry.counter(
            "repro_scheduler_admitted_total", "Jobs admitted past admission control."
        )
        self._m_rejected = registry.counter(
            "repro_scheduler_rejected_total",
            "Submissions rejected because the queue was saturated.",
        )
        self._m_jobs = registry.counter(
            "repro_scheduler_jobs_total",
            "Jobs finished, by terminal state.",
            labelnames=("state",),
        )
        self._m_queue_depth = registry.gauge(
            "repro_scheduler_queue_depth", "Jobs currently queued."
        )
        self._m_running = registry.gauge(
            "repro_scheduler_running", "Jobs currently running on a worker."
        )
        self._m_wait = registry.histogram(
            "repro_scheduler_wait_seconds",
            "Queue wait time from submission to worker pickup.",
        )
        self._m_run = registry.histogram(
            "repro_scheduler_run_seconds", "Job execution wall time."
        )
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.history_limit = history_limit
        self._clock = clock
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # Max-priority first; FIFO within a priority via the tiebreaker.
        self._heap: List[Tuple[int, int, str]] = []
        self._counter = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._queued = 0
        self._running = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work, cancel what's left, release the workers."""
        with self._available:
            if self._closed:
                return
            self._closed = True
            # Cancel everything still queued; running jobs get their
            # tokens tripped and finish as cancelled-with-partials.
            # (Snapshot: finishing a job can evict history from _jobs.)
            for job in list(self._jobs.values()):
                if job.state == QUEUED:
                    self._finish_locked(job, CANCELLED, error="service shutting down")
                elif job.state == RUNNING:
                    job.cancel_requested = True
                    job.token.cancel()
            self._heap.clear()
            self._queued = 0
            self._available.notify_all()
        if wait:
            deadline = self._clock() + timeout
            for thread in self._threads:
                remaining = max(0.0, deadline - self._clock())
                thread.join(remaining)

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------

    def submit(
        self,
        statement: str,
        priority: int = 0,
        budget: Optional[RunBudget] = None,
        trace: bool = False,
    ) -> Job:
        """Admit one job; raises :class:`AdmissionError` when saturated."""
        self.start()
        with self._available:
            if self._closed:
                raise ServiceError("scheduler is closed")
            if self._queued >= self.max_queue_depth:
                self._m_rejected.inc()
                logger.warning(
                    "rejecting submission: queue saturated (%d queued, limit %d)",
                    self._queued,
                    self.max_queue_depth,
                )
                raise AdmissionError(
                    f"queue saturated ({self._queued} queued, "
                    f"limit {self.max_queue_depth}); retry later"
                )
            job = Job(
                job_id=uuid.uuid4().hex[:12],
                statement=statement,
                priority=priority,
                budget=budget,
                trace=trace,
                submitted_at=self._clock(),
            )
            self._jobs[job.job_id] = job
            heapq.heappush(self._heap, (-priority, next(self._counter), job.job_id))
            self._queued += 1
            self._m_admitted.inc()
            logger.info(
                "job %s admitted (priority=%d, %d queued)",
                job.job_id,
                priority,
                self._queued,
            )
            self._m_queue_depth.set(self._queued)
            self._available.notify()
            return job

    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` (raises :class:`JobNotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: dequeue it, or trip its token mid-run.

        Idempotent on already-terminal jobs (returns the record as-is).
        """
        with self._available:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            if job.state in TERMINAL_STATES:
                return job
            job.cancel_requested = True
            job.token.cancel()
            if job.state == QUEUED:
                # Lazy heap removal: the worker loop skips cancelled ids,
                # so the admission counter must be released here — the
                # skip path in _next_job deliberately never decrements.
                self._queued -= 1
                self._m_queue_depth.set(self._queued)
                self._finish_locked(job, CANCELLED, error="cancelled while queued")
        return job

    def stats(self) -> Dict[str, object]:
        """Queue/worker/state counters for ``GET /v1/status``."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "queue_depth": self._queued,
                "max_queue_depth": self.max_queue_depth,
                "running": self._running,
                "jobs": states,
            }

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        with self._available:
            while True:
                if self._closed:
                    return None
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs.get(job_id)
                    if job is None or job.state != QUEUED:
                        continue  # cancelled while queued (lazy removal)
                    self._queued -= 1
                    self._running += 1
                    job.state = RUNNING
                    job.started_at = self._clock()
                    self._m_queue_depth.set(self._queued)
                    self._m_running.set(self._running)
                    self._m_wait.observe(max(0.0, job.started_at - job.submitted_at))
                    return job
                self._available.wait(timeout=0.1)

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                result, cached = self._execute(
                    job.statement, job.token, job.budget, job.trace
                )
                with self._available:
                    self._running -= 1
                    self._m_running.set(self._running)
                    job.result = result
                    job.cached = cached
                    # A cancel that landed mid-run surfaces as a sound
                    # partial result on a CANCELLED job — the record
                    # keeps what the run managed to compute.
                    state = CANCELLED if job.cancel_requested else DONE
                    self._finish_locked(job, state)
            except BaseException as error:  # noqa: BLE001 — job isolation
                logger.warning(
                    "job %s failed: %s: %s", job.job_id, type(error).__name__, error
                )
                with self._available:
                    self._running -= 1
                    self._m_running.set(self._running)
                    state = CANCELLED if job.cancel_requested else FAILED
                    self._finish_locked(job, state, error=f"{type(error).__name__}: {error}")

    def _finish_locked(
        self, job: Job, state: str, error: Optional[str] = None
    ) -> None:
        job.state = state
        job.error = error if error is not None else job.error
        job.finished_at = self._clock()
        self._m_jobs.inc(state=state)
        logger.info("job %s finished: %s", job.job_id, state)
        if job.started_at is not None:
            self._m_run.observe(max(0.0, job.finished_at - job.started_at))
        job._done.set()
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.history_limit:
            stale_id = self._finished_order.pop(0)
            stale = self._jobs.get(stale_id)
            if stale is not None and stale.state in TERMINAL_STATES:
                del self._jobs[stale_id]
