"""The job scheduler — priority queue, bounded workers, job lifecycle.

One :class:`JobScheduler` turns the single-user library into a
multi-tenant service: statements arrive as *jobs*, wait in a priority
queue, and run on a bounded pool of worker threads (mining releases the
GIL in its numpy kernels and can additionally fan out to the PR 3
process shards, so threads are the right concurrency unit here).

Lifecycle::

    submit() ──> QUEUED ──> RUNNING ──> DONE
                    │           │  ├──> FAILED
                    │           │  └──> INTERRUPTED   (drain/crash; re-run next boot)
                    └───────────┴─────> CANCELLED

* **Admission control** — at most ``max_queue_depth`` jobs may be
  queued; past that, :meth:`submit` raises
  :class:`~repro.errors.AdmissionError` (HTTP 503 at the API boundary).
* **Durability** — with a :class:`~repro.service.durability.JobJournal`
  attached, every lifecycle edge is journaled (fsync'd) *inside* the
  transition's critical section, so the on-disk state never runs ahead
  of or behind the in-memory state.  :meth:`resubmit` and
  :meth:`restore_terminal` are the restart-recovery entry points;
  :meth:`drain` is the graceful-shutdown one; :meth:`abandon` is the
  chaos seam that emulates ``kill -9``.
* **Idempotent admission** — a submission carrying an idempotency key
  the scheduler has already seen returns the *existing* job instead of
  admitting a duplicate, which is what makes client-side retries of a
  ``POST /v1/query`` safe.
* **Per-job resilience wiring** — every job gets its own
  :class:`~repro.runtime.budget.CancellationToken`, and may carry its
  own :class:`~repro.runtime.budget.RunBudget`.  Cancelling a queued
  job removes it before it ever runs; cancelling a running job trips
  its token, and the PR 1 machinery stops the run at the next pass
  boundary with a *sound partial result*, which is kept on the job
  record.
* **Observability** — every job is queryable by id until it ages out of
  the bounded finished-job history; :meth:`stats` reports queue depth
  and per-state counts for ``GET /v1/status``.
"""

from __future__ import annotations

import heapq
import itertools
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, DatabaseError, JobNotFoundError, ServiceError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.runtime.budget import CancellationToken, RunBudget
from repro.runtime.faultinject import SimulatedCrash
from repro.service.durability.journal import JobJournal, JournalRecord

logger = get_logger(__name__)

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

#: States a job can never leave *in this process*.  ``INTERRUPTED`` is
#: terminal here (the record is final, ``wait()`` returns) but the
#: journal keeps it recoverable: the next boot re-admits and re-runs it.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, INTERRUPTED})


@dataclass
class Job:
    """One unit of service work: a TML statement plus its lifecycle."""

    job_id: str
    statement: str
    priority: int = 0
    budget: Optional[RunBudget] = None
    #: Truthy = tracing on.  Either a plain ``True`` (local tracing) or a
    #: :class:`~repro.obs.distributed.TraceContext` (distributed parent
    #: propagated from the HTTP hop); execute callbacks that only care
    #: about on/off can keep treating it as a bool.
    trace: object = False
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[str] = None
    cached: bool = False
    #: The planner's decision for this run (``QueryPlan.to_dict()``);
    #: ``None`` for cache hits (no run happened) and non-MINE statements.
    plan: Optional[Dict] = None
    cancel_requested: bool = False
    idempotency_key: Optional[str] = None
    #: Times a worker has *started* this job (journaled; caps crash loops).
    attempts: int = 0
    #: Set by drain: the token trip means "stop at a pass boundary and
    #: leave the journal row recoverable", not "the user cancelled".
    interrupted: bool = False
    #: True when this record was rebuilt from the journal after a restart.
    recovered: bool = False
    #: Per-job resource attribution (CPU seconds, peak RSS, cache tier
    #: outcome, ...) measured by the execute callback; attached by the
    #: scheduler's ``on_finished`` hook before waiters wake.
    resources: Optional[Dict] = None
    #: The distributed trace id covering this job (traced jobs only).
    trace_id: Optional[str] = None
    token: CancellationToken = field(default_factory=CancellationToken)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (True on arrival)."""
        return self._done.wait(timeout)

    def to_dict(self) -> Dict:
        """The job record as served by ``GET /v1/jobs/{id}``."""
        record = {
            "job_id": self.job_id,
            "statement": self.statement,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "result": self.result,
        }
        if self.plan is not None:
            record["plan"] = self.plan
        if self.budget is not None:
            record["budget"] = self.budget.describe()
        if self.trace:
            record["trace"] = True
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.resources is not None:
            record["resources"] = self.resources
        if self.idempotency_key is not None:
            record["idempotency_key"] = self.idempotency_key
        if self.attempts > 1 or self.recovered:
            record["attempts"] = self.attempts
        if self.recovered:
            record["recovered"] = True
        return record


class JobScheduler:
    """Priority queue + bounded worker pool over an execute callback.

    Args:
        execute: ``execute(statement_text, token, budget, trace) ->
            (result, cached, plan)`` — the service core's statement
            runner.  ``plan`` is the planner's decision dict (``None``
            for cache hits and non-MINE statements) and lands on the
            job record.  It must honour the token cooperatively (PR 1
            semantics) and may raise any
            :class:`~repro.errors.ReproError`.
        workers: worker-thread count (>= 1).
        max_queue_depth: queued-job bound enforced at admission.
        history_limit: finished jobs retained for ``GET /v1/jobs/{id}``.
        clock: injectable wall clock (tests).
        metrics: registry for the scheduler's instruments (the
            process-global default when omitted).
        journal: optional durable job journal; when present every
            lifecycle transition is recorded inside its critical
            section.  Journal failures are logged and counted, never
            surfaced to the job — a broken disk degrades durability,
            not availability.
    """

    def __init__(
        self,
        execute: Callable[..., Tuple[Dict, bool, Optional[Dict]]],
        workers: int = 2,
        max_queue_depth: int = 64,
        history_limit: int = 1024,
        clock: Callable[[], float] = time.time,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[JobJournal] = None,
    ):
        if workers < 1:
            raise ServiceError(f"scheduler workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._execute = execute
        registry = metrics if metrics is not None else default_registry()
        self._m_admitted = registry.counter(
            "repro_scheduler_admitted_total", "Jobs admitted past admission control."
        )
        self._m_rejected = registry.counter(
            "repro_scheduler_rejected_total",
            "Submissions rejected because the queue was saturated.",
        )
        self._m_jobs = registry.counter(
            "repro_scheduler_jobs_total",
            "Jobs finished, by terminal state.",
            labelnames=("state",),
        )
        self._m_queue_depth = registry.gauge(
            "repro_scheduler_queue_depth", "Jobs currently queued."
        )
        self._m_running = registry.gauge(
            "repro_scheduler_running", "Jobs currently running on a worker."
        )
        self._m_wait = registry.histogram(
            "repro_scheduler_wait_seconds",
            "Queue wait time from submission to worker pickup.",
        )
        self._m_run = registry.histogram(
            "repro_scheduler_run_seconds", "Job execution wall time."
        )
        self._m_draining = registry.gauge(
            "repro_scheduler_draining",
            "1 while the scheduler is draining for shutdown, else 0.",
        )
        self._m_resubmitted = registry.counter(
            "repro_scheduler_resubmitted_total",
            "Jobs re-admitted from the journal by restart recovery.",
        )
        self._m_journal_errors = registry.counter(
            "repro_scheduler_journal_errors_total",
            "Journal writes that failed and were degraded to in-memory only.",
        )
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.history_limit = history_limit
        self._clock = clock
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # Max-priority first; FIFO within a priority via the tiebreaker.
        self._heap: List[Tuple[int, int, str]] = []
        self._counter = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._queued = 0
        self._running = 0
        self._closed = False
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._abandoned = False
        self._journal = journal
        self._idempotency: Dict[str, str] = {}
        self._threads: List[threading.Thread] = []
        self._started = False
        #: Optional ``on_finished(job, state)`` hook, called on the
        #: worker thread *before* the terminal transition is recorded —
        #: i.e. before ``job.wait()`` returns and before the record is
        #: served — so it can attach attribution/trace data that
        #: synchronous waiters must observe.  Exceptions are logged and
        #: never fail the job.
        self.on_finished: Optional[Callable[[Job, str], None]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work, cancel what's left, release the workers."""
        with self._available:
            if self._closed:
                return
            self._closed = True
            # Cancel everything still queued; running jobs get their
            # tokens tripped and finish as cancelled-with-partials.
            # (Snapshot: finishing a job can evict history from _jobs.)
            for job in list(self._jobs.values()):
                if job.state == QUEUED:
                    self._finish_locked(job, CANCELLED, error="service shutting down")
                elif job.state == RUNNING:
                    job.cancel_requested = True
                    job.token.cancel()
            self._heap.clear()
            self._queued = 0
            self._available.notify_all()
        if wait:
            deadline = self._clock() + timeout
            for thread in self._threads:
                remaining = max(0.0, deadline - self._clock())
                thread.join(remaining)

    def drain(self, deadline_seconds: float = 10.0) -> Dict[str, int]:
        """Graceful shutdown: stop admitting, land running work, close.

        * New submissions are rejected immediately (503 + ``Retry-After``
          at the API boundary); queued jobs are **left journaled as
          queued** — the next boot runs them.
        * Running jobs get ``deadline_seconds`` to finish normally.
          Stragglers have their tokens tripped, finish at the next pass
          boundary with a *sound partial result*, and are journaled
          ``interrupted`` — the next boot re-runs them to completion.
        * Worker threads are joined; the caller checkpoints the journal.

        Returns a summary: jobs that ``completed`` during the drain,
        running jobs ``interrupted`` at the deadline, and queued jobs
        ``requeued`` (deferred to the next boot).
        """
        with self._available:
            if self._closed or self._draining:
                return {"completed": 0, "interrupted": 0, "requeued": 0}
            self._draining = True
            self._drain_deadline = self._clock() + max(0.0, deadline_seconds)
            self._m_draining.set(1)
            running_at_start = self._running
            self._available.notify_all()
        logger.info(
            "draining: %d running job(s), deadline %.1fs",
            running_at_start,
            deadline_seconds,
        )
        # Phase 1 — let running jobs land on their own.
        while self._clock() < self._drain_deadline:
            with self._lock:
                if self._running == 0:
                    break
            time.sleep(0.05)
        # Phase 2 — interrupt the stragglers (token trip = stop at the
        # next pass boundary with sound partials, PR 1 semantics).
        interrupted = 0
        with self._available:
            for job in list(self._jobs.values()):
                if job.state == RUNNING:
                    interrupted += 1
                    job.interrupted = True
                    job.token.cancel()
        # Phase 3 — a short grace for the interrupted runs to reach
        # their pass boundary and journal their partials.
        if interrupted:
            grace_end = self._clock() + max(2.0, deadline_seconds)
            while self._clock() < grace_end:
                with self._lock:
                    if self._running == 0:
                        break
                time.sleep(0.05)
        # Phase 4 — queued jobs stay journaled ``queued`` for the next
        # boot; in-process they finish as interrupted (no journal write)
        # so waiting clients unblock with an honest record.
        requeued = 0
        with self._available:
            for job in list(self._jobs.values()):
                if job.state == QUEUED:
                    requeued += 1
                    self._queued -= 1
                    self._finish_locked(
                        job,
                        INTERRUPTED,
                        error=(
                            "service draining; job remains journaled and "
                            "will resume on the next boot"
                        ),
                        journal=False,
                    )
            self._heap.clear()
            self._m_queue_depth.set(self._queued)
            self._closed = True
            self._available.notify_all()
        for thread in self._threads:
            thread.join(2.0)
        completed = max(0, running_at_start - interrupted)
        summary = {
            "completed": completed,
            "interrupted": interrupted,
            "requeued": requeued,
        }
        logger.info("drain finished: %s", summary)
        return summary

    def abandon(self) -> None:
        """Chaos seam: emulate process death (``kill -9``) in-process.

        Workers stop *without recording anything*: running jobs stay
        RUNNING (orphaned, exactly as a crash leaves them in the
        journal), queued jobs stay queued, nothing is cancelled or
        finished.  Pair with :meth:`JobJournal.freeze` — together they
        are the crash-restart harness's power-loss point.
        """
        with self._available:
            self._abandoned = True
            self._closed = True
            self._heap.clear()
            for job in self._jobs.values():
                if job.state == RUNNING:
                    # Trip tokens so in-flight runs return quickly; the
                    # worker loop sees _abandoned and records nothing.
                    job.token.cancel()
            self._available.notify_all()

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------

    def _journal_safe(self, action: Callable[[], None], describe: str) -> None:
        """Run one journal write, degrading failures to a log line.

        The journal is the durability promise, not the availability
        one: a job must never fail because the journal disk did.
        """
        if self._journal is None:
            return
        try:
            action()
        except (DatabaseError, sqlite3.Error) as error:
            self._m_journal_errors.inc()
            logger.error(
                "journal write (%s) failed; continuing without durability: %s",
                describe,
                error,
            )

    def submit(
        self,
        statement: str,
        priority: int = 0,
        budget: Optional[RunBudget] = None,
        trace: object = False,
        idempotency_key: Optional[str] = None,
        canonical_key: Optional[str] = None,
    ) -> Job:
        """Admit one job; raises :class:`AdmissionError` when saturated.

        A submission whose ``idempotency_key`` matches a job this
        scheduler already knows returns that job unchanged — a client
        retrying a request it never saw the response to attaches to the
        original execution instead of admitting a duplicate.
        """
        self.start()
        with self._available:
            if self._closed:
                raise ServiceError("scheduler is closed")
            if idempotency_key:
                existing_id = self._idempotency.get(idempotency_key)
                existing = self._jobs.get(existing_id) if existing_id else None
                if existing is not None:
                    logger.info(
                        "idempotency key %s re-attached to job %s",
                        idempotency_key,
                        existing.job_id,
                    )
                    return existing
            if self._draining:
                remaining = (
                    max(0.0, self._drain_deadline - self._clock())
                    if self._drain_deadline is not None
                    else 0.0
                )
                raise AdmissionError(
                    "service is draining for shutdown; retry against the "
                    "restarted instance",
                    retry_after=max(1.0, remaining),
                )
            if self._queued >= self.max_queue_depth:
                self._m_rejected.inc()
                logger.warning(
                    "rejecting submission: queue saturated (%d queued, limit %d)",
                    self._queued,
                    self.max_queue_depth,
                )
                raise AdmissionError(
                    f"queue saturated ({self._queued} queued, "
                    f"limit {self.max_queue_depth}); retry later"
                )
            job = Job(
                job_id=uuid.uuid4().hex[:12],
                statement=statement,
                priority=priority,
                budget=budget,
                trace=trace,
                submitted_at=self._clock(),
                idempotency_key=idempotency_key,
            )
            self._jobs[job.job_id] = job
            if idempotency_key:
                self._idempotency[idempotency_key] = job.job_id
            heapq.heappush(self._heap, (-priority, next(self._counter), job.job_id))
            self._queued += 1
            self._m_admitted.inc()
            self._journal_safe(
                # The journal stores trace as a bool: a distributed
                # parent context does not survive a restart (the remote
                # caller is gone), so a recovered job re-runs with local
                # tracing only.
                lambda: self._journal.record_admitted(
                    job.job_id,
                    statement,
                    priority=priority,
                    budget=budget,
                    trace=bool(trace),
                    idempotency_key=idempotency_key,
                    canonical_key=canonical_key,
                    submitted_at=job.submitted_at,
                ),
                f"admit {job.job_id}",
            )
            logger.info(
                "job %s admitted (priority=%d, %d queued)",
                job.job_id,
                priority,
                self._queued,
            )
            self._m_queue_depth.set(self._queued)
            self._available.notify()
            return job

    def resubmit(self, record: JournalRecord) -> Job:
        """Re-admit one recovered journal record (restart recovery).

        Bypasses admission control — a job the journal says we owe is a
        promise already made; queue-depth limits apply to *new* work.
        The journal row is rewritten as ``queued`` with its attempt
        counter preserved, so the crash-loop cap survives restarts.
        """
        with self._available:
            if self._closed:
                raise ServiceError("scheduler is closed")
            job = Job(
                job_id=record.job_id,
                statement=record.statement,
                priority=record.priority,
                budget=record.budget,
                trace=record.trace,
                submitted_at=record.submitted_at,
                idempotency_key=record.idempotency_key,
                attempts=record.attempts,
                recovered=True,
            )
            self._jobs[job.job_id] = job
            if record.idempotency_key:
                self._idempotency[record.idempotency_key] = job.job_id
            heapq.heappush(
                self._heap, (-record.priority, next(self._counter), job.job_id)
            )
            self._queued += 1
            self._m_resubmitted.inc()
            self._journal_safe(
                lambda: self._journal.record_admitted(
                    record.job_id,
                    record.statement,
                    priority=record.priority,
                    budget=record.budget,
                    trace=record.trace,
                    idempotency_key=record.idempotency_key,
                    canonical_key=record.canonical_key,
                    submitted_at=record.submitted_at,
                    attempts=record.attempts,
                ),
                f"re-admit {record.job_id}",
            )
            logger.info(
                "job %s re-admitted from journal (attempt %d)",
                job.job_id,
                record.attempts + 1,
            )
            self._m_queue_depth.set(self._queued)
            self._available.notify()
            return job

    def restore_terminal(self, record: JournalRecord) -> Job:
        """Rebuild one terminal job record from the journal (no re-run).

        A restarted service keeps serving ``GET /v1/jobs/{id}`` for jobs
        that finished before the crash — results included.
        """
        with self._lock:
            job = Job(
                job_id=record.job_id,
                statement=record.statement,
                priority=record.priority,
                budget=record.budget,
                trace=record.trace,
                state=record.state,
                submitted_at=record.submitted_at,
                started_at=record.started_at,
                finished_at=record.finished_at,
                result=record.result,
                error=record.error,
                idempotency_key=record.idempotency_key,
                attempts=record.attempts,
                recovered=True,
            )
            job._done.set()
            self._jobs[job.job_id] = job
            if record.idempotency_key:
                self._idempotency[record.idempotency_key] = job.job_id
            self._finished_order.append(job.job_id)
            self._trim_history_locked()
            return job

    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` (raises :class:`JobNotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: dequeue it, or trip its token mid-run.

        Idempotent on already-terminal jobs (returns the record as-is).
        """
        with self._available:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            if job.state in TERMINAL_STATES:
                return job
            job.cancel_requested = True
            job.token.cancel()
            if job.state == QUEUED:
                # Lazy heap removal: the worker loop skips cancelled ids,
                # so the admission counter must be released here — the
                # skip path in _next_job deliberately never decrements.
                self._queued -= 1
                self._m_queue_depth.set(self._queued)
                self._finish_locked(job, CANCELLED, error="cancelled while queued")
        return job

    def stats(self) -> Dict[str, object]:
        """Queue/worker/state counters for ``GET /v1/status``."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "queue_depth": self._queued,
                "max_queue_depth": self.max_queue_depth,
                "running": self._running,
                "draining": self._draining,
                "jobs": states,
            }

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        with self._available:
            while True:
                if self._closed or self._draining:
                    # Draining: idle workers exit instead of picking up
                    # queued work — those jobs stay journaled ``queued``
                    # and run on the next boot.
                    return None
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs.get(job_id)
                    if job is None or job.state != QUEUED:
                        continue  # cancelled while queued (lazy removal)
                    self._queued -= 1
                    self._running += 1
                    job.state = RUNNING
                    job.started_at = self._clock()
                    job.attempts += 1
                    self._journal_safe(
                        lambda: self._journal.record_running(
                            job.job_id, started_at=job.started_at
                        ),
                        f"start {job.job_id}",
                    )
                    self._m_queue_depth.set(self._queued)
                    self._m_running.set(self._running)
                    self._m_wait.observe(max(0.0, job.started_at - job.submitted_at))
                    return job
                self._available.wait(timeout=0.1)

    def _terminal_state_for(self, job: Job) -> str:
        # A user cancel wins over a drain interrupt: cancelled is
        # durable ("never run this again"), interrupted is not ("finish
        # this on the next boot").
        if job.cancel_requested:
            return CANCELLED
        if job.interrupted:
            return INTERRUPTED
        return DONE

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                result, cached, plan = self._execute(
                    job.statement, job.token, job.budget, job.trace
                )
                if self._abandoned:
                    return  # simulated process death: record nothing
                with self._available:
                    self._running -= 1
                    self._m_running.set(self._running)
                    job.result = result
                    job.cached = cached
                    job.plan = plan
                    # A cancel/interrupt that landed mid-run surfaces as
                    # a sound partial result on the job record — it
                    # keeps what the run managed to compute.
                    state = self._terminal_state_for(job)
                    self._call_on_finished(job, state)
                    self._finish_locked(job, state)
            except SimulatedCrash as error:
                # Chaos seam: the fault emulates the worker thread dying
                # mid-job (segfault/OOM analogue).  No transition is
                # recorded — the job stays RUNNING, orphaned exactly the
                # way a real crash orphans it; only restart recovery
                # (or this process's own recovery sweep) can reclaim it.
                logger.error(
                    "job %s worker crashed: %s (thread dies, job orphaned)",
                    job.job_id,
                    error,
                )
                with self._lock:
                    self._running -= 1
                    self._m_running.set(self._running)
                return
            except BaseException as error:  # noqa: BLE001 — job isolation
                if self._abandoned:
                    return
                logger.warning(
                    "job %s failed: %s: %s", job.job_id, type(error).__name__, error
                )
                with self._available:
                    self._running -= 1
                    self._m_running.set(self._running)
                    state = self._terminal_state_for(job)
                    if state == DONE:
                        state = FAILED
                    self._call_on_finished(job, state)
                    self._finish_locked(job, state, error=f"{type(error).__name__}: {error}")

    def _call_on_finished(self, job: Job, state: str) -> None:
        """Run the on_finished hook; its failures never fail the job.

        Called with the scheduler lock held, deliberately *before*
        :meth:`_finish_locked` sets the job's done event: whatever the
        hook attaches (resource attribution, the trace id) is visible to
        every waiter and every rendering of the record.
        """
        if self.on_finished is None:
            return
        try:
            self.on_finished(job, state)
        except Exception as error:  # noqa: BLE001 — observability only
            logger.warning(
                "on_finished hook failed for job %s: %s: %s",
                job.job_id,
                type(error).__name__,
                error,
            )

    def _finish_locked(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        journal: bool = True,
    ) -> None:
        job.state = state
        job.error = error if error is not None else job.error
        job.finished_at = self._clock()
        self._m_jobs.inc(state=state)
        if journal:
            self._journal_safe(
                lambda: self._journal.record_finished(
                    job.job_id,
                    state,
                    error=job.error,
                    result=job.result,
                    finished_at=job.finished_at,
                ),
                f"finish {job.job_id}",
            )
        logger.info("job %s finished: %s", job.job_id, state)
        if job.started_at is not None:
            self._m_run.observe(max(0.0, job.finished_at - job.started_at))
        job._done.set()
        self._finished_order.append(job.job_id)
        self._trim_history_locked()

    def _trim_history_locked(self) -> None:
        while len(self._finished_order) > self.history_limit:
            stale_id = self._finished_order.pop(0)
            stale = self._jobs.get(stale_id)
            if stale is not None and stale.state in TERMINAL_STATES:
                del self._jobs[stale_id]
                if stale.idempotency_key:
                    self._idempotency.pop(stale.idempotency_key, None)
