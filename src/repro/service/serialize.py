"""JSON-able serialization of execution results.

The HTTP API and the result cache both need statement outcomes as plain
JSON values.  The serialized *result* dict deliberately excludes
wall-clock fields (``elapsed_seconds`` travels separately in the
response/job envelope): a cache hit must be byte-identical to the run
that populated it, and two independent runs of the same query over the
same data must serialize identically — that is the property the
end-to-end tests pin.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.items import ItemCatalog
from repro.db.query import QueryResult
from repro.mining.results import MiningReport
from repro.runtime.budget import RunDiagnostics


def diagnostics_to_dict(diagnostics: Optional[RunDiagnostics]) -> Optional[Dict]:
    """Serialize run diagnostics (budget described, not embedded)."""
    if diagnostics is None:
        return None
    return {
        "stop_reason": diagnostics.stop_reason,
        "passes_completed": diagnostics.passes_completed,
        "granules_covered": diagnostics.granules_covered,
        "candidates_generated": diagnostics.candidates_generated,
        "rules_emitted": diagnostics.rules_emitted,
        "budget": diagnostics.budget.describe(),
    }


def report_to_dict(
    report: MiningReport, catalog: Optional[ItemCatalog] = None
) -> Dict:
    """Serialize a mining report.

    Individual findings are serialized through their canonical
    ``format(catalog)`` rendering — the same deterministic text the
    library surfaces everywhere else, which makes "bit-identical to the
    serial library path" directly checkable.

    The rendered findings are sorted: the engine emits rules in item-id
    order, and item ids follow the order labels were first *seen* — a
    streaming append that backfills an early time unit shifts that order
    relative to a cold reload of the very same store content.  Sorting
    by the canonical text keys the serialized result to the store
    *content*, so a delta-folded run and a from-scratch reload serialize
    byte-identically (the append chaos suite pins this).
    """
    document = {
        "type": "mining_report",
        "task": report.task_name,
        "n_results": len(report.results),
        "n_transactions": report.n_transactions,
        "n_units": report.n_units,
        "partial": report.partial,
        "diagnostics": diagnostics_to_dict(report.diagnostics),
        "results": sorted(
            _record_text(record, catalog) for record in report.results
        ),
    }
    # The trace key appears only on traced runs so that untraced payloads
    # stay byte-identical across runs (the cache-stability invariant).
    # The plan is excluded for the same reason — its cost estimates move
    # as planner calibration accumulates; it travels on the job record.
    if report.trace is not None:
        document["trace"] = report.trace
    return document


def _record_text(record, catalog: Optional[ItemCatalog]) -> str:
    formatter = getattr(record, "format", None)
    return formatter(catalog) if formatter is not None else str(record)


def query_result_to_dict(result: QueryResult) -> Dict:
    """Serialize a relational result (SQL / SHOW / EXPLAIN output)."""
    return {
        "type": "query_result",
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "n_rows": len(result.rows),
    }


def payload_to_dict(payload, catalog: Optional[ItemCatalog] = None) -> Dict:
    """Serialize any statement payload (fallback: its text rendering)."""
    if isinstance(payload, MiningReport):
        return report_to_dict(payload, catalog)
    if isinstance(payload, QueryResult):
        return query_result_to_dict(payload)
    formatter = getattr(payload, "format", None)
    if formatter is not None:
        try:
            return {"type": "text", "text": formatter(catalog)}
        except TypeError:
            return {"type": "text", "text": formatter()}
    return {"type": "text", "text": str(payload)}
