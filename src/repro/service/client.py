"""A minimal stdlib client for the mining service's HTTP API.

Used by the REPL's ``.serve``-adjacent workflows, the smoke tests and
the E17 benchmark; also a reference for what the API looks like from
the outside.

>>> client = ServiceClient("http://127.0.0.1:8765")      # doctest: +SKIP
>>> client.query("SHOW SUMMARY;")                        # doctest: +SKIP
>>> job = client.query_async("MINE PERIODS FROM transactions ...;")
...                                                      # doctest: +SKIP
>>> client.wait(job["job_id"])                           # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.errors import AdmissionError, JobNotFoundError, ServiceError


class ServiceClient:
    """Talk JSON to a :class:`~repro.service.http.MiningHTTPServer`."""

    def __init__(self, base_url: str, timeout: float = 330.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # raw HTTP
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                document = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                document = {"error": str(error)}
            message = document.get("error") or f"HTTP {error.code}"
            if error.code == 503:
                raise AdmissionError(message) from None
            if error.code == 404:
                raise JobNotFoundError(message) from None
            if error.code in (422, 504):
                # The job record travels on the error response — surface
                # it rather than the bare status line.
                document.setdefault("http_status", error.code)
                return document
            raise ServiceError(f"HTTP {error.code}: {message}") from None
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.base_url}: {error}") from None

    def _request_text(self, method: str, path: str) -> str:
        """Fetch a non-JSON endpoint (the Prometheus exposition)."""
        request = urllib.request.Request(self.base_url + path, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(f"HTTP {error.code}: {error.reason}") from None
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.base_url}: {error}") from None

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def query(
        self,
        text: str,
        priority: int = 0,
        budget: Optional[Dict] = None,
        timeout: Optional[float] = None,
        trace: bool = False,
    ) -> Dict:
        """Run one statement synchronously; returns the job record."""
        payload: Dict = {"query": text, "priority": priority}
        if budget:
            payload["budget"] = budget
        if timeout is not None:
            payload["timeout"] = timeout
        if trace:
            payload["trace"] = True
        return self._request("POST", "/v1/query", payload)

    def query_async(
        self,
        text: str,
        priority: int = 0,
        budget: Optional[Dict] = None,
        trace: bool = False,
    ) -> Dict:
        """Submit one statement; returns the queued job record."""
        payload: Dict = {"query": text, "priority": priority, "async": True}
        if budget:
            payload["budget"] = budget
        if trace:
            payload["trace"] = True
        return self._request("POST", "/v1/query", payload)

    def job(self, job_id: str) -> Dict:
        """Poll one job record."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict:
        """Cancel a queued or running job."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def status(self) -> Dict:
        """The service status document."""
        return self._request("GET", "/v1/status")

    def metrics(self) -> str:
        """The service metrics in Prometheus text exposition format."""
        return self._request_text("GET", "/v1/metrics")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.05,
    ) -> Dict:
        """Poll until the job is terminal (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout:g}s"
                )
            time.sleep(poll_seconds)
