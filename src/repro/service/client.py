"""A minimal stdlib client for the mining service's HTTP API.

Used by the REPL's ``.serve``-adjacent workflows, the smoke tests and
the E17/E19 benchmarks; also a reference for what the API looks like
from the outside.

Hardened for an unreliable network and a restartable server:

* **Socket timeouts everywhere** — control-plane calls default to
  ``timeout`` (30 s); a synchronous query's socket timeout is derived
  from its *server-side* wait (server wait + a grace margin), so a long
  mine never trips the client first but a stalled server cannot hang it
  forever.
* **Retry with backoff and jitter** — connect/read failures and 503
  rejections are retried on the PR 1 :class:`~repro.runtime.retry.RetryPolicy`
  schedule.  A ``Retry-After`` hint from the server is honoured as the
  *floor* of the next delay.
* **Idempotency keys** — :meth:`query`/:meth:`query_async` attach a
  generated idempotency key, so a retried POST re-attaches to the job
  the first attempt admitted instead of running the statement twice.
  Connection-failure retries of a POST happen *only* when a key is
  attached; 503s are always safe to retry (the job was never admitted).

>>> client = ServiceClient("http://127.0.0.1:8765")      # doctest: +SKIP
>>> client.query("SHOW SUMMARY;")                        # doctest: +SKIP
>>> job = client.query_async("MINE PERIODS FROM transactions ...;")
...                                                      # doctest: +SKIP
>>> client.wait(job["job_id"])                           # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
import uuid
from typing import Callable, Dict, Optional

from repro.errors import (
    AdmissionError,
    JobNotFoundError,
    ServiceError,
    ServiceUnreachableError,
)
from repro.obs.distributed import TraceContext, new_trace_context
from repro.runtime.retry import RetryPolicy

#: Default socket timeout for control-plane requests (status, polls).
DEFAULT_TIMEOUT_SECONDS = 30.0

#: Default *server-side* wait for a synchronous query (mirrors the
#: server's own default before it answers 504).
DEFAULT_SYNC_WAIT_SECONDS = 300.0

#: Socket-timeout headroom over a synchronous query's server-side wait:
#: the server must win the race and answer 504 with a pollable job id —
#: a client-side socket timeout would lose the id.
SYNC_GRACE_SECONDS = 30.0

#: Network failures the retry loop may clear.  ``HTTPError`` is *not*
#: transient here — it is a served response — and is handled separately.
_TRANSPORT_ERRORS = (
    urllib.error.URLError,
    ConnectionError,
    TimeoutError,
    http.client.HTTPException,
)

#: Client-side retry schedule: a few patient attempts with jitter, so a
#: fleet of clients re-knocking on a restarted service fans out in time.
DEFAULT_CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.2, multiplier=2.0, max_delay=5.0, jitter=0.25
)


def generate_idempotency_key() -> str:
    """A fresh idempotency key (one per *logical* submission)."""
    return uuid.uuid4().hex


class ServiceClient:
    """Talk JSON to a :class:`~repro.service.http.MiningHTTPServer`.

    Args:
        base_url: the service root, e.g. ``http://127.0.0.1:8765``.
        timeout: socket timeout for control-plane requests, seconds.
        retry_policy: backoff schedule for transient failures (pass
            ``RetryPolicy(max_attempts=1)`` to disable retries).
        sleep / rng: injectable sleeper and jitter source (tests).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_CLIENT_RETRY_POLICY
        )
        self._sleep = sleep
        self._rng = rng

    # ------------------------------------------------------------------
    # raw HTTP
    # ------------------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        request_headers: Dict[str, str] = dict(headers) if headers else {}
        if body:
            request_headers.setdefault("Content-Type", "application/json")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers=request_headers,
        )
        socket_timeout = timeout if timeout is not None else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=socket_timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                document = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                document = {"error": str(error)}
            message = document.get("error") or f"HTTP {error.code}"
            if error.code == 503:
                raise AdmissionError(
                    message, retry_after=_retry_after_seconds(error)
                ) from None
            if error.code == 404:
                raise JobNotFoundError(message) from None
            if error.code in (422, 504):
                # The job record travels on the error response — surface
                # it rather than the bare status line.
                document.setdefault("http_status", error.code)
                return document
            raise ServiceError(f"HTTP {error.code}: {message}") from None
        except _TRANSPORT_ERRORS as error:
            raise ServiceUnreachableError(
                f"cannot reach {self.base_url}: {error}"
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """One API call through the retry loop.

        503s are always retryable (the job was never admitted).
        Transport failures are retryable for GET/DELETE, and for POSTs
        that carry an idempotency key — a keyless POST that died
        mid-flight may or may not have been admitted, so it must
        surface instead of risking a duplicate run.
        """
        transport_retryable = method in ("GET", "DELETE") or bool(
            payload and payload.get("idempotency_key")
        )
        schedule = self.retry_policy.delays(self._rng)
        while True:
            try:
                return self._request_once(method, path, payload, timeout, headers)
            except AdmissionError as error:
                delay = next(schedule, None)
                if delay is None:
                    raise
                # Retry-After is a floor, not a replacement: the server
                # knows when it might accept again, the jittered policy
                # keeps a client fleet from re-knocking in lockstep.
                self._sleep(max(delay, error.retry_after or 0.0))
            except ServiceUnreachableError:
                delay = None if not transport_retryable else next(schedule, None)
                if delay is None:
                    raise
                self._sleep(delay)

    def _request_text(self, method: str, path: str) -> str:
        """Fetch a non-JSON endpoint (the Prometheus exposition)."""
        schedule = self.retry_policy.delays(self._rng)
        while True:
            request = urllib.request.Request(self.base_url + path, method=method)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as error:
                raise ServiceError(f"HTTP {error.code}: {error.reason}") from None
            except _TRANSPORT_ERRORS as error:
                delay = next(schedule, None)
                if delay is None:
                    raise ServiceUnreachableError(
                        f"cannot reach {self.base_url}: {error}"
                    ) from None
                self._sleep(delay)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def query(
        self,
        text: str,
        priority: int = 0,
        budget: Optional[Dict] = None,
        timeout: Optional[float] = None,
        trace: object = False,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """Run one statement synchronously; returns the job record.

        ``timeout`` is the *server-side* wait before the server answers
        504; the socket timeout is derived from it (plus a grace
        margin) so the server always wins that race and the client
        keeps a pollable job id.  An idempotency key is generated when
        none is passed, making the POST retry-safe.

        ``trace`` may be ``True`` (the client mints a fresh
        :class:`~repro.obs.distributed.TraceContext` and sends its
        ``traceparent``, so the client is the first hop of the trace)
        or an existing ``TraceContext`` to join a caller's trace.  The
        resulting trace id comes back on the job record.
        """
        payload: Dict = {
            "query": text,
            "priority": priority,
            "idempotency_key": (
                idempotency_key
                if idempotency_key is not None
                else generate_idempotency_key()
            ),
        }
        if budget:
            payload["budget"] = budget
        if timeout is not None:
            payload["timeout"] = timeout
        headers = self._trace_headers(payload, trace)
        server_wait = timeout if timeout is not None else DEFAULT_SYNC_WAIT_SECONDS
        return self._request(
            "POST",
            "/v1/query",
            payload,
            timeout=server_wait + SYNC_GRACE_SECONDS,
            headers=headers,
        )

    def query_async(
        self,
        text: str,
        priority: int = 0,
        budget: Optional[Dict] = None,
        trace: object = False,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """Submit one statement; returns the queued job record."""
        payload: Dict = {
            "query": text,
            "priority": priority,
            "async": True,
            "idempotency_key": (
                idempotency_key
                if idempotency_key is not None
                else generate_idempotency_key()
            ),
        }
        if budget:
            payload["budget"] = budget
        headers = self._trace_headers(payload, trace)
        return self._request("POST", "/v1/query", payload, headers=headers)

    @staticmethod
    def _trace_headers(payload: Dict, trace: object) -> Optional[Dict[str, str]]:
        """Set ``payload["trace"]`` and build the ``traceparent`` header.

        A retried POST re-sends the same header, so the re-attached job
        lands in the same trace as the first attempt.
        """
        if not trace:
            return None
        payload["trace"] = True
        context = trace if isinstance(trace, TraceContext) else new_trace_context()
        return {"traceparent": context.to_traceparent()}

    def append_transactions(
        self,
        transactions,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """Stream a batch of transactions into the service's store.

        ``transactions`` holds ``{"ts": ISO timestamp, "items": [...]}``
        objects (optionally with ``"tid"``) or ``(timestamp, items[,
        tid])`` tuples.  An idempotency key is generated when none is
        passed, so a retried POST can never double-apply the batch.
        """
        entries = []
        for entry in transactions:
            if isinstance(entry, dict):
                entries.append(entry)
                continue
            timestamp, items = entry[0], entry[1]
            tid = entry[2] if len(entry) > 2 else None
            document: Dict = {
                "ts": timestamp.isoformat()
                if hasattr(timestamp, "isoformat")
                else str(timestamp),
                "items": list(items),
            }
            if tid is not None:
                document["tid"] = tid
            entries.append(document)
        payload: Dict = {
            "transactions": entries,
            "idempotency_key": (
                idempotency_key
                if idempotency_key is not None
                else generate_idempotency_key()
            ),
        }
        return self._request("POST", "/v1/transactions", payload)

    def job(self, job_id: str) -> Dict:
        """Poll one job record."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict:
        """Cancel a queued or running job."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def status(self) -> Dict:
        """The service status document."""
        return self._request("GET", "/v1/status")

    def metrics(self) -> str:
        """The service metrics in Prometheus text exposition format."""
        return self._request_text("GET", "/v1/metrics")

    def trace(self, trace_id: str) -> Dict:
        """Fetch one stored trace document by trace id.

        Raises :class:`~repro.errors.JobNotFoundError` when the trace
        has been evicted (or never existed).
        """
        return self._request("GET", f"/v1/traces/{trace_id}")

    def traces(self, min_ms: float = 0.0, limit: int = 50) -> Dict:
        """List stored trace summaries, slowest first."""
        query = urllib.parse.urlencode({"min_ms": min_ms, "limit": limit})
        return self._request("GET", f"/v1/traces?{query}")

    def slow(self) -> Dict:
        """The slow-query flight recorder's ranked capture log."""
        return self._request("GET", "/v1/debug/slow")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.05,
    ) -> Dict:
        """Poll until the job is terminal (or raise on timeout).

        ``interrupted`` counts as terminal: the record is final in the
        serving process — the statement finishes after its restart,
        under the same job id.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled", "interrupted"):
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout:g}s"
                )
            time.sleep(poll_seconds)


def _retry_after_seconds(error: urllib.error.HTTPError) -> Optional[float]:
    """Parse a numeric ``Retry-After`` header, if present and sane."""
    raw = error.headers.get("Retry-After") if error.headers else None
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return None
    return value if value >= 0 else None
