"""``python -m repro.service`` / ``repro-serve`` — run the mining service.

Examples::

    # serve an existing store
    repro-serve --db sales.db --port 8765 --workers 4

    # demo mode: synthesize a seasonal dataset and serve it
    repro-serve --demo --port 8765

    curl -s localhost:8765/v1/status | python -m json.tool
    curl -s -X POST localhost:8765/v1/query -d '{
        "query": "MINE PERIODS FROM transactions AT GRANULARITY month
                  WITH SUPPORT >= 0.2, CONFIDENCE >= 0.6;"
    }'
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.obs.logs import configure_logging
from repro.runtime.budget import RunBudget
from repro.service.core import MiningService, ServiceConfig
from repro.service.http import MiningHTTPServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve TML mining queries over HTTP (IQMS as a service).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--db", default=":memory:", help="SQLite store path (default: in-memory)"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="load the bundled synthetic seasonal demo dataset at startup",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent statements (worker threads)"
    )
    parser.add_argument(
        "--mining-workers",
        type=int,
        default=1,
        help="process shards per mining run (1 = serial counting)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        help="counting backend (auto|dict|hashtree|vertical)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="queued-job admission bound"
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256, help="result-cache capacity"
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--budget-time",
        type=float,
        default=None,
        help="default per-run wall-clock budget in seconds",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error", "critical"),
        help="threshold for the repro.* loggers on stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    default_budget = (
        RunBudget(max_seconds=args.budget_time) if args.budget_time else None
    )
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=args.cache_ttl,
        engine=args.engine,
        mining_workers=args.mining_workers,
        default_budget=default_budget,
    )
    service = MiningService(store=args.db, config=config)
    if args.demo:
        loaded = service.load_demo()
        print(f"loaded demo dataset: {loaded} transactions", file=sys.stderr)
    server = MiningHTTPServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(f"repro mining service listening on {server.url}", file=sys.stderr)
    print("endpoints: POST /v1/query  GET /v1/jobs/{id}  "
          "DELETE /v1/jobs/{id}  GET /v1/status  GET /v1/metrics",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
