"""``python -m repro.service`` / ``repro-serve`` — run the mining service.

Examples::

    # serve an existing store durably (journal + disk cache derived
    # from the store path; restart recovery replays unfinished jobs)
    repro-serve --db sales.db --port 8765 --workers 4

    # demo mode: synthesize a seasonal dataset and serve it
    repro-serve --demo --port 8765

    curl -s localhost:8765/v1/status | python -m json.tool
    curl -s -X POST localhost:8765/v1/query -d '{
        "query": "MINE PERIODS FROM transactions AT GRANULARITY month
                  WITH SUPPORT >= 0.2, CONFIDENCE >= 0.6;"
    }'

Shutdown: ``SIGTERM`` or ``SIGINT`` (Ctrl-C) starts a graceful drain —
new submissions get 503 + ``Retry-After`` while running jobs get
``--drain-deadline`` seconds to land (stragglers are interrupted at a
pass boundary, their sound partial results journaled); queued jobs stay
journaled and resume when the service is next started on the same
``--journal`` path.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro.db.sqlite_store import SqliteStore
from repro.obs.logs import configure_logging
from repro.runtime.budget import RunBudget
from repro.service.core import MiningService, ServiceConfig
from repro.service.http import MiningHTTPServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve TML mining queries over HTTP (IQMS as a service).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 = ephemeral; the resolved port is printed and "
        "written to --port-file)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the resolved bind port to this file once listening "
        "(how a cluster supervisor discovers an ephemeral port)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identity of this process in a cluster fleet "
        "(surfaces in /v1/status and the X-Repro-Worker header)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="serve through a fingerprint-routed router in front of N "
        "worker processes instead of a single process "
        "(delegates to python -m repro.cluster; requires a file-backed --db)",
    )
    parser.add_argument(
        "--db", default=":memory:", help="SQLite store path (default: in-memory)"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="load the bundled synthetic seasonal demo dataset at startup "
        "(skipped when the store already holds data)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent statements (worker threads)"
    )
    parser.add_argument(
        "--mining-workers",
        type=lambda v: None if v.lower() == "auto" else int(v),
        default=None,
        metavar="N|auto",
        help="process shards per mining run (auto = planner-sized, 1 = serial)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        help="counting backend (auto|dict|hashtree|vertical|packed)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="queued-job admission bound"
    )
    parser.add_argument(
        "--cache-entries", type=int, default=256, help="result-cache capacity"
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    parser.add_argument(
        "--budget-time",
        type=float,
        default=None,
        help="default per-run wall-clock budget in seconds",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="durable job-journal file (default: <db>.journal for a "
        "file-backed store, disabled for :memory:)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the job journal (jobs die with the process)",
    )
    parser.add_argument(
        "--disk-cache",
        default=None,
        metavar="PATH",
        help="result-cache spill file (default: <db>.cache for a "
        "file-backed store, disabled for :memory:)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="disable the disk cache tier (warm results die with the process)",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        help="seconds a SIGTERM drain lets running jobs finish before "
        "interrupting them (their partials are journaled)",
    )
    parser.add_argument(
        "--trace-store-entries",
        type=int,
        default=512,
        metavar="N",
        help="trace documents held in memory (GET /v1/traces)",
    )
    parser.add_argument(
        "--trace-spill",
        default=None,
        metavar="PATH",
        help="SQLite spill file for evicted trace documents "
        "(default: memory only)",
    )
    parser.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="latency past which the flight recorder captures a query "
        "in full (GET /v1/debug/slow)",
    )
    parser.add_argument(
        "--slow-top-k",
        type=int,
        default=32,
        metavar="K",
        help="slowest captures the flight recorder keeps",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error", "critical"),
        help="threshold for the repro.* loggers on stderr",
    )
    return parser


def _durable_path(
    explicit: Optional[str], disabled: bool, db_path: str, suffix: str
) -> Optional[str]:
    """Resolve a journal/disk-cache path from the flags and the store."""
    if disabled:
        return None
    if explicit is not None:
        return explicit
    if db_path == ":memory:":
        return None
    return db_path + suffix


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cluster is not None:
        # ``repro-serve --cluster N`` is sugar for the scale-out entry
        # point: a router supervising N of these processes.
        from repro.cluster.__main__ import main as cluster_main

        cluster_argv = [
            "--db", args.db,
            "--host", args.host,
            "--port", str(args.port),
            "--workers", str(args.cluster),
            "--threads-per-worker", str(args.workers),
            "--engine", args.engine,
            "--drain-deadline", str(args.drain_deadline),
            "--slow-threshold", str(args.slow_threshold),
            "--log-level", args.log_level,
        ]
        if args.demo:
            cluster_argv.append("--demo")
        if args.verbose:
            cluster_argv.append("--verbose")
        return cluster_main(cluster_argv)
    configure_logging(args.log_level)
    default_budget = (
        RunBudget(max_seconds=args.budget_time) if args.budget_time else None
    )
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=args.cache_ttl,
        engine=args.engine,
        mining_workers=args.mining_workers,
        default_budget=default_budget,
        journal_path=_durable_path(
            args.journal, args.no_journal, args.db, ".journal"
        ),
        disk_cache_path=_durable_path(
            args.disk_cache, args.no_disk_cache, args.db, ".cache"
        ),
        drain_deadline_seconds=args.drain_deadline,
        worker_id=args.worker_id,
        trace_store_entries=args.trace_store_entries,
        trace_spill_path=args.trace_spill,
        slow_threshold_seconds=args.slow_threshold,
        slow_top_k=args.slow_top_k,
    )
    # The store is prepared *before* the service exists: journal
    # recovery starts workers immediately, and a recovered job must
    # never mine a half-loaded dataset.
    store = SqliteStore(args.db)
    if args.demo and store.count_transactions() == 0:
        from repro.datagen import seasonal_dataset

        dataset = seasonal_dataset(n_transactions=4000, seed=7)
        loaded = store.save_database(dataset.database)
        print(f"loaded demo dataset: {loaded} transactions", file=sys.stderr)
    service = MiningService(store=store, config=config)
    if service.recovered.get("requeued"):
        print(
            f"journal recovery: re-admitted {service.recovered['requeued']} "
            f"unfinished job(s)",
            file=sys.stderr,
        )
    server = MiningHTTPServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(f"repro mining service listening on {server.url}", file=sys.stderr)
    if args.port_file:
        # Written atomically (tmp + rename): a supervisor polling the
        # path must never read a half-written port.
        port_file = Path(args.port_file)
        tmp = port_file.with_name(port_file.name + ".tmp")
        tmp.write_text(f"{server.server_address[1]}\n")
        tmp.replace(port_file)
    print("endpoints: POST /v1/query  GET /v1/jobs/{id}  "
          "DELETE /v1/jobs/{id}  GET /v1/status  GET /v1/metrics",
          file=sys.stderr)

    # The HTTP server runs on a background thread so the main thread
    # can own signal handling: on SIGTERM/SIGINT it drains the service
    # while the API keeps answering (503 for new work, 200 for polls),
    # then stops the listener.
    stop = threading.Event()

    def _request_shutdown(signum, frame):  # noqa: ARG001 — signal API
        print(
            f"\nreceived {signal.Signals(signum).name}: draining "
            f"(deadline {args.drain_deadline:g}s)",
            file=sys.stderr,
        )
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    finally:
        summary = service.drain()
        print(f"drain: {summary}", file=sys.stderr)
        server.shutdown()
        server.server_close()
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
