"""The durable job journal — every lifecycle transition, fsync'd.

One :class:`JobJournal` is a SQLite database (WAL mode, ``synchronous =
FULL`` so every admission and finish reaches the platters before the
transition is acknowledged; the ``running`` edge alone commits without
an fsync, because losing it is provably recoverable) holding two
tables:

``jobs``
    One row per job the service ever admitted: the statement text, its
    canonical-TML key, priority, budget spec, trace flag, idempotency
    key, current state, timestamps, error, serialized result (terminal
    and drain-interrupted jobs), and the attempt counter that bounds
    crash loops.

``transitions``
    The append-only history — ``(seq, job_id, state, at, detail)`` — one
    row per lifecycle edge.  Recovery decisions are made from the
    ``jobs`` snapshot; the transition log is the audit trail the chaos
    suite replays its invariants against.

``appends``
    Write-ahead intents for streaming transaction appends (PR 8): the
    batch payload is journaled as ``intent`` before the store commit and
    flipped to ``applied`` after it.  Recovery replays every intent left
    behind by a crash through the store's idempotent
    :meth:`~repro.db.sqlite_store.SqliteStore.append_batch`, so no
    transaction is lost or double-applied.

Journal states and their recovery meaning::

    queued       re-admit on restart (the client is still owed a run)
    running      orphaned by a crash -> mark interrupted, re-admit
    interrupted  a drain or crash stopped it mid-run -> re-admit
    done/failed/cancelled   terminal: restore the record, never re-run

Re-admission increments nothing by itself; the attempt counter bumps
when a run *starts*, and :meth:`recover` fails jobs whose counter
reaches the crash-loop cap instead of re-admitting them forever.

The journal is deliberately tolerant of a frozen (crashed) writer: the
:meth:`freeze` seam makes every subsequent write a no-op, which is how
the chaos suite emulates power loss at an exact point — everything
after the freeze is invisible to the journal a restarted service opens.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import JournalError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.runtime.budget import RunBudget
from repro.runtime.retry import RetryPolicy, retry_call

logger = get_logger(__name__)

#: Every state a journal row can hold.
JOURNAL_STATES = ("queued", "running", "interrupted", "done", "failed", "cancelled")

#: States that owe the client a (re-)run after a restart.
RECOVERABLE_STATES = frozenset({"queued", "running", "interrupted"})

#: States a journal row never leaves.
TERMINAL_JOURNAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Default cap on how many times a job may *start* before recovery
#: declares it a crash loop and fails it instead of re-admitting.
DEFAULT_MAX_ATTEMPTS = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id          TEXT PRIMARY KEY,
    statement       TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    budget          TEXT,
    trace           INTEGER NOT NULL DEFAULT 0,
    idempotency_key TEXT,
    canonical_key   TEXT,
    state           TEXT NOT NULL,
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    error           TEXT,
    result          TEXT,
    attempts        INTEGER NOT NULL DEFAULT 0
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_jobs_idempotency
    ON jobs (idempotency_key) WHERE idempotency_key IS NOT NULL;
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state);
CREATE TABLE IF NOT EXISTS transitions (
    seq    INTEGER PRIMARY KEY,
    job_id TEXT NOT NULL,
    state  TEXT NOT NULL,
    at     REAL NOT NULL,
    detail TEXT
);
CREATE TABLE IF NOT EXISTS appends (
    append_id  TEXT PRIMARY KEY,
    payload    TEXT NOT NULL,
    state      TEXT NOT NULL,
    created_at REAL NOT NULL,
    applied_at REAL,
    detail     TEXT
);
"""


@dataclass(frozen=True)
class JournalRecord:
    """One journal row, decoded (budget/result back to Python values)."""

    job_id: str
    statement: str
    priority: int
    budget: Optional[RunBudget]
    trace: bool
    idempotency_key: Optional[str]
    canonical_key: Optional[str]
    state: str
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    error: Optional[str]
    result: Optional[Dict]
    attempts: int


@dataclass(frozen=True)
class JournalRecovery:
    """What :meth:`JobJournal.recover` decided for every journaled job.

    Attributes:
        terminal: jobs already in a terminal state — restore their
            records (results included) so clients can still poll them;
            never re-run.
        requeue: jobs owed a run (queued / orphaned-running /
            interrupted) — re-admit in original submission order.
        crash_looped: jobs whose attempt counter hit the cap — recovery
            marked them failed; restore as terminal.
    """

    terminal: Tuple[JournalRecord, ...]
    requeue: Tuple[JournalRecord, ...]
    crash_looped: Tuple[JournalRecord, ...]


class JobJournal:
    """A crash-safe, fsync'd record of every job lifecycle transition.

    Thread-safe: one connection, serialized behind an internal lock
    (transition writes are short single-transaction commits).  Writes
    are retried through the PR 1 backoff policy, so a concurrently
    checkpointing reader can never fail a transition permanently.

    Args:
        path: journal database file (``":memory:"`` works for tests but
            obviously survives nothing).
        synchronous: SQLite ``synchronous`` pragma — ``"FULL"``
            (default) fsyncs the WAL at every transition boundary;
            ``"NORMAL"`` trades the per-transition fsync for speed
            while still surviving application crashes.
        clock: injectable wall clock (journal timestamps are wall time —
            they must be comparable across process restarts).
        metrics: registry for the journal's instruments.
    """

    def __init__(
        self,
        path: Union[str, Path],
        synchronous: str = "FULL",
        clock: Callable[[], float] = time.time,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if synchronous.upper() not in ("FULL", "NORMAL", "OFF"):
            raise JournalError(
                f'journal synchronous must be FULL, NORMAL or OFF, got {synchronous!r}'
            )
        self.path = str(path)
        self.synchronous = synchronous.upper()
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._sleep = sleep
        self._lock = threading.RLock()
        self._frozen = False
        self._closed = False
        registry = metrics if metrics is not None else default_registry()
        self._m_transitions = registry.counter(
            "repro_journal_transitions_total",
            "Job lifecycle transitions recorded in the durable journal.",
            labelnames=("state",),
        )
        self._m_recovered = registry.counter(
            "repro_journal_recovered_total",
            "Journaled jobs handled by restart recovery, by outcome.",
            labelnames=("outcome",),
        )
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as error:
            raise JournalError(f"cannot open journal {self.path!r}: {error}") from error
        if self.path != ":memory:":
            self._connection.execute("PRAGMA journal_mode = WAL")
        self._connection.execute(f"PRAGMA synchronous = {self.synchronous}")
        self._connection.execute("PRAGMA busy_timeout = 5000")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the journal connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover — close best-effort
                pass

    def freeze(self) -> None:
        """Chaos seam: emulate the writer dying — all later writes no-op.

        A frozen journal is what a ``kill -9`` leaves on disk: every
        transition after the freeze point never happened as far as the
        journal file is concerned.  Reads keep working so tests can
        inspect the pre-crash state.
        """
        with self._lock:
            self._frozen = True

    @property
    def frozen(self) -> bool:
        with self._lock:
            return self._frozen

    def checkpoint(self) -> None:
        """Flush the WAL into the main database file (drain/exit path)."""
        with self._lock:
            if self._frozen or self._closed:
                return
            self._write(
                lambda: self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)"),
                "journal checkpoint",
            )

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transition writes (called by the scheduler at state edges)
    # ------------------------------------------------------------------

    def _write(self, operation: Callable[[], object], describe: str):
        return retry_call(
            operation,
            policy=self._retry_policy,
            sleep=self._sleep,
            describe=describe,
        )

    def _transition(self, job_id: str, state: str, detail: Optional[str]) -> None:
        self._connection.execute(
            "INSERT INTO transitions (job_id, state, at, detail) VALUES (?, ?, ?, ?)",
            (job_id, state, self._clock(), detail),
        )
        self._m_transitions.inc(state=state)

    def record_admitted(
        self,
        job_id: str,
        statement: str,
        priority: int = 0,
        budget: Optional[RunBudget] = None,
        trace: bool = False,
        idempotency_key: Optional[str] = None,
        canonical_key: Optional[str] = None,
        submitted_at: Optional[float] = None,
        attempts: int = 0,
    ) -> None:
        """Record one admitted job as ``queued`` (also used to re-admit).

        The full row is (re)written: re-admission after a crash resets
        the state to ``queued`` while *preserving* the attempt counter
        passed in, which is how the crash-loop cap survives restarts.
        """
        budget_spec = json.dumps(budget.to_dict()) if budget is not None else None
        submitted = submitted_at if submitted_at is not None else self._clock()
        with self._lock:
            if self._frozen or self._closed:
                return

            def _admit():
                self._connection.execute(
                    "INSERT OR REPLACE INTO jobs (job_id, statement, priority,"
                    " budget, trace, idempotency_key, canonical_key, state,"
                    " submitted_at, attempts)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, 'queued', ?, ?)",
                    (
                        job_id,
                        statement,
                        priority,
                        budget_spec,
                        int(trace),
                        idempotency_key,
                        canonical_key,
                        submitted,
                        attempts,
                    ),
                )
                self._transition(job_id, "queued", None)
                self._connection.commit()

            self._write(_admit, f"journal admit {job_id}")

    def record_running(self, job_id: str, started_at: Optional[float] = None) -> None:
        """Record a worker picking the job up (bumps the attempt counter).

        This is the one transition committed *without* an fsync (the
        ``synchronous`` pragma is dropped to ``NORMAL`` around the
        commit): losing a ``running`` mark to a power cut is sound —
        recovery sees ``queued`` and re-admits, exactly as if the crash
        had landed a moment earlier.  In WAL mode the frame becomes
        durable anyway at the next fsync'd commit (usually the job's own
        finish), so the loss window is one in-flight statement, while
        the saved fsync is a third of the journal's per-job cost.
        """
        started = started_at if started_at is not None else self._clock()
        with self._lock:
            if self._frozen or self._closed:
                return

            def _start():
                relax = self.synchronous == "FULL"
                if relax:
                    self._connection.execute("PRAGMA synchronous = NORMAL")
                try:
                    self._connection.execute(
                        "UPDATE jobs SET state = 'running', started_at = ?,"
                        " attempts = attempts + 1 WHERE job_id = ?",
                        (started, job_id),
                    )
                    self._transition(job_id, "running", None)
                    self._connection.commit()
                finally:
                    if relax:
                        self._connection.execute("PRAGMA synchronous = FULL")

            self._write(_start, f"journal start {job_id}")

    def record_finished(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        result: Optional[Dict] = None,
        finished_at: Optional[float] = None,
    ) -> None:
        """Record a job landing in ``done``/``failed``/``cancelled`` — or
        ``interrupted``, the drain outcome that re-admits on restart.

        The serialized result rides along (terminal results so a
        restarted service can still serve them; interrupted partials so
        the drain's sound partial work is never lost).
        """
        if state not in TERMINAL_JOURNAL_STATES and state != "interrupted":
            raise JournalError(f"not a journal finish state: {state!r}")
        finished = finished_at if finished_at is not None else self._clock()
        blob = (
            json.dumps(result, sort_keys=True, separators=(",", ":"))
            if result is not None
            else None
        )
        with self._lock:
            if self._frozen or self._closed:
                return

            def _finish():
                self._connection.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, error = ?,"
                    " result = ? WHERE job_id = ?",
                    (state, finished, error, blob, job_id),
                )
                self._transition(job_id, state, error)
                self._connection.commit()

            self._write(_finish, f"journal finish {job_id}")

    # ------------------------------------------------------------------
    # streaming appends (write-ahead intents for POST /v1/transactions)
    # ------------------------------------------------------------------

    def record_append_intent(self, append_id: str, payload: Dict) -> None:
        """Journal an append *before* it touches the store.

        The payload is the full batch (ISO timestamps, item labels,
        assigned-or-``None`` tids), so a crash between this fsync and the
        store commit leaves enough on disk to replay the append exactly.
        The store-side marker row (``applied_appends``) makes the replay
        idempotent — re-applying an already-committed intent is a no-op.
        """
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._frozen or self._closed:
                return

            def _intent():
                self._connection.execute(
                    "INSERT OR REPLACE INTO appends"
                    " (append_id, payload, state, created_at)"
                    " VALUES (?, ?, 'intent', ?)",
                    (append_id, blob, self._clock()),
                )
                self._connection.commit()

            self._write(_intent, f"journal append intent {append_id}")

    def record_append_applied(self, append_id: str, detail: Optional[str] = None) -> None:
        """Mark a journaled append as committed to the store."""
        with self._lock:
            if self._frozen or self._closed:
                return

            def _applied():
                self._connection.execute(
                    "UPDATE appends SET state = 'applied', applied_at = ?,"
                    " detail = ? WHERE append_id = ?",
                    (self._clock(), detail, append_id),
                )
                self._connection.commit()

            self._write(_applied, f"journal append applied {append_id}")

    def pending_appends(self) -> List[Tuple[str, Dict]]:
        """``(append_id, payload)`` for every intent never marked applied,
        in original submission (rowid) order — the crash-replay worklist."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT append_id, payload FROM appends"
                " WHERE state = 'intent' ORDER BY rowid"
            ).fetchall()
        return [(append_id, json.loads(blob)) for append_id, blob in rows]

    def append_states(self) -> Dict[str, int]:
        """Append-intent counts by state (status/stats section)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) FROM appends GROUP BY state"
            ).fetchall()
        return {state: count for state, count in rows}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    _COLUMNS = (
        "job_id, statement, priority, budget, trace, idempotency_key,"
        " canonical_key, state, submitted_at, started_at, finished_at,"
        " error, result, attempts"
    )

    @staticmethod
    def _decode(row: Tuple) -> JournalRecord:
        budget = RunBudget.from_dict(json.loads(row[3])) if row[3] else None
        result = json.loads(row[12]) if row[12] else None
        return JournalRecord(
            job_id=row[0],
            statement=row[1],
            priority=row[2],
            budget=budget,
            trace=bool(row[4]),
            idempotency_key=row[5],
            canonical_key=row[6],
            state=row[7],
            submitted_at=row[8],
            started_at=row[9],
            finished_at=row[10],
            error=row[11],
            result=result,
            attempts=row[13],
        )

    def get(self, job_id: str) -> Optional[JournalRecord]:
        """The journal row for one job, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                f"SELECT {self._COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._decode(row) if row is not None else None

    def lookup_idempotency_key(self, key: str) -> Optional[str]:
        """The job_id already recorded under an idempotency key, if any."""
        with self._lock:
            row = self._connection.execute(
                "SELECT job_id FROM jobs WHERE idempotency_key = ?", (key,)
            ).fetchone()
        return row[0] if row is not None else None

    def all_records(self) -> List[JournalRecord]:
        """Every journal row in original submission (rowid) order."""
        with self._lock:
            rows = self._connection.execute(
                f"SELECT {self._COLUMNS} FROM jobs ORDER BY rowid"
            ).fetchall()
        return [self._decode(row) for row in rows]

    def transitions(self, job_id: Optional[str] = None) -> List[Tuple[str, str, float]]:
        """The ``(job_id, state, at)`` transition log, oldest first."""
        with self._lock:
            if job_id is None:
                rows = self._connection.execute(
                    "SELECT job_id, state, at FROM transitions ORDER BY seq"
                ).fetchall()
            else:
                rows = self._connection.execute(
                    "SELECT job_id, state, at FROM transitions"
                    " WHERE job_id = ? ORDER BY seq",
                    (job_id,),
                ).fetchall()
        return list(rows)

    def states(self) -> Dict[str, int]:
        """Job counts by current journal state."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        return {state: count for state, count in rows}

    def stats(self) -> Dict[str, object]:
        """The ``/v1/status`` journal section."""
        with self._lock:
            transitions = self._connection.execute(
                "SELECT COUNT(*) FROM transitions"
            ).fetchone()[0]
        return {
            "enabled": True,
            "path": self.path,
            "synchronous": self.synchronous,
            "states": self.states(),
            "transitions": transitions,
            "appends": self.append_states(),
        }

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------

    def recover(self, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> JournalRecovery:
        """Replay the journal into a recovery plan (and repair orphans).

        * Terminal rows are returned for record restoration only.
        * ``running`` rows were orphaned by a crash — they are flipped
          to ``interrupted`` (journaled as such) and re-admitted.
        * ``queued`` / ``interrupted`` rows are re-admitted as-is.
        * Any recoverable row whose attempt counter has reached
          ``max_attempts`` is failed with a crash-loop error instead —
          a poison statement that kills its worker must not take the
          service down on every boot, forever.

        Re-admission order is original submission order, so a restarted
        queue drains in the sequence clients observed before the crash.
        """
        if max_attempts < 1:
            raise JournalError(f"max_attempts must be >= 1, got {max_attempts}")
        terminal: List[JournalRecord] = []
        requeue: List[JournalRecord] = []
        crash_looped: List[JournalRecord] = []
        with self._lock:
            for record in self.all_records():
                if record.state in TERMINAL_JOURNAL_STATES:
                    terminal.append(record)
                    self._m_recovered.inc(outcome="terminal")
                    continue
                if record.attempts >= max_attempts:
                    error = (
                        f"crash loop: job started {record.attempts} time(s) "
                        f"without finishing (cap {max_attempts})"
                    )
                    self.record_finished(record.job_id, "failed", error=error)
                    crash_looped.append(self.get(record.job_id) or record)
                    self._m_recovered.inc(outcome="crash_looped")
                    logger.warning("recovery failed job %s: %s", record.job_id, error)
                    continue
                if record.state == "running":
                    # Orphaned by the crash: the run died with its
                    # process.  Mark it interrupted (a journaled fact)
                    # before re-admitting.
                    self.record_finished(
                        record.job_id,
                        "interrupted",
                        error="interrupted by service crash",
                    )
                    record = self.get(record.job_id) or record
                    self._m_recovered.inc(outcome="interrupted")
                else:
                    self._m_recovered.inc(outcome="requeued")
                requeue.append(record)
        if terminal or requeue or crash_looped:
            logger.info(
                "journal recovery: %d terminal, %d re-admitted, %d crash-looped",
                len(terminal),
                len(requeue),
                len(crash_looped),
            )
        return JournalRecovery(
            terminal=tuple(terminal),
            requeue=tuple(requeue),
            crash_looped=tuple(crash_looped),
        )
