"""The disk spill tier of the content-addressed result cache.

Warm results are the most expensive state the service holds — a single
entry can represent minutes of mining — and the in-memory
:class:`~repro.service.cache.ResultCache` loses all of them on restart.
:class:`DiskCacheTier` persists each entry as its canonical JSON blob
under the *same* SHA-256 content address the memory tier uses, so:

* a restarted service re-serves its warm set from disk (promoted back
  into memory on first hit),
* byte-identity holds across tiers — the blob stored is
  :func:`canonical_json` of the result dict, and the chaos/byte-identity
  suites assert a disk round-trip re-serializes identically,
* several scale-out workers can later share one spill file (SQLite WAL
  allows concurrent readers with a single writer; every access here is
  one short transaction).

Eviction mirrors the memory tier: LRU by a persisted use sequence, plus
an optional TTL measured on the **wall clock** (the memory tier uses the
monotonic clock, which does not survive restarts — a spilled entry's age
must).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import DatabaseError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.runtime.retry import RetryPolicy, retry_call

logger = get_logger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key         TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    blob        TEXT NOT NULL,
    created_at  REAL NOT NULL,
    use_seq     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_fingerprint ON results (fingerprint);
CREATE INDEX IF NOT EXISTS idx_results_use ON results (use_seq);
"""


def canonical_json(value: Dict) -> str:
    """The deterministic serialization both cache tiers are pinned to."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class DiskCacheTier:
    """A restart-survivable SHA-256-key → JSON-blob result store.

    Thread-safe behind an internal lock; writes retried through the
    PR 1 backoff policy.  All methods are failure-isolated by the
    caller (:class:`~repro.service.cache.ResultCache` treats a broken
    spill tier as a cache miss, never as a request failure).

    Args:
        path: spill database file.
        max_entries: LRU bound (disk is cheap — default is wide).
        ttl_seconds: wall-clock expiry; ``None`` disables (content
            addressing already guarantees freshness).
        clock: injectable **wall** clock (ages must survive restarts).
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_entries: int = 4096,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.path = str(path)
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._retry_policy = retry_policy or RetryPolicy()
        self._sleep = sleep
        self._lock = threading.RLock()
        self._closed = False
        registry = metrics if metrics is not None else default_registry()
        self._m_events = registry.counter(
            "repro_cache_disk_events_total",
            "Disk cache-tier activity, by event kind.",
            labelnames=("event",),
        )
        self._m_entries = registry.gauge(
            "repro_cache_disk_entries", "Entries resident in the disk cache tier."
        )
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as error:
            raise DatabaseError(
                f"cannot open disk cache {self.path!r}: {error}"
            ) from error
        if self.path != ":memory:":
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        self._connection.execute("PRAGMA busy_timeout = 5000")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        # The LRU sequence continues from where the last process left it.
        row = self._connection.execute("SELECT MAX(use_seq) FROM results").fetchone()
        self._use_seq = int(row[0] or 0)
        self._m_entries.set(len(self))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the spill connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover — close best-effort
                pass

    def __enter__(self) -> "DiskCacheTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def _write(self, operation: Callable[[], object], describe: str):
        return retry_call(
            operation,
            policy=self._retry_policy,
            sleep=self._sleep,
            describe=describe,
        )

    # ------------------------------------------------------------------
    # the cache surface
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Dict, str]]:
        """``(value, dataset_fingerprint)`` for a key, or ``None``.

        A hit refreshes the entry's LRU position; an expired entry is
        deleted and reported as a miss.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT blob, fingerprint, created_at FROM results WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                self._m_events.inc(event="miss")
                return None
            blob, fingerprint, created_at = row
            if (
                self.ttl_seconds is not None
                and self._clock() - created_at > self.ttl_seconds
            ):
                self._write(
                    lambda: (
                        self._connection.execute(
                            "DELETE FROM results WHERE key = ?", (key,)
                        ),
                        self._connection.commit(),
                    ),
                    "disk cache expire",
                )
                self._m_events.inc(event="expiration")
                self._m_events.inc(event="miss")
                self._m_entries.set(len(self))
                return None
            self._use_seq += 1
            seq = self._use_seq
            self._write(
                lambda: (
                    self._connection.execute(
                        "UPDATE results SET use_seq = ? WHERE key = ?", (seq, key)
                    ),
                    self._connection.commit(),
                ),
                "disk cache touch",
            )
            self._m_events.inc(event="hit")
            return json.loads(blob), fingerprint

    def put(self, key: str, value: Dict, dataset_fingerprint: str) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        blob = canonical_json(value)
        with self._lock:
            self._use_seq += 1
            seq = self._use_seq
            now = self._clock()

            def _put():
                self._connection.execute(
                    "INSERT OR REPLACE INTO results"
                    " (key, fingerprint, blob, created_at, use_seq)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (key, dataset_fingerprint, blob, now, seq),
                )
                evicted = self._connection.execute(
                    "DELETE FROM results WHERE key IN ("
                    "  SELECT key FROM results ORDER BY use_seq DESC"
                    "  LIMIT -1 OFFSET ?)",
                    (self.max_entries,),
                ).rowcount
                self._connection.commit()
                return evicted

            evicted = self._write(_put, "disk cache put")
            self._m_events.inc(event="put")
            if evicted:
                self._m_events.inc(evicted, event="eviction")
            self._m_entries.set(len(self))

    def invalidate_fingerprint(self, dataset_fingerprint: str) -> int:
        """Drop exactly one dataset fingerprint's entries; returns count."""
        with self._lock:

            def _invalidate():
                removed = self._connection.execute(
                    "DELETE FROM results WHERE fingerprint = ?",
                    (dataset_fingerprint,),
                ).rowcount
                self._connection.commit()
                return removed

            removed = self._write(_invalidate, "disk cache invalidate")
            if removed:
                self._m_events.inc(removed, event="invalidation")
                self._m_entries.set(len(self))
            return removed

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:

            def _clear():
                removed = self._connection.execute("DELETE FROM results").rowcount
                self._connection.commit()
                return removed

            removed = self._write(_clear, "disk cache clear")
            if removed:
                self._m_events.inc(removed, event="invalidation")
            self._m_entries.set(0)
            return removed

    def stats(self) -> Dict[str, object]:
        """The ``/v1/status`` disk-tier section."""
        return {
            "path": self.path,
            "entries": len(self),
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl_seconds,
        }
