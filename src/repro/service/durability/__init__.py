"""``repro.service.durability`` — crash-safe state for the IQMS service.

The service tier keeps three kinds of state that must survive a process
death (``kill -9``, OOM, node reboot) for the "millions of users" north
star to hold:

* **The job queue** — every accepted job is a promise to a client.
  :class:`JobJournal` records each lifecycle transition in a SQLite-WAL
  journal, fsync'd at transition boundaries, so a restarted
  ``repro-serve`` replays queued jobs, marks orphaned running jobs
  *interrupted* and re-admits them (bounded by a crash-loop attempt
  cap), and serves terminal job records — results included — exactly as
  the pre-crash process would have.
* **Warm results** — :class:`DiskCacheTier` spills the content-addressed
  result cache to disk (SHA-256 key → canonical JSON blob, LRU + TTL
  preserved), so a restart keeps its warm set and scale-out workers can
  later share one spill file.
* **In-flight work at shutdown** — graceful drain
  (:meth:`MiningService.drain <repro.service.core.MiningService.drain>`)
  stops admission, lets running jobs reach a pass boundary, persists
  their sound partial results, journal-checkpoints and exits; the next
  boot finishes what the drain could not.

Everything here is stdlib-only, like the rest of the service tier.
"""

from repro.service.durability.journal import (
    JOURNAL_STATES,
    RECOVERABLE_STATES,
    JobJournal,
    JournalRecord,
    JournalRecovery,
)
from repro.service.durability.spill import DiskCacheTier, canonical_json

__all__ = [
    "DiskCacheTier",
    "JOURNAL_STATES",
    "JobJournal",
    "JournalRecord",
    "JournalRecovery",
    "RECOVERABLE_STATES",
    "canonical_json",
]
