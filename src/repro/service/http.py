"""TML over HTTP — the service's JSON API.

Stdlib-only (``http.server.ThreadingHTTPServer``); one
:class:`MiningHTTPServer` fronts one :class:`~repro.service.core.MiningService`.

Endpoints (all JSON):

``POST /v1/query``
    Body ``{"query": "<TML>", "async": bool, "priority": int,
    "budget": {"time": s, "candidates": n, "rules": n, "strict": bool},
    "timeout": seconds, "idempotency_key": str}``.
    Synchronous by default — the request is admitted through the
    scheduler (bounded concurrency applies) and the response carries the
    finished job record.  With ``"async": true`` the response is ``202``
    with the job id to poll.  ``idempotency_key`` makes the POST
    retry-safe: a resubmission carrying a key the service has seen
    returns the existing job instead of admitting a duplicate (the key
    is journaled, so the guarantee spans a crash-restart).

``POST /v1/transactions``
    Body ``{"transactions": [{"ts": "<ISO timestamp>", "items":
    ["a", "b"], "tid": optional int}, ...], "idempotency_key": str}``.
    Streams a batch of new transactions into the shared store without a
    full reload: the append is journaled as a write-ahead intent,
    committed idempotently, and folded into worker environments as a
    delta (cached per-unit counts survive under incremental modes).
    Returns ``{"applied", "appended", "tids", "delta_refreshed"}``.

``GET /v1/jobs/{id}``
    The job record (state, result, error, timings, cache provenance).

``DELETE /v1/jobs/{id}``
    Cancel: dequeues a queued job; trips a running job's cancellation
    token so it stops at the next pass boundary and keeps its sound
    partial result on the record.

``POST /v1/cache/invalidate``
    Body ``{"fingerprint": str}``.  Drops this process's cache entries
    recorded under one store fingerprint — the invalidation-fanout
    surface a cluster router calls on every peer after a mutation or
    append lands on one worker.

``GET /v1/traces/{id}`` / ``GET /v1/traces?min_ms=&limit=``
    Distributed tracing (PR 10): one stored trace document by id, or
    the worker's stored traces ranked slowest-first.  Tracing is
    enabled per query by ``"trace": true`` *or* by a W3C
    ``traceparent`` request header — the header additionally joins
    this worker's spans to the caller's trace id, which is how one
    trace covers router → worker → scheduler → mining passes.

``GET /v1/debug/slow``
    The slow-query flight recorder: requests past the configured
    latency threshold, captured in full (trace + plan + TML +
    resource attribution), ranked slowest-first.

``GET /v1/status``
    Queue depth, worker config, cache counters, metrics snapshot,
    store summary, and the worker identity block (id, pid, port,
    git SHA, started-at) that cluster health checks key on.

``GET /v1/metrics``
    The service's metrics registry in Prometheus text exposition
    format 0.0.4 (scrapeable; see :mod:`repro.obs.metrics`).

Error mapping: malformed requests → 400, unknown jobs → 404,
admission rejection → 503 (with ``Retry-After`` — honest when the
service is draining for shutdown, where it reflects the drain
deadline), sync timeout → 504 (with the job id, so the client can keep
polling), statement errors → 422 on the job record / response.

Every request is itself metered: ``repro_http_requests_total``
(method/route/status) and the per-route ``repro_http_request_seconds``
latency histogram.  Job paths collapse to the ``/v1/jobs/{id}`` route
label so cardinality stays bounded.
"""

from __future__ import annotations

import json
import threading
import time
from datetime import datetime
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import (
    AdmissionError,
    JobNotFoundError,
    MiningParameterError,
    ReproError,
)
from repro.obs.distributed import parse_traceparent
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.runtime.budget import RunBudget
from repro.service.core import MiningService

#: Default wait for a synchronous query before answering 504.
SYNC_TIMEOUT_SECONDS = 300.0


def budget_from_request(spec: Optional[Dict]) -> Optional[RunBudget]:
    """Build a per-request budget from the JSON ``budget`` object."""
    if not spec:
        return None
    if not isinstance(spec, dict):
        raise MiningParameterError("budget must be a JSON object")
    known = {"time", "candidates", "rules", "strict"}
    unknown = set(spec) - known
    if unknown:
        raise MiningParameterError(
            f"unknown budget field(s): {', '.join(sorted(unknown))}"
        )
    return RunBudget.from_dict(spec)


class MiningRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` API onto the owning server's service."""

    server: "MiningHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json", headers
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # Every response names the process that served it, so a cluster
        # router (and the load-gen report behind it) can attribute
        # latency to a specific worker without re-parsing bodies.
        self.send_header("X-Repro-Worker", self.server.service.worker_label)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _job_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "jobs":
            return parts[2]
        return None

    def _trace_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "traces":
            return parts[2]
        return None

    def _query_params(self) -> Dict[str, str]:
        """Flattened (last value wins) query-string parameters."""
        if "?" not in self.path:
            return {}
        return {
            key: values[-1]
            for key, values in parse_qs(self.path.split("?", 1)[1]).items()
        }

    @staticmethod
    def _job_document(job) -> Dict:
        record = job.to_dict()
        if job.started_at is not None and job.finished_at is not None:
            record["elapsed_seconds"] = job.finished_at - job.started_at
        return record

    def _route_label(self) -> str:
        """The bounded-cardinality route label for HTTP metrics."""
        path = self.path.split("?", 1)[0]
        if self._job_path_id() is not None:
            return "/v1/jobs/{id}"
        if self._trace_path_id() is not None:
            return "/v1/traces/{id}"
        if path in (
            "/v1/status",
            "/v1/metrics",
            "/v1/query",
            "/v1/transactions",
            "/v1/traces",
            "/v1/debug/slow",
            "/v1/cache/invalidate",
        ):
            return path
        return "(unknown)"

    def _instrumented(self, method: str, handler) -> None:
        """Run a route handler, metering request count and latency.

        A handler that resolved a trace id for the request (a traced
        sync query) leaves it in ``self._trace_id``; it becomes the
        latency histogram's exemplar, linking the bucket the request
        landed in to the one concrete trace that explains it.
        """
        route = self._route_label()
        self._status = 0
        self._trace_id: Optional[str] = None
        started = time.perf_counter()
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - started
            self.server.m_requests.inc(
                method=method, route=route, status=str(self._status)
            )
            exemplar = (
                {"trace_id": self._trace_id} if self._trace_id else None
            )
            self.server.m_request_seconds.observe(
                elapsed, exemplar=exemplar, route=route
            )

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._instrumented("GET", self._handle_get)

    def do_DELETE(self) -> None:  # noqa: N802
        self._instrumented("DELETE", self._handle_delete)

    def do_POST(self) -> None:  # noqa: N802
        self._instrumented("POST", self._handle_post)

    def _handle_get(self) -> None:
        path = self.path.split("?", 1)[0]
        try:
            if path == "/v1/status":
                self._send_json(200, self.server.service.status())
                return
            if path == "/v1/metrics":
                self._send_text(
                    200,
                    self.server.service.metrics.render_prometheus(),
                    PROMETHEUS_CONTENT_TYPE,
                )
                return
            trace_id = self._trace_path_id()
            if trace_id is not None:
                document = self.server.service.trace(trace_id)
                if document is None:
                    self._send_json(404, {"error": f"no such trace: {trace_id!r}"})
                else:
                    self._send_json(200, document)
                return
            if path == "/v1/traces":
                params = self._query_params()
                try:
                    min_ms = float(params.get("min_ms", 0.0))
                    limit = int(params.get("limit", 50))
                except (TypeError, ValueError) as error:
                    self._send_json(400, {"error": f"bad query parameter: {error}"})
                    return
                traces = self.server.service.list_traces(min_ms=min_ms, limit=limit)
                self._send_json(200, {"traces": traces})
                return
            if path == "/v1/debug/slow":
                self._send_json(200, self.server.service.slow_queries())
                return
            job_id = self._job_path_id()
            if job_id is not None:
                job = self.server.service.job(job_id)
                self._send_json(200, self._job_document(job))
                return
            self._send_json(404, {"error": f"unknown path {path!r}"})
        except JobNotFoundError as error:
            self._send_json(404, {"error": str(error)})
        except ReproError as error:
            self._send_json(500, {"error": str(error)})

    def _handle_delete(self) -> None:
        job_id = self._job_path_id()
        if job_id is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            job = self.server.service.cancel(job_id)
        except JobNotFoundError as error:
            self._send_json(404, {"error": str(error)})
            return
        self._send_json(200, self._job_document(job))

    def _handle_post(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/v1/transactions":
            self._handle_append()
            return
        if path == "/v1/cache/invalidate":
            self._handle_invalidate()
            return
        if path != "/v1/query":
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        try:
            payload = self._read_json()
            query = payload.get("query")
            if not isinstance(query, str) or not query.strip():
                raise ValueError('missing required string field "query"')
            priority = int(payload.get("priority", 0))
            budget = budget_from_request(payload.get("budget"))
            wants_async = bool(payload.get("async", False))
            # Tracing turns on via the body flag OR a propagated W3C
            # traceparent header; the header additionally carries the
            # upstream trace id, so this worker's spans join the
            # caller's trace instead of starting a fresh one.  (An
            # invalid header is dropped per spec — the trace restarts.)
            trace: object = bool(payload.get("trace", False))
            parent = parse_traceparent(self.headers.get("traceparent"))
            if parent is not None:
                trace = parent.child()
            timeout = float(payload.get("timeout", SYNC_TIMEOUT_SECONDS))
            idempotency_key = payload.get("idempotency_key")
            if idempotency_key is not None and (
                not isinstance(idempotency_key, str) or not idempotency_key.strip()
            ):
                raise ValueError('"idempotency_key" must be a non-empty string')
        except (ValueError, TypeError, MiningParameterError) as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            job = self.server.service.submit(
                query,
                priority=priority,
                budget=budget,
                trace=trace,
                idempotency_key=idempotency_key,
            )
        except AdmissionError as error:
            retry_after = getattr(error, "retry_after", None)
            header = str(max(1, int(round(retry_after)))) if retry_after else "1"
            self._send_json(
                503, {"error": str(error)}, headers={"Retry-After": header}
            )
            return
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
            return
        if wants_async:
            self._send_json(202, self._job_document(job))
            return
        job.wait(timeout)
        self._trace_id = job.trace_id
        document = self._job_document(job)
        if job.state == "failed":
            self._send_json(422, document)
        elif job.state in ("queued", "running"):
            self._send_json(504, document)
        else:
            self._send_json(200, document)

    def _handle_append(self) -> None:
        """``POST /v1/transactions`` — stream a batch into the store."""
        try:
            payload = self._read_json()
            entries = payload.get("transactions")
            if not isinstance(entries, list):
                raise ValueError('missing required array field "transactions"')
            idempotency_key = payload.get("idempotency_key")
            if idempotency_key is not None and (
                not isinstance(idempotency_key, str) or not idempotency_key.strip()
            ):
                raise ValueError('"idempotency_key" must be a non-empty string')
            batch = []
            for entry in entries:
                if not isinstance(entry, dict) or "ts" not in entry:
                    raise ValueError(
                        'each transaction must be an object with "ts" and "items"'
                    )
                timestamp = datetime.fromisoformat(str(entry["ts"]))
                items = entry.get("items")
                if not isinstance(items, list) or not items:
                    raise ValueError(
                        'each transaction needs a non-empty "items" array'
                    )
                tid = entry.get("tid")
                if tid is not None:
                    tid = int(tid)
                batch.append((timestamp, [str(item) for item in items], tid))
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            outcome = self.server.service.append_transactions(
                batch, idempotency_key=idempotency_key
            )
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(200, outcome)

    def _handle_invalidate(self) -> None:
        """``POST /v1/cache/invalidate`` — drop one fingerprint's entries.

        The cluster fanout surface: a peer worker mutated the shared
        store, and the router tells this process to retire its memory
        tier's entries for the superseded fingerprint.
        """
        try:
            payload = self._read_json()
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint.strip():
                raise ValueError('missing required string field "fingerprint"')
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            removed = self.server.service.invalidate_fingerprint(fingerprint)
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(200, {"invalidated": removed, "fingerprint": fingerprint})


class MiningHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MiningService`.

    ``port=0`` binds an ephemeral port (tests); the resolved address is
    ``server.server_address``.  The server does **not** own the service:
    closing the server stops accepting requests, the caller shuts the
    service down.
    """

    daemon_threads = True
    # The socketserver default backlog (5) resets connections under
    # modest client fan-in; the scheduler, not the socket, is the
    # intended admission-control point.
    request_queue_size = 128

    def __init__(
        self,
        service: MiningService,
        host: str = "127.0.0.1",
        port: int = 8765,
        verbose: bool = False,
    ):
        self.service = service
        self.verbose = verbose
        # Registered up front, not lazily per request: the families are
        # always present in the exposition, and the per-request path is
        # two lock-free attribute reads instead of a registry lookup.
        self.m_requests = service.metrics.counter(
            "repro_http_requests_total",
            "API requests served, by method, route and status.",
            labelnames=("method", "route", "status"),
        )
        self.m_request_seconds = service.metrics.histogram(
            "repro_http_request_seconds",
            "API request latency, by route.",
            labelnames=("route",),
        )
        super().__init__((host, port), MiningRequestHandler)
        # ``port=0`` resolves only at bind time; advertise the real one
        # so ``/v1/status`` identity (and cluster port files) are honest.
        service.advertised_port = int(self.server_address[1])

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    service: MiningService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> Tuple[MiningHTTPServer, threading.Thread]:
    """Start a server on a background thread; returns (server, thread)."""
    server = MiningHTTPServer(service, host=host, port=port, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread
