"""``repro.service`` — IQMS as a long-running, multi-client service.

The ICDE 2000 paper positions IQMS as an *interactive query and mining
system* shared by many analysts; this subsystem is that layer for the
reproduction: a job scheduler with admission control and per-job
budgets/cancellation, a TML-over-HTTP JSON API, and a content-addressed
result cache keyed on (canonical query, dataset fingerprint, engine
settings).  Since PR 6 the tier is also *durable*: a SQLite-WAL job
journal records every lifecycle transition (restart recovery replays
unfinished jobs without double execution), the result cache spills to
disk so warm results survive restarts, and SIGTERM triggers a graceful
drain that preserves sound partial results.  Stdlib-only.

Quickstart::

    from repro.service import MiningService, ServiceConfig, start_server

    service = MiningService("sales.db", ServiceConfig(workers=4))
    server, _ = start_server(service, port=8765)
    # POST /v1/query, GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, GET /v1/status

Command line: ``python -m repro.service --demo`` (or the installed
``repro-serve`` script).
"""

from repro.service.cache import CacheEntry, ResultCache, cache_key
from repro.service.client import ServiceClient, generate_idempotency_key
from repro.service.core import MiningService, ServiceConfig
from repro.service.durability import (
    DiskCacheTier,
    JobJournal,
    JournalRecord,
    JournalRecovery,
    canonical_json,
)
from repro.service.http import MiningHTTPServer, start_server
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    Job,
    JobScheduler,
)
from repro.service.serialize import (
    payload_to_dict,
    query_result_to_dict,
    report_to_dict,
)

__all__ = [
    "CANCELLED",
    "CacheEntry",
    "DONE",
    "DiskCacheTier",
    "FAILED",
    "INTERRUPTED",
    "Job",
    "JobJournal",
    "JobScheduler",
    "JournalRecord",
    "JournalRecovery",
    "MiningHTTPServer",
    "MiningService",
    "QUEUED",
    "RUNNING",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "cache_key",
    "canonical_json",
    "generate_idempotency_key",
    "payload_to_dict",
    "query_result_to_dict",
    "report_to_dict",
    "start_server",
]
