"""The mining service core — IQMS as a long-running, multi-client system.

:class:`MiningService` composes the pieces the paper's IQMS sketches
around one shared temporal database:

* a :class:`~repro.db.sqlite_store.SqliteStore` (the shared dataset,
  thread-safe behind its documented lock),
* one TML :class:`~repro.tml.executor.ExecutionEnvironment` **per worker
  thread** (miners and their partitioning caches are not shared across
  threads; the store underneath is),
* the content-addressed :class:`~repro.service.cache.ResultCache`,
* the :class:`~repro.service.scheduler.JobScheduler` that bounds
  concurrency and admission.

Execution semantics:

* ``MINE`` statements are cacheable: results are stored under
  ``(canonical TML, store fingerprint, engine settings)`` and identical
  queries are *single-flighted* — concurrent duplicates wait for the
  first run and then hit the cache instead of mining twice.
* Partial results (budget-stopped or cancelled runs) are **never**
  cached; a truncated answer must not impersonate a complete one.
* Mutating SQL invalidates exactly the entries recorded under the
  store's pre-mutation fingerprint; every worker environment compares
  the store fingerprint before each statement and reloads its
  store-backed datasets when it moved (the PR 1 stale-cache path,
  fanned out across threads).
* Session-level ``SET`` statements are rejected: a shared service has
  no per-connection session; budgets travel per request instead.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.transactions import TransactionDatabase
from repro.db.query import is_mutating_sql
from repro.db.sqlite_store import SqliteStore
from repro.errors import DatabaseError, TmlExecutionError
from repro.mining.engine import _incremental_from_env
from repro.obs.distributed import (
    FlightRecorder,
    ResourceProbe,
    TraceContext,
    TraceStore,
    new_trace_context,
    span_node,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.runtime.budget import CancellationToken, RunBudget
from repro.service.cache import ResultCache, cache_key
from repro.service.durability import DiskCacheTier, JobJournal
from repro.service.scheduler import DONE, Job, JobScheduler
from repro.service.serialize import payload_to_dict
from repro.tml.ast import (
    MineItemsetsStatement,
    MinePeriodicitiesStatement,
    MinePeriodsStatement,
    MineRulesStatement,
    MineTrendsStatement,
    SetBudgetStatement,
    SetEngineStatement,
    SetIncrementalStatement,
    SetTraceStatement,
    SetWorkersStatement,
    SqlStatement,
    Statement,
)
from repro.tml.canonical import canonicalize_statement
from repro.tml.executor import ExecutionEnvironment, TmlExecutor
from repro.tml.parser import parse_statement

logger = get_logger(__name__)

#: Statement types whose results are content-addressed in the cache.
CACHEABLE_STATEMENTS = (
    MinePeriodsStatement,
    MinePeriodicitiesStatement,
    MineRulesStatement,
    MineItemsetsStatement,
    MineTrendsStatement,
)

#: Session-level statements that make no sense against a shared service.
SESSION_ONLY_STATEMENTS = (
    SetBudgetStatement,
    SetEngineStatement,
    SetIncrementalStatement,
    SetTraceStatement,
    SetWorkersStatement,
)

@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    """The short git SHA of the serving code (``"unknown"`` off-checkout).

    Part of the worker identity block in ``GET /v1/status``: a cluster
    router's health checks — and the load-generator report — attribute
    latency to a specific worker *build*, so a mid-rollout fleet mixing
    two revisions is visible instead of a mystery.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return sha or "unknown"


#: How many append fingerprint transitions the in-memory delta chain
#: retains.  A worker whose last-seen fingerprint fell off the chain
#: simply falls back to a full dataset reload — correctness never
#: depends on the bound.
APPEND_LOG_LIMIT = 64


@dataclass
class ServiceConfig:
    """Tunables for one :class:`MiningService`.

    Attributes:
        workers: scheduler worker threads (concurrent statements).
        max_queue_depth: queued-job bound (admission control).
        cache_entries / cache_ttl_seconds: result-cache sizing.
        engine: counting backend for every run (``"auto"`` = planner).
        mining_workers: PR 3 process shards *per mining run*
            (``None`` = planner-sized per query, ``1`` = serial).
        default_budget: budget applied when a request carries none.
        history_limit: finished jobs retained for polling.
        granule_hook: per-granule observer threaded into every run's
            monitor — a test/chaos seam, ``None`` in production.
        metrics: registry every service component instruments through
            (the process-global default registry when ``None``).
        journal_path: durable job-journal file; ``None`` disables the
            journal (jobs die with the process, the PR 4 behaviour).
        journal_synchronous: the journal's SQLite ``synchronous`` pragma
            (``"FULL"`` fsyncs every transition; see
            :class:`~repro.service.durability.JobJournal`).
        disk_cache_path: result-cache spill file; ``None`` disables the
            disk tier (warm results die with the process).
        disk_cache_entries: LRU bound of the spill tier.
        drain_deadline_seconds: how long :meth:`MiningService.drain`
            lets running jobs finish before interrupting them.
        recovery_max_attempts: crash-loop cap — a journaled job that
            *started* this many times without finishing is failed at
            recovery instead of re-admitted.
        incremental: incremental-maintenance mode for every worker
            environment (``"off"``/``"on"``/``"auto"``); ``None`` defers
            to the ``REPRO_INCREMENTAL`` environment variable.
        worker_id: stable identity of this process in a cluster fleet
            (e.g. ``"w0"``); surfaces in ``GET /v1/status`` and the
            ``X-Repro-Worker`` response header.  ``None`` (standalone)
            falls back to ``pid:<os pid>``.
        trace_store_entries: finished traces retained in memory for
            ``GET /v1/traces/{id}``.
        trace_spill_path: optional SQLite spill for the trace store so
            traces survive a restart; ``None`` (the default) keeps
            traces in memory only.
        slow_threshold_seconds: requests slower than this are captured
            in full by the flight recorder (``GET /v1/debug/slow``).
        slow_top_k: flight-recorder capacity (slowest-K retained).
    """

    workers: int = 2
    max_queue_depth: int = 64
    cache_entries: int = 256
    cache_ttl_seconds: Optional[float] = None
    engine: str = "auto"
    mining_workers: Optional[int] = None
    default_budget: Optional[RunBudget] = None
    history_limit: int = 1024
    granule_hook: Optional[Callable[[int], None]] = None
    metrics: Optional[MetricsRegistry] = None
    journal_path: Optional[Union[str, Path]] = None
    journal_synchronous: str = "FULL"
    disk_cache_path: Optional[Union[str, Path]] = None
    disk_cache_entries: int = 4096
    drain_deadline_seconds: float = 10.0
    recovery_max_attempts: int = 3
    incremental: Optional[str] = None
    worker_id: Optional[str] = None
    trace_store_entries: int = 512
    trace_spill_path: Optional[Union[str, Path]] = None
    slow_threshold_seconds: float = 1.0
    slow_top_k: int = 32


class MiningService:
    """A shared, schedulable, cached TML execution engine.

    >>> service = MiningService()                        # doctest: +SKIP
    >>> service.load_database(database)                  # doctest: +SKIP
    >>> job = service.submit("MINE PERIODS FROM transactions ...;")
    ...                                                  # doctest: +SKIP
    >>> job.wait(); job.result                           # doctest: +SKIP
    """

    def __init__(
        self,
        store: Union[SqliteStore, str, Path, None] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.metrics = (
            self.config.metrics
            if self.config.metrics is not None
            else default_registry()
        )
        if isinstance(store, SqliteStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = SqliteStore(store if store is not None else ":memory:")
            self._owns_store = True
        self.spill: Optional[DiskCacheTier] = None
        if self.config.disk_cache_path is not None:
            self.spill = DiskCacheTier(
                self.config.disk_cache_path,
                max_entries=self.config.disk_cache_entries,
                ttl_seconds=self.config.cache_ttl_seconds,
                metrics=self.metrics,
            )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
            metrics=self.metrics,
            spill=self.spill,
        )
        self.journal: Optional[JobJournal] = None
        if self.config.journal_path is not None:
            self.journal = JobJournal(
                self.config.journal_path,
                synchronous=self.config.journal_synchronous,
                metrics=self.metrics,
            )
        self.traces = TraceStore(
            capacity=self.config.trace_store_entries,
            spill_path=(
                str(self.config.trace_spill_path)
                if self.config.trace_spill_path is not None
                else None
            ),
        )
        self.flight_recorder = FlightRecorder(
            threshold_seconds=self.config.slow_threshold_seconds,
            top_k=self.config.slow_top_k,
        )
        self.scheduler = JobScheduler(
            self._execute_job,
            workers=self.config.workers,
            max_queue_depth=self.config.max_queue_depth,
            history_limit=self.config.history_limit,
            metrics=self.metrics,
            journal=self.journal,
        )
        # Runs on the worker thread before the job's done event is set,
        # so synchronous waiters always see attribution and trace id.
        self.scheduler.on_finished = self._on_job_finished
        self.recovered: Dict[str, int] = {}
        self._m_single_flight_waits = self.metrics.counter(
            "repro_cache_single_flight_waits_total",
            "Queries that waited on an identical in-flight run.",
        )
        self._m_traces = self.metrics.counter(
            "repro_traces_stored_total",
            "Distributed trace documents stored by this worker.",
        )
        self._m_slow = self.metrics.counter(
            "repro_slow_captures_total",
            "Requests captured by the slow-query flight recorder.",
        )
        self._m_appends = self.metrics.counter(
            "repro_service_appends_total",
            "Streaming transaction-append batches, by outcome.",
            labelnames=("outcome",),
        )
        self.started_at = time.time()
        # Set by the HTTP server once its socket is bound (port 0 binds
        # ephemerally); None when the service runs without an API.
        self.advertised_port: Optional[int] = None
        # old fingerprint -> (new fingerprint, applied batch): the delta
        # chain worker environments walk instead of reloading wholesale.
        self._append_log: "OrderedDict[str, Tuple[str, List[Tuple]]]" = OrderedDict()
        self._append_lock = threading.Lock()
        self._tls = threading.local()
        self._environments: List[ExecutionEnvironment] = []
        self._environments_lock = threading.Lock()
        self._inflight: Dict[str, List] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False
        # Recovery must run last: re-admitted jobs start the worker
        # pool, and workers touch every field initialised above.
        if self.journal is not None:
            self._recover_from_journal()

    # ------------------------------------------------------------------
    # data management
    # ------------------------------------------------------------------

    def load_database(self, database: TransactionDatabase, replace: bool = True) -> int:
        """Persist a dataset into the shared store (source ``transactions``).

        Counts as a mutation: caches are invalidated and every worker
        environment reloads before its next statement.
        """
        old_fingerprint = self.store.fingerprint()
        if replace:
            self.store.clear()
        written = self.store.save_database(database)
        self._note_mutation(old_fingerprint)
        return written

    def load_demo(self, n_transactions: int = 4000, seed: int = 7) -> int:
        """Load the bundled synthetic seasonal demo dataset."""
        from repro.datagen import seasonal_dataset

        dataset = seasonal_dataset(n_transactions=n_transactions, seed=seed)
        return self.load_database(dataset.database)

    @staticmethod
    def _normalize_append(
        transactions: Sequence,
    ) -> List[Tuple[datetime, List[str], Optional[int]]]:
        """Validate and normalize a streamed batch to (ts, items, tid)."""
        batch: List[Tuple[datetime, List[str], Optional[int]]] = []
        for entry in transactions:
            timestamp, items = entry[0], entry[1]
            tid = entry[2] if len(entry) > 2 else None
            if not isinstance(timestamp, datetime):
                raise DatabaseError(
                    f"append timestamps must be datetimes, got {timestamp!r}"
                )
            batch.append((timestamp, list(items), tid))
        return batch

    def append_transactions(
        self,
        transactions: Sequence,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Stream a batch of new transactions into the shared store.

        The append-only counterpart of :meth:`load_database`: rows are
        journaled as a write-ahead intent, committed to the store under
        an idempotent append id, and the fingerprint transition is
        recorded on the delta chain so worker environments *fold* the
        new rows into their encoded layouts (and, with incremental
        maintenance on, their per-unit count caches) instead of
        reloading from scratch.  Cache entries for the superseded
        fingerprint are retired as delta refreshes.

        ``transactions`` holds ``(timestamp, items)`` or
        ``(timestamp, items, tid)`` tuples; ``idempotency_key`` makes
        the call retry-safe — a repeated key is acknowledged without
        applying the rows twice (the guarantee spans a crash-restart,
        because the store's marker row commits atomically with the
        data).
        """
        if self._closed:
            raise DatabaseError("service is closed")
        batch = self._normalize_append(transactions)
        append_id = (
            idempotency_key if idempotency_key is not None else uuid.uuid4().hex
        )
        if self.journal is not None:
            self.journal.record_append_intent(
                append_id,
                {
                    "transactions": [
                        [ts.isoformat(), list(items), tid]
                        for ts, items, tid in batch
                    ]
                },
            )
        old_fingerprint = self.store.fingerprint()
        outcome = self.store.append_batch(batch, append_id=append_id)
        if not outcome.applied:
            # The idempotency key already committed once; acknowledge
            # without re-applying (and settle the journal intent).
            self._m_appends.inc(outcome="duplicate")
            if self.journal is not None:
                self.journal.record_append_applied(append_id, detail="duplicate")
            return {
                "applied": False,
                "appended": 0,
                "tids": [],
                "delta_refreshed": 0,
                "old_fingerprint": old_fingerprint,
                "new_fingerprint": old_fingerprint,
            }
        new_fingerprint = self.store.fingerprint()
        refreshed = self.cache.note_append(old_fingerprint, new_fingerprint)
        applied = [
            (ts, items, tid)
            for (ts, items, _), tid in zip(batch, outcome.tids)
        ]
        self._record_append(old_fingerprint, new_fingerprint, applied)
        self._m_appends.inc(outcome="applied")
        if self.journal is not None:
            self.journal.record_append_applied(
                append_id,
                detail=json.dumps(
                    {
                        "old_fingerprint": old_fingerprint,
                        "new_fingerprint": new_fingerprint,
                        "delta_refreshed": refreshed,
                    },
                    sort_keys=True,
                ),
            )
        # The fingerprints ride on the outcome so a cluster router can
        # fan exact invalidation of the superseded content out to the
        # rest of the fleet (each peer's *memory* cache tier still holds
        # entries keyed under the old fingerprint — never served, since
        # keys embed the fingerprint, but dead weight until evicted).
        return {
            "applied": True,
            "appended": outcome.count,
            "tids": list(outcome.tids),
            "delta_refreshed": refreshed,
            "old_fingerprint": old_fingerprint,
            "new_fingerprint": new_fingerprint,
        }

    def _record_append(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        batch: List[Tuple[datetime, List[str], Optional[int]]],
    ) -> None:
        """Push one fingerprint transition onto the bounded delta chain."""
        if old_fingerprint == new_fingerprint:
            return
        with self._append_lock:
            self._append_log[old_fingerprint] = (new_fingerprint, batch)
            self._append_log.move_to_end(old_fingerprint)
            while len(self._append_log) > APPEND_LOG_LIMIT:
                self._append_log.popitem(last=False)

    def _append_chain(
        self, start: Optional[str], target: str
    ) -> Optional[List[List[Tuple]]]:
        """The append batches linking ``start`` to ``target``, or ``None``.

        ``None`` means the chain is broken (a non-append mutation, or the
        transition aged off the bounded log) and the caller must fall
        back to a full reload.
        """
        if start is None:
            return None
        with self._append_lock:
            log = dict(self._append_log)
        chain: List[List[Tuple]] = []
        fingerprint = start
        for _ in range(len(log) + 1):
            if fingerprint == target:
                return chain
            entry = log.get(fingerprint)
            if entry is None:
                return None
            fingerprint = entry[0]
            chain.append(entry[1])
        return None

    # ------------------------------------------------------------------
    # job API (what the HTTP layer drives)
    # ------------------------------------------------------------------

    def _recover_from_journal(self) -> None:
        """Replay the journal into the scheduler (restart recovery).

        Terminal and crash-looped jobs come back as pollable records;
        queued/orphaned/interrupted jobs are re-admitted in original
        submission order and the worker pool starts immediately —
        recovered work must run even if no new request ever arrives.

        Pending append intents replay *first*: a re-admitted job must
        mine the data its client had already streamed in before the
        crash.  Replay goes through the store's idempotent
        :meth:`~repro.db.sqlite_store.SqliteStore.append_batch`, so an
        intent whose store commit survived the crash dedupes instead of
        double-applying.
        """
        appends_replayed = self._replay_pending_appends()
        plan = self.journal.recover(max_attempts=self.config.recovery_max_attempts)
        for record in plan.terminal:
            self.scheduler.restore_terminal(record)
        for record in plan.crash_looped:
            self.scheduler.restore_terminal(record)
        for record in plan.requeue:
            self.scheduler.resubmit(record)
        self.recovered = {
            "terminal": len(plan.terminal),
            "requeued": len(plan.requeue),
            "crash_looped": len(plan.crash_looped),
            "appends_replayed": appends_replayed,
        }
        if plan.requeue:
            self.scheduler.start()

    def _replay_pending_appends(self) -> int:
        """Re-apply journaled append intents the crash left unsettled.

        Returns how many pending intents actually re-inserted rows (an
        intent whose store commit already landed dedupes to a no-op but
        is still settled as applied in the journal).
        """
        replayed = 0
        for append_id, payload in self.journal.pending_appends():
            try:
                batch = [
                    (datetime.fromisoformat(ts), list(items), tid)
                    for ts, items, tid in payload.get("transactions", [])
                ]
                old_fingerprint = self.store.fingerprint()
                outcome = self.store.append_batch(batch, append_id=append_id)
            except (DatabaseError, TypeError, ValueError) as error:
                logger.error("append replay %s failed: %s", append_id, error)
                self._m_appends.inc(outcome="replay_failed")
                continue
            if outcome.applied and outcome.count:
                self.cache.note_append(old_fingerprint, self.store.fingerprint())
                replayed += 1
                self._m_appends.inc(outcome="replayed")
                detail = "replayed after crash"
            else:
                self._m_appends.inc(outcome="duplicate")
                detail = "store commit survived the crash; deduplicated"
            self.journal.record_append_applied(append_id, detail=detail)
            logger.info("append intent %s: %s", append_id, detail)
        return replayed

    def submit(
        self,
        statement: str,
        priority: int = 0,
        budget: Optional[RunBudget] = None,
        trace: object = False,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Queue one statement; returns its :class:`Job` immediately.

        ``trace`` truthy runs the statement under span tracing: the
        result carries a ``trace`` section, the run bypasses the result
        cache (traced payloads embed run-specific timings), and the
        finished job's full span tree lands in the worker's
        :class:`~repro.obs.distributed.TraceStore` under ``trace_id``.
        Pass a :class:`~repro.obs.distributed.TraceContext` (instead of
        ``True``) to join a distributed trace propagated from an
        upstream hop — the stored document keeps the propagated trace
        id and records the upstream span as its parent.

        ``idempotency_key`` makes the submission retry-safe: a second
        submission carrying the same key returns the *existing* job
        instead of admitting a duplicate (the key is also journaled, so
        the guarantee spans a crash-restart).
        """
        return self.scheduler.submit(
            statement,
            priority=priority,
            budget=budget,
            trace=trace,
            idempotency_key=idempotency_key,
            canonical_key=self._canonical_key(statement),
        )

    @staticmethod
    def _canonical_key(statement: str) -> Optional[str]:
        """Best-effort canonical TML for the journal row (audit field).

        Unparseable statements still get admitted (the worker reports
        the parse error as the job failure), so this must never raise.
        """
        try:
            return canonicalize_statement(parse_statement(statement))
        except Exception:  # noqa: BLE001 — journal metadata only
            return None

    def run_sync(
        self,
        statement: str,
        priority: int = 0,
        budget: Optional[RunBudget] = None,
        timeout: Optional[float] = 300.0,
        trace: bool = False,
    ) -> Job:
        """Queue one statement and wait for its terminal state."""
        job = self.submit(statement, priority=priority, budget=budget, trace=trace)
        job.wait(timeout)
        return job

    def job(self, job_id: str) -> Job:
        return self.scheduler.get(job_id)

    def cancel(self, job_id: str) -> Job:
        return self.scheduler.cancel(job_id)

    # ------------------------------------------------------------------
    # traces / slow queries (what GET /v1/traces* and /v1/debug/slow serve)
    # ------------------------------------------------------------------

    def trace(self, trace_id: str) -> Optional[Dict]:
        """The stored trace document for ``trace_id``, or ``None``."""
        return self.traces.get(trace_id)

    def list_traces(self, min_ms: float = 0.0, limit: int = 50) -> List[Dict]:
        """Stored traces at least ``min_ms`` long, slowest first."""
        return self.traces.query(min_ms=min_ms, limit=limit)

    def slow_queries(self) -> Dict[str, object]:
        """The flight recorder's document (``GET /v1/debug/slow``)."""
        return {
            "worker": self.worker_label,
            "stats": self.flight_recorder.stats(),
            "entries": self.flight_recorder.snapshot(),
        }

    @property
    def worker_label(self) -> str:
        """The short identity stamped on responses (``X-Repro-Worker``)."""
        if self.config.worker_id is not None:
            return self.config.worker_id
        return f"pid:{os.getpid()}"

    def identity(self) -> Dict[str, object]:
        """Who is serving: the ``worker`` block of ``GET /v1/status``.

        A cluster router's health checks key on this, and the load-gen
        report uses it to attribute latency to a specific process.
        """
        return {
            "id": self.worker_label,
            "pid": os.getpid(),
            "port": self.advertised_port,
            "git_sha": _git_sha(),
            "started_at": datetime.fromtimestamp(self.started_at)
            .astimezone()
            .isoformat(),
        }

    def status(self) -> Dict:
        """The ``GET /v1/status`` document."""
        return {
            "service": "repro-iqms",
            "worker": self.identity(),
            "uptime_seconds": time.time() - self.started_at,
            "scheduler": self.scheduler.stats(),
            "journal": (
                self.journal.stats()
                if self.journal is not None
                else {"enabled": False}
            ),
            "recovered": self.recovered,
            "tracing": {
                "traces_held": len(self.traces),
                "trace_spill": (
                    str(self.config.trace_spill_path)
                    if self.config.trace_spill_path is not None
                    else None
                ),
                "slow_queries": self.flight_recorder.stats(),
            },
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "store": {
                "path": self.store.path,
                "transactions": self.store.count_transactions(),
                # The router's rendezvous routing keys on this, and a
                # fleet whose workers disagree on it is mid-append.
                "fingerprint": self.store.fingerprint(),
            },
            "config": {
                "workers": self.config.workers,
                "max_queue_depth": self.config.max_queue_depth,
                "engine": self.config.engine,
                "mining_workers": (
                    self.config.mining_workers
                    if self.config.mining_workers is not None
                    else "auto"
                ),
                "cache_entries": self.config.cache_entries,
                "cache_ttl_seconds": self.config.cache_ttl_seconds,
                "default_budget": (
                    self.config.default_budget.describe()
                    if self.config.default_budget is not None
                    else "off"
                ),
                "incremental": self._effective_incremental(),
            },
        }

    def drain(self, deadline_seconds: Optional[float] = None) -> Dict[str, int]:
        """Graceful shutdown: land running work, checkpoint, close.

        The SIGTERM path of ``repro-serve``.  Running jobs get the
        drain deadline to finish; stragglers are interrupted at a pass
        boundary and journaled with their sound partial results; queued
        jobs stay journaled ``queued``.  The journal WAL is
        checkpointed so the next boot reads one clean file.  Returns
        the scheduler's drain summary.
        """
        deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.drain_deadline_seconds
        )
        summary = self.scheduler.drain(deadline)
        if self.journal is not None:
            try:
                self.journal.checkpoint()
            except Exception as error:  # noqa: BLE001 — exit path, log only
                logger.error("journal checkpoint at drain failed: %s", error)
        self.close()
        return summary

    def simulate_crash(self) -> None:
        """Chaos seam: emulate ``kill -9`` without leaving the process.

        The journal is frozen (writes after this point never happened,
        exactly what an abrupt power loss leaves on disk) and the
        scheduler abandons its workers without recording anything —
        running jobs stay orphaned as ``running`` journal rows.  The
        store/journal/spill *files* are untouched: a new
        :class:`MiningService` opened on the same paths is the
        "restarted process" the chaos suite asserts against.
        """
        if self.journal is not None:
            self.journal.freeze()
        self.scheduler.abandon()
        self._closed = True

    def close(self) -> None:
        """Shut down: drain the scheduler, release miners, close the store."""
        if self._closed:
            self._close_durable()
            return
        self._closed = True
        self.scheduler.close()
        with self._environments_lock:
            for environment in self._environments:
                environment.close()
            self._environments.clear()
        if self._owns_store:
            self.store.close()
        self.traces.close()
        self._close_durable()

    def _close_durable(self) -> None:
        if self.journal is not None:
            self.journal.close()
        if self.spill is not None:
            self.spill.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # statement execution (runs on scheduler worker threads)
    # ------------------------------------------------------------------

    def _execute_job(
        self,
        statement_text: str,
        token: CancellationToken,
        budget: Optional[RunBudget],
        trace: object = False,
    ) -> Tuple[Dict, bool, Optional[Dict]]:
        """The scheduler callback: execute one statement, with attribution.

        Wraps :meth:`_execute_statement` in a
        :class:`~repro.obs.distributed.ResourceProbe` and stashes the
        measured attribution thread-locally — :meth:`_on_job_finished`
        (called by the scheduler on this same worker thread, before
        waiters wake) picks it up and attaches it to the job record and
        the root span.  The stash survives the error path too: failed
        jobs still carry their resource cost.
        """
        probe = ResourceProbe()
        try:
            return self._execute_statement(statement_text, token, budget, trace)
        finally:
            self._tls.attribution = probe.finish()

    def _execute_statement(
        self,
        statement_text: str,
        token: CancellationToken,
        budget: Optional[RunBudget],
        trace: object = False,
    ) -> Tuple[Dict, bool, Optional[Dict]]:
        """Execute one statement, maybe cached.

        Returns ``(result, cached, plan)`` — the plan is the planner's
        decision dict for MINE runs (``None`` on cache hits: no run
        happened, so there is no plan to report) and lands on the job
        record rather than in the cacheable payload, keeping cached
        results byte-identical across runs while calibration drifts.
        """
        statement = parse_statement(statement_text)
        if isinstance(statement, SESSION_ONLY_STATEMENTS):
            raise TmlExecutionError(
                "session-level SET statements are not supported over the "
                "service API; pass a per-request budget instead"
            )
        canonical = canonicalize_statement(statement)
        # Traced runs bypass the cache in both directions: their payload
        # embeds run-specific timings (never bit-stable), and serving a
        # cached untraced result would silently drop the trace.
        if isinstance(statement, CACHEABLE_STATEMENTS) and not trace:
            return self._execute_cacheable(statement, canonical, token, budget)
        mutating = isinstance(statement, SqlStatement) and is_mutating_sql(
            statement.sql
        )
        old_fingerprint = self.store.fingerprint() if mutating else None
        result, plan = self._run_statement(statement, token, budget, trace=trace)
        if mutating:
            result["invalidated_entries"] = self._note_mutation(old_fingerprint)
            # Mutating results are never cached, so the fingerprint can
            # travel on them; the cluster router uses it to fan exact
            # invalidation out to the other workers' memory tiers.
            result["old_fingerprint"] = old_fingerprint
        return result, False, plan

    def _execute_cacheable(
        self,
        statement: Statement,
        canonical: str,
        token: CancellationToken,
        budget: Optional[RunBudget],
    ) -> Tuple[Dict, bool, Optional[Dict]]:
        fingerprint = self.store.fingerprint()
        key = cache_key(canonical, fingerprint, self._settings(budget))
        # Single flight per key: concurrent identical queries block here
        # while the first one mines, then read its cached result.
        with self._single_flight(key) as waited:
            if waited:
                self._m_single_flight_waits.inc()
            cached = self.cache.get(key)
            if cached is not None:
                return cached, True, None
            result, plan = self._run_statement(
                statement, token, budget, fingerprint=fingerprint
            )
            # Guard against a mutation racing this run: a mutating
            # statement on another worker may commit between the
            # fingerprint read above and the environment's dataset
            # reload, in which case the run mined post-mutation data
            # and must not be cached under the pre-mutation key (its
            # invalidation hook already fired and would never purge
            # the poisoned entry).
            if not result.get("partial") and self.store.fingerprint() == fingerprint:
                self.cache.put(key, result, fingerprint)
            return result, False, plan

    def _run_statement(
        self,
        statement: Statement,
        token: CancellationToken,
        budget: Optional[RunBudget],
        fingerprint: Optional[str] = None,
        trace: object = False,
    ) -> Tuple[Dict, Optional[Dict]]:
        """Run one statement; returns (serialized payload, plan dict).

        The plan travels *next to* the payload, never inside it: the
        payload may be cached and must stay byte-identical across runs,
        while the plan's cost estimates move as calibration accumulates.
        """
        environment, executor = self._environment()
        self._refresh_environment(environment, fingerprint)
        effective = budget if budget is not None else self.config.default_budget
        environment.budget = effective
        environment.cancel_token = token
        # The environment only knows tracing on/off; a distributed
        # TraceContext still means "on" here (its ids are attached at
        # trace-assembly time, not inside the miner).
        trace_on = bool(trace)
        if environment.trace != trace_on:
            environment.set_trace(trace_on)
        # Bound DB retry backoff by the run's own deadline: a budgeted
        # run must never sleep past the point where its budget would
        # have stopped it anyway (thread-local — budgets are per job,
        # the store is shared).
        if effective is not None and effective.max_seconds is not None:
            self.store.set_retry_deadline(time.monotonic() + effective.max_seconds)
        try:
            execution = executor.execute_statement(statement)
        finally:
            self.store.set_retry_deadline(None)
        catalog = None
        source = getattr(statement, "source", None)
        if source is not None:
            catalog = environment.resolve(source).catalog
        plan = getattr(execution.payload, "plan", None)
        return payload_to_dict(execution.payload, catalog), plan

    def _on_job_finished(self, job: Job, state: str) -> None:
        """Scheduler hook: attach attribution + assemble the trace.

        Runs on the worker thread that executed the job, with the
        scheduler lock held, *before* the terminal transition wakes
        waiters — so the rendered job record (and, for traced jobs, the
        stored trace document) is complete the moment ``job.wait()``
        returns.  The attribution was stashed thread-locally by
        :meth:`_execute_job` on this same thread.
        """
        attribution = getattr(self._tls, "attribution", None)
        self._tls.attribution = None
        wait_seconds = 0.0
        if job.started_at is not None:
            wait_seconds = max(0.0, job.started_at - job.submitted_at)
        elapsed = float((attribution or {}).get("elapsed_seconds", 0.0))
        resources: Dict[str, object] = dict(attribution or {})
        resources["wait_seconds"] = round(wait_seconds, 6)
        # The cache tier outcome: traced runs bypass by design (PR 5
        # invariant), cache hits never ran, everything else mined.
        resources["cache"] = (
            "hit" if job.cached else ("bypassed" if job.trace else "miss")
        )
        if job.plan is not None:
            # Planner estimate-vs-actual is the calibration-loop truth
            # the planner's aggregate counters cannot give per query.
            resources["plan_backend"] = job.plan.get("backend")
            resources["plan_workers"] = job.plan.get("workers")
            resources["shards"] = job.plan.get("n_shards")
            resources["planner_est_seconds"] = job.plan.get("est_seconds")
            resources["actual_seconds"] = round(elapsed, 6)
        job.resources = resources

        trace_id: Optional[str] = None
        trace_document: Optional[Dict] = None
        if job.trace:
            context = (
                job.trace
                if isinstance(job.trace, TraceContext)
                else new_trace_context()
            )
            trace_id = context.trace_id
            job.trace_id = trace_id
            wait_ms = wait_seconds * 1000.0
            exec_ms = elapsed * 1000.0
            miner_trace = (
                job.result.get("trace") if isinstance(job.result, dict) else None
            )
            execute_children = list((miner_trace or {}).get("spans") or [])
            root_attrs: Dict[str, object] = {
                "job_id": job.job_id,
                "worker": self.worker_label,
                "statement": job.statement,
                "state": state,
            }
            root_attrs.update(resources)
            root = span_node(
                "worker.job",
                0.0,
                wait_ms + exec_ms,
                attrs=root_attrs,
                children=[
                    span_node("scheduler.wait", 0.0, wait_ms),
                    # The miner's own span tree (mine → passes) grafts
                    # under the execute span; its start_ms offsets stay
                    # relative to the miner's clock origin — durations
                    # are the cross-process meaningful quantity.
                    span_node(
                        "execute", wait_ms, exec_ms, children=execute_children
                    ),
                ],
                status="ok" if state == DONE else state,
            )
            trace_document = {
                "trace_id": trace_id,
                "span_id": context.span_id,
                "worker": self.worker_label,
                "job_id": job.job_id,
                "duration_ms": round((wait_seconds + elapsed) * 1000.0, 3),
                "spans": [root],
            }
            self.traces.put(trace_id, trace_document)
            self._m_traces.inc()

        entry: Dict[str, object] = {
            "job_id": job.job_id,
            "statement": job.statement,
            "state": state,
            "worker": self.worker_label,
            "resources": resources,
        }
        if job.plan is not None:
            entry["plan"] = job.plan
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if trace_document is not None:
            entry["trace"] = trace_document
        if self.flight_recorder.consider(wait_seconds + elapsed, entry):
            self._m_slow.inc()

    # ------------------------------------------------------------------
    # worker environments / invalidation
    # ------------------------------------------------------------------

    def _environment(self) -> Tuple[ExecutionEnvironment, TmlExecutor]:
        """This worker thread's environment (created on first use)."""
        environment = getattr(self._tls, "environment", None)
        if environment is None:
            environment = ExecutionEnvironment(store=self.store, metrics=self.metrics)
            environment.set_engine(self.config.engine)
            environment.set_workers(self.config.mining_workers)
            if self.config.incremental is not None:
                environment.set_incremental(self.config.incremental)
            environment.granule_hook = self.config.granule_hook
            self._tls.environment = environment
            self._tls.executor = TmlExecutor(environment)
            with self._environments_lock:
                self._environments.append(environment)
        return environment, self._tls.executor

    def _refresh_environment(
        self,
        environment: ExecutionEnvironment,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Reload store-backed datasets if the store content moved.

        ``fingerprint`` lets a cacheable run pin the exact content its
        cache key was computed from, so the mined snapshot and the key
        can never disagree.
        """
        current = fingerprint if fingerprint is not None else self.store.fingerprint()
        known = getattr(self._tls, "fingerprint", None)
        if known == current:
            return
        chain = self._append_chain(known, current)
        if chain is not None:
            # Every transition between the last-seen content and the
            # current one was an append: fold the batches in, in order,
            # instead of reloading — cached miners keep their encoded
            # layouts (and per-unit counts under incremental modes).
            for batch in chain:
                environment.apply_store_append(batch)
        else:
            environment.note_store_mutation()
        self._tls.fingerprint = current

    def _note_mutation(self, old_fingerprint: Optional[str]) -> int:
        """Invalidate exactly the pre-mutation content's cache entries."""
        if old_fingerprint is None:
            return 0
        return self.cache.invalidate_fingerprint(old_fingerprint)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop one store fingerprint's cache entries (both tiers).

        The ``POST /v1/cache/invalidate`` surface: when a peer worker
        mutates the shared store, the cluster router fans the superseded
        fingerprint out here so this process's memory tier drops its
        stale (never-servable, key-mismatched) entries immediately
        instead of bleeding them out through LRU.  Idempotent — the
        shared disk tier was already purged by the mutating worker, so
        the second pass there removes nothing.
        """
        return self.cache.invalidate_fingerprint(fingerprint)

    def _settings(self, budget: Optional[RunBudget]) -> Dict[str, object]:
        """The result-relevant settings mixed into every cache key."""
        effective = budget if budget is not None else self.config.default_budget
        return {
            "engine": self.config.engine,
            "workers": self.config.mining_workers,
            "budget": effective.describe() if effective is not None else "off",
            "incremental": self._effective_incremental(),
        }

    def _effective_incremental(self) -> str:
        """The incremental mode every worker environment runs under."""
        if self.config.incremental is not None:
            return self.config.incremental
        return _incremental_from_env()

    @contextmanager
    def _single_flight(self, key: str):
        """Yields True when this caller had to wait behind an in-flight run."""
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._inflight[key] = entry
            entry[1] += 1
        waited = not entry[0].acquire(blocking=False)
        if waited:
            entry[0].acquire()
        try:
            yield waited
        finally:
            entry[0].release()
            with self._inflight_lock:
                entry[1] -= 1
                if entry[1] == 0:
                    self._inflight.pop(key, None)
