"""The content-addressed result cache.

Interactive mining workloads are dominated by repeated near-identical
queries over slowly-changing data (the IQMI loop: refine a threshold,
re-run, compare).  The cache exploits that by addressing results with
*content*, never with identity:

    key = SHA-256 over (canonical TML text,
                        dataset fingerprint,
                        result-relevant engine settings)

* The canonical TML text comes from :func:`repro.tml.canonical.canonicalize`
  — whitespace/case/clause-order variants of a query collapse to one key.
* The dataset fingerprint is :meth:`SqliteStore.fingerprint` — a digest
  of the store *content*, so a mutated-then-restored dataset hits the
  old entries again, while any real change misses.
* Settings cover everything that can alter the serialized result
  (engine, workers, budget).  Sharding and counting backends are
  bit-identical by tested invariant, but they stay in the key so a
  backend bug can never leak results across configurations.

Eviction is LRU with an optional TTL; invalidation removes exactly the
entries recorded under one dataset fingerprint (the mutation hook of
the service core).  All operations are thread-safe.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, default_registry


def cache_key(
    canonical_tml: str,
    dataset_fingerprint: str,
    settings: Optional[Mapping[str, object]] = None,
) -> str:
    """The content address of one (query, dataset, settings) triple."""
    blob = json.dumps(
        {
            "tml": canonical_tml,
            "dataset": dataset_fingerprint,
            "settings": dict(sorted((settings or {}).items())),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One cached result plus the metadata eviction needs."""

    key: str
    value: Dict
    dataset_fingerprint: str
    created_at: float
    hits: int = 0


@dataclass
class CacheStats:
    """Cumulative cache counters (returned as a dict by ``stats()``)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0


class ResultCache:
    """A thread-safe LRU+TTL map from content address to result dict.

    ``max_entries`` bounds memory; ``ttl_seconds=None`` disables expiry
    (content addressing already guarantees freshness — TTL exists to cap
    staleness when the store is mutated *outside* the service's
    invalidation hooks, e.g. by another process on the same file).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()
        registry = metrics if metrics is not None else default_registry()
        self._m_events = registry.counter(
            "repro_cache_events_total",
            "Result-cache activity, by event kind.",
            labelnames=("event",),
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "Entries currently resident in the result cache."
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict]:
        """The cached value, or ``None`` on miss/expiry (counted apart)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                self._m_events.inc(event="miss")
                return None
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.created_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._stats.expirations += 1
                self._stats.misses += 1
                self._m_events.inc(event="expiration")
                self._m_events.inc(event="miss")
                self._m_entries.set(len(self._entries))
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._stats.hits += 1
            self._m_events.inc(event="hit")
            # Hand out a copy: result dicts live on Job.result and get
            # serialized/annotated downstream, and an in-place mutation
            # there must never reach back into the shared entry.
            return copy.deepcopy(entry.value)

    def put(self, key: str, value: Dict, dataset_fingerprint: str) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = CacheEntry(
                key=key,
                value=copy.deepcopy(value),
                dataset_fingerprint=dataset_fingerprint,
                created_at=self._clock(),
            )
            self._stats.puts += 1
            self._m_events.inc(event="put")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._m_events.inc(event="eviction")
            self._m_entries.set(len(self._entries))

    def invalidate_fingerprint(self, dataset_fingerprint: str) -> int:
        """Drop exactly the entries cached under one dataset fingerprint.

        Returns the number of entries removed.  Entries for other
        fingerprints (other datasets, or other versions of this one)
        are untouched — mutation hooks must never over-invalidate.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.dataset_fingerprint == dataset_fingerprint
            ]
            for key in doomed:
                del self._entries[key]
            self._stats.invalidations += len(doomed)
            if doomed:
                self._m_events.inc(len(doomed), event="invalidation")
                self._m_entries.set(len(self._entries))
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._stats.invalidations += n
            if n:
                self._m_events.inc(n, event="invalidation")
            self._m_entries.set(0)
            return n

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters plus the current entry count."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._stats.hits,
                "misses": self._stats.misses,
                "puts": self._stats.puts,
                "evictions": self._stats.evictions,
                "expirations": self._stats.expirations,
                "invalidations": self._stats.invalidations,
            }
