"""The content-addressed result cache.

Interactive mining workloads are dominated by repeated near-identical
queries over slowly-changing data (the IQMI loop: refine a threshold,
re-run, compare).  The cache exploits that by addressing results with
*content*, never with identity:

    key = SHA-256 over (canonical TML text,
                        dataset fingerprint,
                        result-relevant engine settings)

* The canonical TML text comes from :func:`repro.tml.canonical.canonicalize`
  — whitespace/case/clause-order variants of a query collapse to one key.
* The dataset fingerprint is :meth:`SqliteStore.fingerprint` — a digest
  of the store *content*, so a mutated-then-restored dataset hits the
  old entries again, while any real change misses.
* Settings cover everything that can alter the serialized result
  (engine, workers, budget).  Sharding and counting backends are
  bit-identical by tested invariant, but they stay in the key so a
  backend bug can never leak results across configurations.

Eviction is LRU with an optional TTL; invalidation removes exactly the
entries recorded under one dataset fingerprint (the mutation hook of
the service core).  All operations are thread-safe.

With a :class:`~repro.service.durability.spill.DiskCacheTier` attached,
every put is mirrored to disk and a memory miss falls through to the
spill file (promoting the entry back into memory), so warm results
survive a process restart.  The spill tier is failure-isolated: a
broken disk is logged and counted, never surfaced to the request.
"""

from __future__ import annotations

import copy
import hashlib
import json
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional

from repro.errors import DatabaseError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (type-only)
    from repro.service.durability.spill import DiskCacheTier

logger = get_logger(__name__)


def cache_key(
    canonical_tml: str,
    dataset_fingerprint: str,
    settings: Optional[Mapping[str, object]] = None,
) -> str:
    """The content address of one (query, dataset, settings) triple."""
    blob = json.dumps(
        {
            "tml": canonical_tml,
            "dataset": dataset_fingerprint,
            "settings": dict(sorted((settings or {}).items())),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One cached result plus the metadata eviction needs."""

    key: str
    value: Dict
    dataset_fingerprint: str
    created_at: float
    hits: int = 0


@dataclass
class CacheStats:
    """Cumulative cache counters (returned as a dict by ``stats()``)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    delta_refreshes: int = 0
    disk_hits: int = 0
    disk_errors: int = 0


class ResultCache:
    """A thread-safe LRU+TTL map from content address to result dict.

    ``max_entries`` bounds memory; ``ttl_seconds=None`` disables expiry
    (content addressing already guarantees freshness — TTL exists to cap
    staleness when the store is mutated *outside* the service's
    invalidation hooks, e.g. by another process on the same file).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
        spill: Optional["DiskCacheTier"] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.spill = spill
        self._clock = clock
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()
        registry = metrics if metrics is not None else default_registry()
        self._m_events = registry.counter(
            "repro_cache_events_total",
            "Result-cache activity, by event kind.",
            labelnames=("event",),
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "Entries currently resident in the result cache."
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict]:
        """The cached value, or ``None`` on miss/expiry (counted apart).

        A memory miss falls through to the disk spill tier when one is
        attached; a disk hit is promoted back into the memory tier.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                self._m_events.inc(event="miss")
                return self._spill_get(key)
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.created_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._stats.expirations += 1
                self._stats.misses += 1
                self._m_events.inc(event="expiration")
                self._m_events.inc(event="miss")
                self._m_entries.set(len(self._entries))
                return self._spill_get(key)
            self._entries.move_to_end(key)
            entry.hits += 1
            self._stats.hits += 1
            self._m_events.inc(event="hit")
            # Hand out a copy: result dicts live on Job.result and get
            # serialized/annotated downstream, and an in-place mutation
            # there must never reach back into the shared entry.
            return copy.deepcopy(entry.value)

    def _spill_get(self, key: str) -> Optional[Dict]:
        """Disk fallback for a memory miss (caller holds the lock).

        A disk hit is promoted into the memory tier (counted as a
        ``disk_hit``, not a ``put``); any spill failure degrades to a
        miss.
        """
        if self.spill is None:
            return None
        try:
            found = self.spill.get(key)
        except (DatabaseError, sqlite3.Error, ValueError) as error:
            self._stats.disk_errors += 1
            self._m_events.inc(event="disk_error")
            logger.warning("disk cache get failed for %s: %s", key[:12], error)
            return None
        if found is None:
            return None
        value, fingerprint = found
        self._entries[key] = CacheEntry(
            key=key,
            value=copy.deepcopy(value),
            dataset_fingerprint=fingerprint,
            created_at=self._clock(),
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            self._m_events.inc(event="eviction")
        self._m_entries.set(len(self._entries))
        self._stats.disk_hits += 1
        self._m_events.inc(event="disk_hit")
        return value

    def put(self, key: str, value: Dict, dataset_fingerprint: str) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity.

        Mirrored to the disk spill tier when one is attached (disk
        failures are counted and logged, never raised — losing the
        spill copy only costs a future restart its warmth).
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = CacheEntry(
                key=key,
                value=copy.deepcopy(value),
                dataset_fingerprint=dataset_fingerprint,
                created_at=self._clock(),
            )
            self._stats.puts += 1
            self._m_events.inc(event="put")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._m_events.inc(event="eviction")
            self._m_entries.set(len(self._entries))
            if self.spill is not None:
                try:
                    self.spill.put(key, value, dataset_fingerprint)
                except (DatabaseError, sqlite3.Error, ValueError) as error:
                    self._stats.disk_errors += 1
                    self._m_events.inc(event="disk_error")
                    logger.warning(
                        "disk cache put failed for %s: %s", key[:12], error
                    )

    def invalidate_fingerprint(self, dataset_fingerprint: str) -> int:
        """Drop exactly the entries cached under one dataset fingerprint.

        Returns the number of entries removed.  Entries for other
        fingerprints (other datasets, or other versions of this one)
        are untouched — mutation hooks must never over-invalidate.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.dataset_fingerprint == dataset_fingerprint
            ]
            for key in doomed:
                del self._entries[key]
            removed = len(doomed)
            if self.spill is not None:
                try:
                    removed += self.spill.invalidate_fingerprint(dataset_fingerprint)
                except (DatabaseError, sqlite3.Error) as error:
                    self._stats.disk_errors += 1
                    self._m_events.inc(event="disk_error")
                    logger.warning("disk cache invalidation failed: %s", error)
            self._stats.invalidations += removed
            if doomed:
                self._m_events.inc(len(doomed), event="invalidation")
                self._m_entries.set(len(self._entries))
            return removed

    def note_append(self, old_fingerprint: str, new_fingerprint: str) -> int:
        """Retire entries superseded by an append-only store mutation.

        Semantically this is an invalidation of ``old_fingerprint`` — the
        results are stale and must not be served — but it is counted
        under a distinct ``delta_refreshes`` stat (and a
        ``delta_refresh`` event) because the *engine* state behind those
        entries was not discarded: the incremental contexts delta-refresh
        from the old counts, so the replacement entries are cheap to
        rebuild.  Distinguishing the two in telemetry is what lets the
        operator see appends as refreshes rather than cache churn.
        """
        if old_fingerprint == new_fingerprint:
            return 0
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.dataset_fingerprint == old_fingerprint
            ]
            for key in doomed:
                del self._entries[key]
            removed = len(doomed)
            if self.spill is not None:
                try:
                    removed += self.spill.invalidate_fingerprint(old_fingerprint)
                except (DatabaseError, sqlite3.Error) as error:
                    self._stats.disk_errors += 1
                    self._m_events.inc(event="disk_error")
                    logger.warning("disk cache delta refresh failed: %s", error)
            self._stats.delta_refreshes += removed
            if removed:
                self._m_events.inc(removed, event="delta_refresh")
            self._m_entries.set(len(self._entries))
            return removed

    def clear(self) -> int:
        """Drop everything (both tiers); returns entries removed."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            if self.spill is not None:
                try:
                    n += self.spill.clear()
                except (DatabaseError, sqlite3.Error) as error:
                    self._stats.disk_errors += 1
                    self._m_events.inc(event="disk_error")
                    logger.warning("disk cache clear failed: %s", error)
            self._stats.invalidations += n
            if n:
                self._m_events.inc(n, event="invalidation")
            self._m_entries.set(0)
            return n

    def stats(self) -> Dict[str, object]:
        """A snapshot of the counters plus the current entry count."""
        with self._lock:
            snapshot: Dict[str, object] = {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._stats.hits,
                "misses": self._stats.misses,
                "puts": self._stats.puts,
                "evictions": self._stats.evictions,
                "expirations": self._stats.expirations,
                "invalidations": self._stats.invalidations,
                "delta_refreshes": self._stats.delta_refreshes,
                "disk_hits": self._stats.disk_hits,
                "disk_errors": self._stats.disk_errors,
            }
            if self.spill is not None:
                try:
                    snapshot["disk"] = self.spill.stats()
                except (DatabaseError, sqlite3.Error):  # pragma: no cover
                    snapshot["disk"] = {"error": "unavailable"}
            return snapshot
