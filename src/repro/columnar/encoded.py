"""The dense-encoded, CSR-layout transaction database.

:class:`EncodedDatabase` stores an ordered transaction history as four
parallel columns instead of Python objects:

* ``item_ids`` — one flat ``int32`` array of every item occurrence,
  basket by basket, each basket sorted and deduplicated;
* ``offsets`` — ``int64`` CSR offsets (``offsets[t]:offsets[t+1]`` is
  transaction ``t``'s slice of ``item_ids``);
* ``tids`` / ``timestamps`` — per-transaction identifiers and instants.

Transactions are ordered by (timestamp, tid), so any time range — in
particular one granularity unit — is a contiguous position range, and
slicing it (:meth:`EncodedDatabase.segment`) is zero-copy.  The layout
is what the whole mining stack scans; the Python
:class:`~repro.core.transactions.Transaction` objects exist only at the
construction/IO boundary.
"""

from __future__ import annotations

from datetime import datetime
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.bitmaps import VerticalIndex
from repro.core.items import Item, ItemCatalog
from repro.errors import TransactionError
from repro.temporal.granularity import Granularity, unit_index


class EncodedDatabase:
    """Transactions in columnar CSR form, ordered by (timestamp, tid)."""

    __slots__ = (
        "item_ids",
        "offsets",
        "tids",
        "timestamps",
        "catalog",
        "_n_items",
        "_stats",
    )

    def __init__(
        self,
        item_ids: np.ndarray,
        offsets: np.ndarray,
        tids: np.ndarray,
        timestamps: Tuple[datetime, ...],
        catalog: Optional[ItemCatalog] = None,
    ):
        self.item_ids = item_ids
        self.offsets = offsets
        self.tids = tids
        self.timestamps = timestamps
        self.catalog = catalog if catalog is not None else ItemCatalog()
        highest = int(item_ids.max()) + 1 if item_ids.size else 0
        self._n_items = max(highest, len(self.catalog))
        #: Planner statistics memo (see :func:`repro.planner.stats_of_encoded`);
        #: safe to cache here because the layout is immutable once built.
        self._stats = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_database(cls, database) -> "EncodedDatabase":
        """Encode an in-memory :class:`TransactionDatabase` (one scan)."""
        sizes: List[int] = []
        tids: List[int] = []
        stamps: List[datetime] = []
        chunks: List[Tuple[Item, ...]] = []
        for transaction in database:  # iteration yields (timestamp, tid) order
            items = transaction.items.items
            sizes.append(len(items))
            tids.append(transaction.tid)
            stamps.append(transaction.timestamp)
            chunks.append(items)
        total = sum(sizes)
        flat = np.fromiter(
            (item for chunk in chunks for item in chunk),
            dtype=np.int32,
            count=total,
        )
        offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(
            flat,
            offsets,
            np.asarray(tids, dtype=np.int64),
            tuple(stamps),
            catalog=database.catalog,
        )

    @classmethod
    def from_baskets(
        cls,
        baskets: Iterable[Tuple[int, datetime, Sequence[Item]]],
        catalog: Optional[ItemCatalog] = None,
    ) -> "EncodedDatabase":
        """Build from ``(tid, timestamp, item_ids)`` triples.

        The triples must already be ordered by (timestamp, tid) — the
        order a ``SELECT ... ORDER BY ts, tid`` emits; item ids within a
        basket are sorted and deduplicated here.
        """
        sizes: List[int] = []
        tids: List[int] = []
        stamps: List[datetime] = []
        chunks: List[Tuple[Item, ...]] = []
        previous: Optional[datetime] = None
        for tid, stamp, ids in baskets:
            if previous is not None and stamp < previous:
                raise TransactionError(
                    "from_baskets requires (timestamp, tid) ordered input"
                )
            previous = stamp
            unique = tuple(sorted(set(ids)))
            sizes.append(len(unique))
            tids.append(tid)
            stamps.append(stamp)
            chunks.append(unique)
        flat = np.fromiter(
            (item for chunk in chunks for item in chunk),
            dtype=np.int32,
            count=sum(sizes),
        )
        offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(
            flat,
            offsets,
            np.asarray(tids, dtype=np.int64),
            tuple(stamps),
            catalog=catalog,
        )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_items(self) -> int:
        """Size of the dense item universe (max id + 1, or catalog size)."""
        return self._n_items

    def is_empty(self) -> bool:
        return len(self) == 0

    def time_span(self) -> Tuple[datetime, datetime]:
        """(earliest, latest) timestamps; raises on an empty database."""
        if not self.timestamps:
            raise TransactionError("time_span() on an empty encoded database")
        return self.timestamps[0], self.timestamps[-1]

    def average_transaction_size(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.offsets[-1]) / len(self)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------

    def basket(self, position: int) -> Tuple[Item, ...]:
        """The (sorted) item-id tuple of the transaction at ``position``."""
        lo, hi = self.offsets[position], self.offsets[position + 1]
        return tuple(int(item) for item in self.item_ids[lo:hi])

    def iter_baskets(
        self, lo: int = 0, hi: Optional[int] = None
    ) -> Iterator[Tuple[Item, ...]]:
        """Basket tuples of the position range ``[lo, hi)``."""
        hi = len(self) if hi is None else hi
        for position in range(lo, hi):
            yield self.basket(position)

    # ------------------------------------------------------------------
    # counting and slicing
    # ------------------------------------------------------------------

    def item_frequencies(self, lo: int = 0, hi: Optional[int] = None) -> Dict[Item, int]:
        """Absolute support of every item in ``[lo, hi)`` (one bincount)."""
        hi = len(self) if hi is None else hi
        segment = self.item_ids[self.offsets[lo] : self.offsets[hi]]
        counts = np.bincount(segment, minlength=0)
        return {
            int(item): int(count)
            for item, count in enumerate(counts)
            if count
        }

    def unit_offsets(self, granularity: Granularity) -> np.ndarray:
        """Absolute unit index of every transaction (nondecreasing)."""
        return np.fromiter(
            (unit_index(stamp, granularity) for stamp in self.timestamps),
            dtype=np.int64,
            count=len(self),
        )

    def unit_bounds(self, granularity: Granularity) -> Tuple[int, np.ndarray]:
        """Per-unit position boundaries at ``granularity``.

        Returns ``(first_unit, bounds)`` where ``bounds`` has one entry
        per unit edge: unit offset ``u`` covers transaction positions
        ``bounds[u]:bounds[u + 1]`` — empty units included, no copying.
        """
        if len(self) == 0:
            raise TransactionError("unit_bounds() on an empty encoded database")
        units = self.unit_offsets(granularity)
        first_unit = int(units[0])
        last_unit = int(units[-1])
        edges = np.arange(first_unit, last_unit + 2, dtype=np.int64)
        bounds = np.searchsorted(units, edges, side="left")
        return first_unit, bounds

    def segment(self, lo: int = 0, hi: Optional[int] = None) -> "EncodedSegment":
        """A zero-copy view of the position range ``[lo, hi)``."""
        hi = len(self) if hi is None else hi
        return EncodedSegment(self, lo, hi)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------

    def to_transaction_database(self):
        """Materialize classic :class:`Transaction` objects (IO boundary)."""
        from repro.core.transactions import Transaction, TransactionDatabase
        from repro.core.items import Itemset

        database = TransactionDatabase(catalog=self.catalog)
        for position in range(len(self)):
            database.append(
                Transaction(
                    tid=int(self.tids[position]),
                    timestamp=self.timestamps[position],
                    items=Itemset(self.basket(position)),
                )
            )
        return database

    def __repr__(self) -> str:
        return (
            f"EncodedDatabase(n={len(self)}, n_items={self.n_items}, "
            f"occurrences={int(self.offsets[-1])})"
        )


class EncodedSegment:
    """A contiguous transaction range of an :class:`EncodedDatabase`.

    This is the unit of work handed to counting backends: horizontal
    backends iterate :meth:`baskets`, the vertical backend intersects
    the cached :meth:`vertical` bitmap index.  Both views are built
    lazily and cached — the bitmap index in particular is built once per
    segment and reused by every Apriori pass.
    """

    __slots__ = ("encoded", "lo", "hi", "_baskets", "_vertical")

    def __init__(self, encoded: EncodedDatabase, lo: int, hi: int):
        self.encoded = encoded
        self.lo = lo
        self.hi = hi
        self._baskets: Optional[List[Tuple[Item, ...]]] = None
        self._vertical: Optional[VerticalIndex] = None

    def __len__(self) -> int:
        return self.hi - self.lo

    def baskets(self) -> List[Tuple[Item, ...]]:
        """Materialized basket tuples of this segment (cached)."""
        if self._baskets is None:
            self._baskets = list(self.encoded.iter_baskets(self.lo, self.hi))
        return self._baskets

    def vertical(self) -> VerticalIndex:
        """The per-item bitmap index of this segment (cached)."""
        if self._vertical is None:
            encoded = self.encoded
            start = encoded.offsets[self.lo]
            stop = encoded.offsets[self.hi]
            local_offsets = encoded.offsets[self.lo : self.hi + 1] - start
            self._vertical = VerticalIndex.from_csr(
                encoded.item_ids[start:stop], local_offsets, encoded.n_items
            )
        return self._vertical

    def __repr__(self) -> str:
        return f"EncodedSegment(lo={self.lo}, hi={self.hi}, n={len(self)})"
