"""Columnar transaction layout and vertical (bitmap) support counting.

This package is the data plane underneath every mining pass:

* :class:`EncodedDatabase` — transactions dense-encoded to int32 item
  ids and stored in a CSR layout (one flat item array plus offsets),
  sliceable by position or time unit without copying.
* :class:`VerticalIndex` — per-item packed uint64 bitmaps over a
  transaction range; candidate support is bitmap intersection plus
  popcount, the Eclat-style vertical representation.
* The :data:`counting-backend registry <repro.columnar.backends>` —
  ``dict``, ``hashtree``, ``vertical`` and ``packed`` strategies behind
  one pass-level interface, selectable from :mod:`repro.core.apriori`,
  :mod:`repro.mining.context`, the engine, and TML ``SET ENGINE``
  (where ``AUTO`` delegates the choice to :mod:`repro.planner`).

All backends produce bit-identical support counts; only the work they
do to obtain them differs.  The property suite enforces the agreement.
"""

from repro.columnar.backends import (
    BasketSegment,
    CountingBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.columnar.bitmaps import VerticalIndex, popcount_rows, popcount_sum
from repro.columnar.encoded import EncodedDatabase, EncodedSegment

__all__ = [
    "BasketSegment",
    "CountingBackend",
    "EncodedDatabase",
    "EncodedSegment",
    "VerticalIndex",
    "available_backends",
    "get_backend",
    "popcount_rows",
    "popcount_sum",
    "register_backend",
    "resolve_backend",
]
