"""Per-item packed bitmaps with popcount-based support counting.

The vertical representation of a transaction segment: for every item, a
bitmap over the segment's transactions (bit *t* set when transaction *t*
contains the item), packed 64 transactions per ``uint64`` word.  The
support of a candidate itemset is then the popcount of the AND of its
item bitmaps — no per-transaction Python work at all, which is the whole
point of the columnar refactor.

Bitmaps are stored as one 2-D matrix (``n_item_rows + 1`` rows by
``n_words`` columns); the extra final row is an all-zero sentinel that
absorbs item ids outside the indexed universe, so a candidate mentioning
an unseen item cleanly counts zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import Item, Itemset
from repro.runtime.budget import RunMonitor

#: Candidates counted between two monitor checkpoints.
_CANDIDATE_STRIDE = 4096

#: Candidates materialized per block by the packed kernel; bounds the
#: working set to ``chunk * n_words * 8`` bytes per intersection level.
_PACKED_CHUNK = 4096

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

if not _HAS_BITWISE_COUNT:  # pragma: no cover - exercised only on numpy < 2
    _POPCOUNT16 = np.array(
        [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint16
    )


def popcount_sum(words: np.ndarray) -> int:
    """Total number of set bits in a uint64 array (any shape)."""
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    contiguous = np.ascontiguousarray(words)  # pragma: no cover
    return int(_POPCOUNT16[contiguous.view(np.uint16)].sum())  # pragma: no cover


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D uint64 matrix (int64 vector)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(matrix).sum(axis=-1, dtype=np.int64)
    contiguous = np.ascontiguousarray(matrix)  # pragma: no cover
    halves = contiguous.view(np.uint16)  # pragma: no cover
    return _POPCOUNT16[halves].sum(axis=-1, dtype=np.int64)  # pragma: no cover


class VerticalIndex:
    """Per-item bitmaps over one transaction segment.

    Build once per segment (the layout is pass-invariant), then count
    candidates of every size against it; the index never changes between
    Apriori passes, which is what makes the vertical backend fast.
    """

    __slots__ = ("_matrix", "n_transactions", "n_words", "n_item_rows")

    def __init__(self, matrix: np.ndarray, n_transactions: int):
        self._matrix = matrix
        self.n_transactions = n_transactions
        self.n_words = matrix.shape[1]
        self.n_item_rows = matrix.shape[0] - 1  # last row is the zero sentinel

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_csr(
        cls, item_ids: np.ndarray, offsets: np.ndarray, n_item_rows: int
    ) -> "VerticalIndex":
        """Build from a CSR segment (``offsets`` local, starting at 0)."""
        n = len(offsets) - 1
        n_words = max(1, -(-n // 64))
        matrix = np.zeros((n_item_rows + 1, n_words), dtype=np.uint64)
        if item_ids.size:
            lengths = np.diff(offsets)
            positions = np.repeat(np.arange(n, dtype=np.int64), lengths)
            bits = np.left_shift(
                np.uint64(1), (positions & 63).astype(np.uint64)
            )
            np.bitwise_or.at(
                matrix, (item_ids.astype(np.int64), positions >> 6), bits
            )
        return cls(matrix, n)

    @classmethod
    def from_baskets(
        cls,
        baskets: Sequence[Tuple[Item, ...]],
        n_item_rows: Optional[int] = None,
    ) -> "VerticalIndex":
        """Build from materialized basket tuples (ids need not be dense)."""
        if n_item_rows is None:
            n_item_rows = max((max(b) for b in baskets if b), default=-1) + 1
        flat = np.fromiter(
            (item for basket in baskets for item in basket),
            dtype=np.int32,
            count=sum(len(b) for b in baskets),
        )
        offsets = np.zeros(len(baskets) + 1, dtype=np.int64)
        np.cumsum([len(b) for b in baskets], out=offsets[1:])
        return cls.from_csr(flat, offsets, n_item_rows)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def _row(self, item: Item) -> np.ndarray:
        if 0 <= item < self.n_item_rows:
            return self._matrix[item]
        return self._matrix[self.n_item_rows]  # zero sentinel

    def bitmap(self, item: Item) -> np.ndarray:
        """The packed bitmap of one item (a read-only view)."""
        return self._row(item)

    def support(self, items: Iterable[Item]) -> int:
        """Transactions containing every item of ``items``."""
        ordered = tuple(items)
        if not ordered:
            return self.n_transactions
        accumulator = self._row(ordered[0])
        for item in ordered[1:]:
            accumulator = accumulator & self._row(item)
        return popcount_sum(accumulator)

    def item_supports(self) -> np.ndarray:
        """Support of every indexed item id (length ``n_item_rows``)."""
        return popcount_rows(self._matrix[: self.n_item_rows])

    def count_candidates(
        self,
        candidates: Sequence[Itemset],
        monitor: Optional[RunMonitor] = None,
        stride: int = _CANDIDATE_STRIDE,
    ) -> Dict[Itemset, int]:
        """Supports of same-size candidates by bitmap intersection.

        Candidates sharing a (k−1)-prefix (the shape Apriori's join step
        emits) are counted as one vectorized block: the prefix bitmap is
        intersected once, then AND-ed against all the last-item bitmaps
        in a single numpy operation.  A monitored call checkpoints every
        ``stride`` candidates, so a budgeted pass stops promptly; the
        caller discards the incomplete pass as usual.
        """
        result: Dict[Itemset, int] = {}
        if not candidates:
            return result
        ordered = sorted(candidates, key=lambda c: c.items)
        matrix = self._matrix
        sentinel = self.n_item_rows
        total = len(ordered)
        index = 0
        since_checkpoint = 0
        while index < total:
            prefix = ordered[index].items[:-1]
            stop = index + 1
            while stop < total and ordered[stop].items[:-1] == prefix:
                stop += 1
            accumulator: Optional[np.ndarray] = None
            for item in prefix:
                row = self._row(item)
                accumulator = row if accumulator is None else accumulator & row
            lasts = np.fromiter(
                (
                    c.items[-1] if 0 <= c.items[-1] < sentinel else sentinel
                    for c in ordered[index:stop]
                ),
                dtype=np.int64,
                count=stop - index,
            )
            block = matrix[lasts]
            if accumulator is not None:
                block = block & accumulator
            for candidate, count in zip(ordered[index:stop], popcount_rows(block)):
                result[candidate] = int(count)
            if monitor is not None:
                since_checkpoint += stop - index
                if since_checkpoint >= stride:
                    since_checkpoint = 0
                    monitor.checkpoint()
            index = stop
        return result

    def count_candidates_packed(
        self,
        candidates: Sequence[Itemset],
        monitor: Optional[RunMonitor] = None,
        chunk: int = _PACKED_CHUNK,
    ) -> Dict[Itemset, int]:
        """Supports by fully vectorized block intersection.

        Where :meth:`count_candidates` loops over shared-prefix groups in
        Python, this kernel gathers the item ids of a whole block of
        candidates into an ``(n, k)`` index matrix and intersects one
        *column of items at a time* across the entire block — ``k - 1``
        numpy AND operations plus one popcount per ``chunk`` candidates,
        independent of how the candidates' prefixes fragment.  It wins
        when passes carry many candidates with short shared prefixes
        (large stores, low minsup); counts are exact, so results are
        bit-identical to every other backend.
        """
        result: Dict[Itemset, int] = {}
        if not candidates:
            return result
        matrix = self._matrix
        sentinel = self.n_item_rows
        by_size: Dict[int, List[Itemset]] = {}
        for candidate in candidates:
            by_size.setdefault(len(candidate.items), []).append(candidate)
        for k, group in sorted(by_size.items()):
            if k == 0:
                for candidate in group:
                    result[candidate] = self.n_transactions
                continue
            ids = np.fromiter(
                (
                    item if 0 <= item < sentinel else sentinel
                    for candidate in group
                    for item in candidate.items
                ),
                dtype=np.int64,
                count=len(group) * k,
            ).reshape(len(group), k)
            for start in range(0, len(group), chunk):
                if monitor is not None:
                    monitor.checkpoint()
                block = ids[start : start + chunk]
                accumulator = matrix[block[:, 0]]
                for column in range(1, k):
                    accumulator &= matrix[block[:, column]]
                counts = popcount_rows(accumulator)
                for candidate, count in zip(group[start : start + chunk], counts):
                    result[candidate] = int(count)
        return result

    def __repr__(self) -> str:
        return (
            f"VerticalIndex(n_transactions={self.n_transactions}, "
            f"n_item_rows={self.n_item_rows}, n_words={self.n_words})"
        )
