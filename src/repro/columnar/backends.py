"""The counting-backend registry: dict, hashtree, vertical and packed.

A :class:`CountingBackend` counts one Apriori pass — all the same-size
candidates against one transaction segment — and returns the support of
every candidate.  The two classic horizontal strategies
(:class:`~repro.core.counting.DictCounter` subset enumeration and the
Agrawal–Srikant hash tree) walk basket tuples; the ``vertical`` backend
intersects the segment's per-item bitmaps instead
(:class:`~repro.columnar.bitmaps.VerticalIndex`), which moves the hot
path out of the interpreter entirely; ``packed`` intersects whole
candidate blocks column-wise, removing even the per-prefix-group Python
loop.

Every backend is registered by name; ``resolve_backend`` also implements
the ``"auto"`` heuristic shared with
:func:`repro.core.counting.make_counter`.  All backends produce
bit-identical counts (the property suite enforces this), so selecting
one is purely a performance decision.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.columnar.bitmaps import VerticalIndex
from repro.core.counting import DictCounter, HashTreeCounter, auto_strategy
from repro.core.items import Item, Itemset
from repro.errors import MiningParameterError
from repro.obs.metrics import default_registry
from repro.runtime.budget import RunMonitor

#: Baskets counted between two monitor checkpoints (horizontal backends).
_CHECK_STRIDE = 4096


class BasketSegment:
    """A segment backed by materialized basket tuples.

    The adapter that lets horizontal data (e.g. Apriori's
    transaction-reduced working set) flow through the same backend
    interface as :class:`~repro.columnar.encoded.EncodedSegment`.
    """

    __slots__ = ("_baskets", "_n_item_rows", "_vertical")

    def __init__(
        self,
        baskets: Sequence[Tuple[Item, ...]],
        n_item_rows: Optional[int] = None,
    ):
        self._baskets = baskets
        self._n_item_rows = n_item_rows
        self._vertical: Optional[VerticalIndex] = None

    def __len__(self) -> int:
        return len(self._baskets)

    def baskets(self) -> Sequence[Tuple[Item, ...]]:
        return self._baskets

    def vertical(self) -> VerticalIndex:
        if self._vertical is None:
            self._vertical = VerticalIndex.from_baskets(
                self._baskets, self._n_item_rows
            )
        return self._vertical


class CountingBackend(abc.ABC):
    """One pass-level candidate-counting strategy."""

    #: Registry key; subclasses must override.
    name: str = ""
    #: True when the backend counts via the segment's bitmap index.
    uses_vertical: bool = False

    @abc.abstractmethod
    def count_pass(
        self,
        candidates: Sequence[Itemset],
        segment,
        monitor: Optional[RunMonitor] = None,
    ) -> Dict[Itemset, int]:
        """Support of every candidate within ``segment``.

        A monitored call checkpoints periodically and may raise
        :class:`~repro.runtime.budget.RunInterrupted`; the caller then
        discards the incomplete pass, preserving exact-count semantics.
        """


class _HorizontalBackend(CountingBackend):
    """Shared scan loop for the per-transaction counting strategies."""

    def _make_counter(self, candidates: Sequence[Itemset]):
        raise NotImplementedError

    def count_pass(
        self,
        candidates: Sequence[Itemset],
        segment,
        monitor: Optional[RunMonitor] = None,
    ) -> Dict[Itemset, int]:
        counter = self._make_counter(candidates)
        baskets = segment.baskets()
        if monitor is None:
            for basket in baskets:
                counter.count_transaction(basket)
        else:
            for start in range(0, len(baskets), _CHECK_STRIDE):
                monitor.checkpoint()
                for basket in baskets[start : start + _CHECK_STRIDE]:
                    counter.count_transaction(basket)
        return counter.counts()


class DictBackend(_HorizontalBackend):
    """Subset enumeration against a candidate dictionary."""

    name = "dict"

    def _make_counter(self, candidates: Sequence[Itemset]):
        return DictCounter(candidates)


class HashTreeBackend(_HorizontalBackend):
    """The 1994 Agrawal–Srikant hash tree."""

    name = "hashtree"

    def _make_counter(self, candidates: Sequence[Itemset]):
        return HashTreeCounter(candidates)


class VerticalBackend(CountingBackend):
    """Bitmap-intersection counting over the segment's vertical index."""

    name = "vertical"
    uses_vertical = True

    def count_pass(
        self,
        candidates: Sequence[Itemset],
        segment,
        monitor: Optional[RunMonitor] = None,
    ) -> Dict[Itemset, int]:
        return segment.vertical().count_candidates(candidates, monitor=monitor)


class PackedBackend(CountingBackend):
    """Chunked-int popcount over whole candidate blocks.

    The planner's vectorized kernel: instead of walking shared-prefix
    groups, it intersects the vertical index one item *column* at a time
    across thousands of candidates per numpy call
    (:meth:`~repro.columnar.bitmaps.VerticalIndex.count_candidates_packed`).
    """

    name = "packed"
    uses_vertical = True

    def count_pass(
        self,
        candidates: Sequence[Itemset],
        segment,
        monitor: Optional[RunMonitor] = None,
    ) -> Dict[Itemset, int]:
        return segment.vertical().count_candidates_packed(
            candidates, monitor=monitor
        )


_REGISTRY: Dict[str, CountingBackend] = {}


def register_backend(backend: CountingBackend) -> CountingBackend:
    """Register a backend instance under its ``name`` (last one wins)."""
    if not backend.name:
        raise MiningParameterError("counting backends must declare a name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> CountingBackend:
    """The backend registered as ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise MiningParameterError(
            f"unknown counting backend {name!r}; available: {known}"
        ) from None


def resolve_backend(
    strategy: str, n_candidates: int = 0, k: int = 0
) -> CountingBackend:
    """Resolve a strategy name (including ``"auto"``) for one pass."""
    if strategy == "auto":
        backend = _REGISTRY[auto_strategy(n_candidates, k)]
    else:
        backend = get_backend(strategy)
    default_registry().counter(
        "repro_counting_dispatch_total",
        "Counting-pass dispatches, by resolved backend.",
        labelnames=("backend",),
    ).inc(backend=backend.name)
    return backend


register_backend(DictBackend())
register_backend(HashTreeBackend())
register_backend(VerticalBackend())
register_backend(PackedBackend())
