"""Canonicalization of TML statements — the query half of a cache key.

The mining service's result cache is *content-addressed*: two requests
must share a cache entry exactly when they denote the same computation
over the same data.  On the query side that means mapping every
spelling of a statement to one canonical form.

The heavy lifting is already done by the language design:

* the lexer treats keywords case-insensitively and discards whitespace
  and comments,
* the parser folds ``HAVING``/``SET BUDGET`` terms into *fields* of a
  frozen-dataclass AST node (so clause order vanishes) and fills
  defaults (so an explicit ``CONSEQUENT <= 1`` and an omitted one
  parse identically),
* every AST node renders back to one canonical text via
  :meth:`render`, a tested round-trip invariant.

Canonicalization is therefore parse → render: two statements differing
only in whitespace, keyword case, comments, clause order or explicit
defaults produce byte-identical canonical text — and statements
differing in *meaning* (thresholds, sources, features) cannot collide,
because ``render`` is injective on the parsed AST.
"""

from __future__ import annotations

from repro.tml.ast import SqlStatement, Statement
from repro.tml.parser import parse_statement


def canonicalize_statement(statement: Statement) -> str:
    """The canonical text of an already-parsed statement."""
    if isinstance(statement, SqlStatement):
        # SQL passes through TML unparsed; normalize the whitespace we
        # can see without an SQL grammar.  (SQL results are not cached,
        # so this only affects logging/labels, never correctness.)
        return " ".join(statement.render().split())
    return statement.render()


def canonicalize(text: str) -> str:
    """Canonical text for one TML statement given as source text.

    >>> canonicalize("mine itemsets FROM sales at granularity MONTH"
    ...              "  with support >= 0.20;")
    'MINE ITEMSETS FROM sales AT GRANULARITY month WITH SUPPORT >= 0.2 HAVING FREQUENCY >= 1, COVERAGE >= 2;'
    """
    return canonicalize_statement(parse_statement(text))
