"""Tokenizer for TML source text."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import TmlLexError
from repro.tml.tokens import KEYWORDS, Token, TokenType

_KEYWORD_SET = set(KEYWORDS)
_SINGLE = {
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
}


class Lexer:
    """Converts TML text into a token list ending with EOF.

    Comments run from ``--`` to end of line (the SQL convention).
    Strings are single-quoted with ``''`` as the escaped quote.
    """

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self.position + ahead
        return self.text[index] if index < len(self.text) else ""

    def _advance(self) -> str:
        char = self.text[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_trivia(self) -> None:
        while self.position < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column, offset = self.line, self.column, self.position
        if self.position >= len(self.text):
            return Token(TokenType.EOF, "", line, column, offset)
        char = self._peek()
        if char in _SINGLE:
            self._advance()
            return Token(_SINGLE[char], char, line, column, offset)
        if char in "<>=":
            self._advance()
            if char in "<>" and self._peek() == "=":
                self._advance()
                return Token(TokenType.OP, char + "=", line, column, offset)
            return Token(TokenType.OP, char, line, column, offset)
        if char == "'":
            return self._string(line, column, offset)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._number(line, column, offset)
        if char.isalpha() or char == "_":
            return self._word(line, column, offset)
        raise TmlLexError(
            f"unexpected character {char!r}", self.position, line, column
        )

    def _string(self, line: int, column: int, offset: int) -> Token:
        self._advance()  # opening quote
        chunks: List[str] = []
        while True:
            if self.position >= len(self.text):
                raise TmlLexError("unterminated string", self.position, line, column)
            char = self._advance()
            if char == "'":
                if self._peek() == "'":  # escaped quote
                    self._advance()
                    chunks.append("'")
                    continue
                return Token(TokenType.STRING, "".join(chunks), line, column, offset)
            chunks.append(char)

    def _number(self, line: int, column: int, offset: int) -> Token:
        chunks: List[str] = []
        seen_dot = False
        while self.position < len(self.text):
            char = self._peek()
            if char.isdigit():
                chunks.append(self._advance())
            elif char == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                chunks.append(self._advance())
            else:
                break
        return Token(TokenType.NUMBER, "".join(chunks), line, column, offset)

    def _word(self, line: int, column: int, offset: int) -> Token:
        chunks: List[str] = []
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char == "_":
                chunks.append(self._advance())
            else:
                break
        word = "".join(chunks)
        upper = word.upper()
        if upper in _KEYWORD_SET:
            return Token(TokenType.KEYWORD, upper, line, column, offset)
        return Token(TokenType.IDENT, word, line, column, offset)


def tokenize(text: str) -> List[Token]:
    """Tokenize TML text (convenience wrapper)."""
    return Lexer(text).tokenize()
