"""Execution of parsed TML statements.

The executor binds statements to an :class:`ExecutionEnvironment` —
named in-memory datasets for mining plus an optional SQLite store for the
integrated query function — and dispatches:

* ``MINE ...``   → the :class:`~repro.mining.engine.TemporalMiner` tasks,
* ``SHOW ...``   → the canned data-understanding queries,
* raw SQL        → :func:`repro.db.query.run_query`.

Every execution returns an :class:`ExecutionResult` carrying both the
structured payload and a rendered text form for the REPL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Optional, Union

from repro.columnar.backends import available_backends
from repro.core.transactions import TransactionDatabase
from repro.db.query import (
    QueryResult,
    is_mutating_sql,
    run_mutation,
    run_query,
    summarize,
    top_items,
    volume_by_unit,
)
from repro.db.sqlite_store import SqliteStore
from repro.errors import TmlExecutionError
from repro.mining.engine import (
    TemporalMiner,
    _incremental_from_env,
    _workers_from_env,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import format_trace
from repro.runtime.budget import CancellationToken, RunBudget
from repro.mining.results import MiningReport
from repro.mining.tasks import (
    ConstrainedTask,
    PeriodicityTask,
    RuleThresholds,
    ValidPeriodTask,
)
from repro.temporal.calendar_algebra import CalendarPattern
from repro.temporal.granularity import Granularity
from repro.temporal.interval import TimeInterval
from repro.temporal.periodicity import CyclicPeriodicity
from repro.tml.ast import (
    CalendarComboFeature,
    CalendarFeature,
    CyclicFeature,
    ExplainStatement,
    FeatureSpec,
    MineItemsetsStatement,
    MineTrendsStatement,
    MinePeriodicitiesStatement,
    MinePeriodsStatement,
    MineRulesStatement,
    NamedCalendarFeature,
    ProfileStatement,
    PeriodFeature,
    SetBudgetStatement,
    SetEngineStatement,
    SetIncrementalStatement,
    SetTraceStatement,
    SetWorkersStatement,
    ShowStatement,
    SqlStatement,
    Statement,
)
from repro.tml.parser import parse_script, parse_statement


@dataclass
class ExecutionResult:
    """Outcome of one statement: a payload plus its text rendering."""

    statement: Statement
    payload: Union[MiningReport, QueryResult]
    text: str

    def __str__(self) -> str:
        return self.text


class ExecutionEnvironment:
    """Named datasets + optional store, shared across statements.

    A dataset name used in ``FROM`` resolves to (in order):

    1. a registered in-memory dataset,
    2. the whole store (name ``transactions``) loaded on demand.
    """

    def __init__(
        self,
        store: Optional[SqliteStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.datasets: Dict[str, TransactionDatabase] = {}
        self._miners: Dict[str, TemporalMiner] = {}
        self._store_backed: set = set()
        self.budget: Optional[RunBudget] = None
        self.engine: str = "auto"
        self.workers: Optional[int] = _workers_from_env()
        self.incremental: str = _incremental_from_env()
        self.metrics = metrics
        self.trace: bool = False
        self.cancel_token = CancellationToken()
        # Optional per-granule observer threaded into every MINE run's
        # monitor — the seam the mining service's tests (and PR 1's
        # fault-injection harness) use to pace or interrupt runs
        # deterministically.  None in normal operation.
        self.granule_hook = None

    def register(self, name: str, database: TransactionDatabase) -> None:
        """Expose an in-memory database under ``name``."""
        self.datasets[name] = database
        self._miners.pop(name, None)
        self._store_backed.discard(name)

    def mark_store_backed(self, name: str) -> None:
        """Flag a dataset as mirroring the store, so SQL mutations
        invalidate and reload it (see :meth:`note_store_mutation`)."""
        self._store_backed.add(name)

    def resolve(self, name: str) -> TransactionDatabase:
        if name in self.datasets:
            return self.datasets[name]
        if self.store is not None and name == "transactions":
            database = self.store.load_database()
            self.datasets[name] = database
            self._store_backed.add(name)
            return database
        known = sorted(self.datasets)
        raise TmlExecutionError(
            f"unknown source {name!r}; known sources: {known or '(none)'}"
        )

    def miner(self, name: str) -> TemporalMiner:
        miner = self._miners.get(name)
        if miner is None:
            miner = TemporalMiner(
                self.resolve(name),
                counting=self.engine,
                workers=self.workers,
                metrics=self.metrics,
                trace=self.trace,
                incremental=self.incremental,
            )
            self._miners[name] = miner
        return miner

    def set_engine(self, engine: str) -> None:
        """Pin the counting backend for every subsequent ``MINE``.

        ``"auto"`` (the default) restores planner selection.  Validates
        against the backend registry and updates cached miners in place
        (their partitioning caches survive — backends share the layout).
        """
        if engine != "auto" and engine not in available_backends():
            known = ", ".join(["auto"] + available_backends())
            raise TmlExecutionError(
                f"unknown counting engine {engine!r}; available: {known}"
            )
        self.engine = engine
        for miner in self._miners.values():
            miner.set_counting(engine)

    def set_workers(self, workers: Optional[int]) -> None:
        """Pin the worker-process count for every subsequent ``MINE``.

        ``None`` (AUTO, the default) lets the planner size the fan-out
        per query; ``1`` pins serial.  Cached miners are updated in
        place (each tears down its pool and lazily builds a new one on
        the next run).
        """
        if workers is not None and workers < 1:
            raise TmlExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        for miner in self._miners.values():
            miner.set_workers(workers)

    def set_trace(self, trace: bool) -> None:
        """Toggle per-run tracing for every subsequent ``MINE``.

        Cached miners are updated in place; the next run attaches (or
        stops attaching) a serialized span tree to its report.
        """
        self.trace = bool(trace)
        for miner in self._miners.values():
            miner.set_trace(self.trace)

    def set_incremental(self, mode: str) -> None:
        """Select the incremental-maintenance mode for every ``MINE``.

        ``"off"`` (the default) re-counts from scratch each run; ``"on"``
        pins the delta path; ``"auto"`` leaves the delta-vs-full choice
        to the planner's dirty-fraction threshold.  Cached miners are
        updated in place (an invalid mode raises before any state
        changes).
        """
        normalized = str(mode).strip().lower()
        from repro.planner import INCREMENTAL_MODES

        if normalized not in INCREMENTAL_MODES:
            known = ", ".join(INCREMENTAL_MODES)
            raise TmlExecutionError(
                f"unknown incremental mode {mode!r}; expected one of: {known}"
            )
        self.incremental = normalized
        for miner in self._miners.values():
            miner.set_incremental(normalized)

    def close(self) -> None:
        """Release every cached miner's worker pool."""
        for miner in self._miners.values():
            miner.close()

    def note_store_mutation(self) -> None:
        """Invalidate store-backed state after a mutating SQL statement.

        In-memory copies of store-backed datasets are reloaded and their
        cached miners dropped, so the next ``MINE`` sees the new rows
        instead of a stale snapshot.
        """
        if self.store is None:
            return
        for name in sorted(self._store_backed):
            if name in self.datasets:
                catalog = self.datasets[name].catalog
                self.datasets[name] = self.store.load_database(catalog=catalog)
            self._miners.pop(name, None)

    def apply_store_append(self, transactions) -> None:
        """Fold appended store rows into mirrored datasets — no reload.

        The delta counterpart of :meth:`note_store_mutation` for
        append-only mutations: each store-backed dataset gains the new
        rows in place, and cached miners fold them into their encoded
        layouts via :meth:`TemporalMiner.apply_append` (retaining
        per-unit count state when incremental maintenance is enabled).
        ``transactions`` holds ``(timestamp, items, tid)`` tuples using
        the tids the store actually assigned, so the in-memory mirror
        stays identical to what a full reload would produce.
        """
        if self.store is None:
            return
        batch = list(transactions)
        if not batch:
            return
        for name in sorted(self._store_backed):
            if name not in self.datasets:
                continue
            miner = self._miners.get(name)
            if miner is not None:
                miner.apply_append(batch)
                continue
            database = self.datasets[name]
            for entry in batch:
                timestamp, items = entry[0], entry[1]
                tid = entry[2] if len(entry) > 2 else None
                database.add(timestamp, items, tid=tid)


class TmlExecutor:
    """Parses and runs TML text against an environment."""

    def __init__(self, environment: ExecutionEnvironment):
        self.environment = environment

    # ------------------------------------------------------------------

    def execute(self, text: str) -> ExecutionResult:
        """Parse and run exactly one statement."""
        return self.execute_statement(parse_statement(text))

    def execute_script(self, text: str) -> list:
        """Parse and run a multi-statement script, in order."""
        return [self.execute_statement(s) for s in parse_script(text)]

    def execute_statement(self, statement: Statement) -> ExecutionResult:
        if isinstance(statement, MinePeriodsStatement):
            return self._mine_periods(statement)
        if isinstance(statement, MinePeriodicitiesStatement):
            return self._mine_periodicities(statement)
        if isinstance(statement, MineRulesStatement):
            return self._mine_rules(statement)
        if isinstance(statement, MineItemsetsStatement):
            return self._mine_itemsets(statement)
        if isinstance(statement, MineTrendsStatement):
            return self._mine_trends(statement)
        if isinstance(statement, ExplainStatement):
            return self._explain(statement)
        if isinstance(statement, ProfileStatement):
            return self._profile(statement)
        if isinstance(statement, ShowStatement):
            return self._show(statement)
        if isinstance(statement, SetBudgetStatement):
            return self._set_budget(statement)
        if isinstance(statement, SetEngineStatement):
            return self._set_engine(statement)
        if isinstance(statement, SetWorkersStatement):
            return self._set_workers(statement)
        if isinstance(statement, SetTraceStatement):
            return self._set_trace(statement)
        if isinstance(statement, SetIncrementalStatement):
            return self._set_incremental(statement)
        if isinstance(statement, SqlStatement):
            return self._sql(statement)
        raise TmlExecutionError(f"cannot execute {statement!r}")

    # ------------------------------------------------------------------

    def _build_task(self, statement: Statement):
        """Task object for a planner-backed MINE statement, or None.

        Shared by execution and ``EXPLAIN`` so the plan shown without
        mining is built from exactly the task the run would use.
        """
        if isinstance(statement, MinePeriodsStatement):
            return ValidPeriodTask(
                granularity=statement.granularity,
                thresholds=RuleThresholds(
                    statement.min_support, statement.min_confidence
                ),
                min_frequency=statement.min_frequency,
                min_coverage=statement.min_coverage,
                max_rule_size=statement.max_size,
                max_consequent_size=statement.max_consequent,
            )
        if isinstance(statement, MinePeriodicitiesStatement):
            patterns = tuple(
                CalendarPattern.parse(text) for text in statement.calendars
            )
            return PeriodicityTask(
                granularity=statement.granularity,
                thresholds=RuleThresholds(
                    statement.min_support, statement.min_confidence
                ),
                max_period=statement.max_period,
                min_match=statement.min_match,
                min_repetitions=statement.min_repetitions,
                calendar_patterns=patterns,
                max_rule_size=statement.max_size,
                max_consequent_size=statement.max_consequent,
            )
        if isinstance(statement, MineRulesStatement):
            return ConstrainedTask(
                feature=resolve_feature(statement.feature),
                thresholds=RuleThresholds(
                    statement.min_support, statement.min_confidence
                ),
                granularity=statement.granularity,
                required_items=statement.containing,
                max_rule_size=statement.max_size,
                max_consequent_size=statement.max_consequent,
            )
        return None

    def _mine_periods(self, statement: MinePeriodsStatement) -> ExecutionResult:
        task = self._build_task(statement)
        report = self.environment.miner(statement.source).valid_periods(
            task,
            budget=self.environment.budget,
            token=self.environment.cancel_token,
            granule_hook=self.environment.granule_hook,
        )
        catalog = self.environment.resolve(statement.source).catalog
        return ExecutionResult(statement, report, report.format(catalog, limit=50))

    def _mine_periodicities(
        self, statement: MinePeriodicitiesStatement
    ) -> ExecutionResult:
        task = self._build_task(statement)
        report = self.environment.miner(statement.source).periodicities(
            task,
            interleaved=statement.interleaved,
            budget=self.environment.budget,
            token=self.environment.cancel_token,
            granule_hook=self.environment.granule_hook,
        )
        catalog = self.environment.resolve(statement.source).catalog
        return ExecutionResult(statement, report, report.format(catalog, limit=50))

    def _mine_rules(self, statement: MineRulesStatement) -> ExecutionResult:
        task = self._build_task(statement)
        report = self.environment.miner(statement.source).with_feature(
            task,
            budget=self.environment.budget,
            token=self.environment.cancel_token,
            granule_hook=self.environment.granule_hook,
        )
        catalog = self.environment.resolve(statement.source).catalog
        return ExecutionResult(statement, report, report.format(catalog, limit=50))

    def _mine_itemsets(self, statement: MineItemsetsStatement) -> ExecutionResult:
        from repro.mining.itemset_periods import discover_itemset_periods

        task = ValidPeriodTask(
            granularity=statement.granularity,
            # Itemsets are undirected; the confidence threshold is moot.
            thresholds=RuleThresholds(statement.min_support, 0.0),
            min_frequency=statement.min_frequency,
            min_coverage=statement.min_coverage,
            max_rule_size=statement.max_size,
        )
        database = self.environment.resolve(statement.source)
        report = discover_itemset_periods(
            database, task, counting=self.environment.engine
        )
        return ExecutionResult(
            statement, report, report.format(database.catalog, limit=50)
        )

    def _mine_trends(self, statement: MineTrendsStatement) -> ExecutionResult:
        from repro.mining.trends import detect_trends

        database = self.environment.resolve(statement.source)
        report = detect_trends(
            database,
            statement.granularity,
            min_support=statement.min_support,
            min_total_change=statement.min_change,
            min_r_squared=statement.min_fit,
            max_size=statement.max_size,
            counting=self.environment.engine,
        )
        return ExecutionResult(
            statement, report, report.format(database.catalog, limit=50)
        )

    def _profile(self, statement: ProfileStatement) -> ExecutionResult:
        from repro.system.profile import support_profile

        database = self.environment.resolve(statement.source)
        for label in statement.labels:
            if label not in database.catalog:
                raise TmlExecutionError(
                    f"unknown item label {label!r} in source {statement.source!r}"
                )
        profile = support_profile(
            database, list(statement.labels), statement.granularity
        )
        return ExecutionResult(statement, profile, profile.format(database.catalog))

    def _explain(self, statement: ExplainStatement) -> ExecutionResult:
        """Describe the task a MINE statement would run, without mining."""
        if statement.analyze:
            return self._explain_analyze(statement)
        inner = statement.inner
        database = self.environment.resolve(inner.source)
        properties = [
            ("statement", type(inner).__name__),
            ("source", inner.source),
            ("transactions", len(database)),
            ("min_support", inner.min_support),
            ("min_confidence", inner.min_confidence),
        ]
        granularity = getattr(inner, "granularity", None)
        if granularity is not None:
            from repro.temporal.granularity import units_between

            start, end = database.time_span()
            properties.append(("granularity", str(granularity)))
            properties.append(
                ("units_spanned", len(units_between(start, end, granularity)) or 1)
            )
        if isinstance(inner, MineRulesStatement):
            feature = resolve_feature(inner.feature)
            from repro.mining.constrained import describe_feature, restrict_database

            restricted = restrict_database(
                database, feature, granularity or Granularity.DAY
            )
            properties.append(("feature", describe_feature(feature)))
            properties.append(("transactions_in_feature", len(restricted)))
        if isinstance(inner, MinePeriodicitiesStatement):
            properties.append(("max_period", inner.max_period))
            properties.append(
                ("algorithm", "interleaved" if inner.interleaved else "generic")
            )
        task = self._build_task(inner)
        if task is not None:
            interleaved = bool(getattr(inner, "interleaved", False))
            miner = self.environment.miner(inner.source)
            plan = miner.plan_for(task, interleaved=interleaved)
            properties.extend(plan.describe_rows())
            if isinstance(task, (ValidPeriodTask, PeriodicityTask)):
                decision = miner.refresh_for(task.granularity)
                if decision is not None:
                    properties.extend(decision.describe_rows())
        result = QueryResult(
            columns=("property", "value"),
            rows=tuple((name, str(value)) for name, value in properties),
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _explain_analyze(self, statement: ExplainStatement) -> ExecutionResult:
        """Run the inner MINE under forced tracing; render its telemetry.

        The query executes for real (consuming budget, honouring the
        cancel token), but the result shown is the run's diagnostics and
        span tree rather than its rules.
        """
        previous = self.environment.trace
        self.environment.set_trace(True)
        try:
            inner_result = self.execute_statement(statement.inner)
        finally:
            self.environment.set_trace(previous)
        report = inner_result.payload
        rows = [
            ("statement", type(statement.inner).__name__),
            ("results", str(len(report.results))),
            ("elapsed_seconds", f"{report.elapsed_seconds:.3f}"),
            ("partial", str(report.partial).lower()),
        ]
        diagnostics = report.diagnostics
        if diagnostics is not None:
            rows.extend(
                [
                    ("passes_completed", str(diagnostics.passes_completed)),
                    ("granules_covered", str(diagnostics.granules_covered)),
                    ("candidates_generated", str(diagnostics.candidates_generated)),
                    ("rules_emitted", str(diagnostics.rules_emitted)),
                ]
            )
            if diagnostics.stop_reason is not None:
                rows.append(("stop_reason", diagnostics.stop_reason))
        plan = getattr(report, "plan", None)
        if plan is not None:
            pin = lambda key: " (pinned)" if plan.get(key) else ""  # noqa: E731
            rows.append(("plan: backend", f"{plan['backend']}{pin('backend_pinned')}"))
            rows.append(("plan: workers", f"{plan['workers']}{pin('workers_pinned')}"))
            rows.append(("plan: shards", str(plan["n_shards"])))
            rows.append(
                (
                    "plan: est vs actual seconds",
                    f"{plan['est_seconds']:.3g} vs {report.elapsed_seconds:.3g}",
                )
            )
            if diagnostics is not None:
                est_total = plan["est_candidates"] * max(plan["n_units"], 1)
                rows.append(
                    (
                        "plan: est vs actual candidates",
                        f"{est_total} vs {diagnostics.candidates_generated}",
                    )
                )
        if report.trace is not None:
            for line in format_trace(report.trace).splitlines():
                rows.append(("trace", line))
        result = QueryResult(columns=("property", "value"), rows=tuple(rows))
        return ExecutionResult(statement, result, result.format(limit=0))

    def _show(self, statement: ShowStatement) -> ExecutionResult:
        store = self.environment.store
        if store is None:
            raise TmlExecutionError("SHOW requires a store-backed environment")
        if statement.what == "summary":
            result = summarize(store)
        elif statement.what == "items":
            result = top_items(store, limit=statement.limit or 10)
        else:
            result = volume_by_unit(
                store, statement.granularity or Granularity.MONTH
            )
        return ExecutionResult(statement, result, result.format())

    def _set_budget(self, statement: SetBudgetStatement) -> ExecutionResult:
        if statement.off:
            self.environment.budget = None
            result = QueryResult(
                columns=("property", "value"), rows=(("budget", "off"),)
            )
            return ExecutionResult(statement, result, result.format(limit=0))
        budget = RunBudget(
            max_seconds=statement.max_seconds,
            max_candidates=statement.max_candidates,
            max_rules=statement.max_rules,
            strict=statement.strict,
        )
        self.environment.budget = budget
        result = QueryResult(
            columns=("property", "value"), rows=(("budget", budget.describe()),)
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _set_engine(self, statement: SetEngineStatement) -> ExecutionResult:
        engine = "auto" if statement.off else statement.engine
        self.environment.set_engine(engine)
        result = QueryResult(
            columns=("property", "value"), rows=(("engine", engine),)
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _set_workers(self, statement: SetWorkersStatement) -> ExecutionResult:
        workers = 1 if statement.off else statement.workers
        self.environment.set_workers(workers)
        shown = "auto" if workers is None else str(workers)
        result = QueryResult(
            columns=("property", "value"), rows=(("workers", shown),)
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _set_trace(self, statement: SetTraceStatement) -> ExecutionResult:
        self.environment.set_trace(statement.on)
        result = QueryResult(
            columns=("property", "value"),
            rows=(("trace", "on" if statement.on else "off"),),
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _set_incremental(self, statement: SetIncrementalStatement) -> ExecutionResult:
        self.environment.set_incremental(statement.mode)
        result = QueryResult(
            columns=("property", "value"),
            rows=(("incremental", self.environment.incremental),),
        )
        return ExecutionResult(statement, result, result.format(limit=0))

    def _sql(self, statement: SqlStatement) -> ExecutionResult:
        store = self.environment.store
        if store is None:
            raise TmlExecutionError("SQL requires a store-backed environment")
        if is_mutating_sql(statement.sql):
            result = run_mutation(store, statement.sql)
            # The store changed under any mirrored dataset: reload them
            # and drop their miners so the next MINE sees the new rows.
            self.environment.note_store_mutation()
        else:
            result = run_query(store, statement.sql)
        return ExecutionResult(statement, result, result.format())


def resolve_feature(spec: FeatureSpec):
    """Turn an AST feature into a concrete temporal feature."""
    if isinstance(spec, PeriodFeature):
        return TimeInterval(
            _parse_timestamp(spec.start_text), _parse_timestamp(spec.end_text)
        )
    if isinstance(spec, CalendarFeature):
        return CalendarPattern.parse(spec.pattern_text)
    if isinstance(spec, CyclicFeature):
        return CyclicPeriodicity(
            period=spec.period,
            offset=spec.offset,
            granularity=spec.granularity,
        )
    if isinstance(spec, NamedCalendarFeature):
        from repro.temporal.calendar_algebra import NAMED_CALENDARS

        pattern = NAMED_CALENDARS.get(spec.name.lower())
        if pattern is None:
            known = ", ".join(sorted(NAMED_CALENDARS))
            raise TmlExecutionError(
                f"unknown named calendar {spec.name!r}; known: {known}"
            )
        return pattern
    if isinstance(spec, CalendarComboFeature):
        from repro.temporal.calendar_algebra import CalendarExpression

        left = _as_calendar_expression(resolve_feature(spec.left))
        right = _as_calendar_expression(resolve_feature(spec.right))
        if spec.op == "AND":
            return left.intersect(right)
        if spec.op == "OR":
            return left.union(right)
        return left.difference(right)
    raise TmlExecutionError(f"unsupported feature {spec!r}")


def _as_calendar_expression(feature):
    from repro.temporal.calendar_algebra import CalendarExpression, CalendarPattern

    if isinstance(feature, CalendarExpression):
        return feature
    if isinstance(feature, CalendarPattern):
        return CalendarExpression.of(feature)
    raise TmlExecutionError(
        f"cannot combine {type(feature).__name__} in a calendar expression"
    )


def _parse_timestamp(text: str) -> datetime:
    try:
        return datetime.fromisoformat(text)
    except ValueError:
        raise TmlExecutionError(
            f"cannot parse timestamp {text!r} (expected ISO-8601)"
        ) from None
