"""Abstract syntax of TML statements.

All nodes are frozen dataclasses with a :meth:`render` producing
canonical TML text; the parser/renderer round-trip
(``parse(node.render()) == node``) is a tested invariant.

Date/time literals stay as strings at the AST level and are resolved to
:class:`datetime.datetime` by the executor, so parsing has no calendar
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.temporal.granularity import Granularity


@dataclass(frozen=True)
class PeriodFeature:
    """``DURING PERIOD '<start>' TO '<end>'`` — a concrete interval."""

    start_text: str
    end_text: str

    def render(self) -> str:
        return f"PERIOD '{self.start_text}' TO '{self.end_text}'"


@dataclass(frozen=True)
class CalendarFeature:
    """``DURING CALENDAR '<pattern>'`` — a calendar pattern constraint."""

    pattern_text: str

    def render(self) -> str:
        escaped = self.pattern_text.replace("'", "''")
        return f"CALENDAR '{escaped}'"


@dataclass(frozen=True)
class CyclicFeature:
    """``DURING EVERY <p> <granularity> [OFFSET <o>]`` — a cycle."""

    period: int
    granularity: Granularity
    offset: int = 0

    def render(self) -> str:
        rendered = f"EVERY {self.period} {self.granularity}"
        if self.offset:
            rendered += f" OFFSET {self.offset}"
        return rendered


@dataclass(frozen=True)
class NamedCalendarFeature:
    """``DURING <name>`` — a named calendar such as ``weekends``.

    Names resolve against
    :data:`repro.temporal.calendar_algebra.NAMED_CALENDARS` at execution
    time; the parser accepts any identifier.
    """

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class CalendarComboFeature:
    """``<calendar> AND|OR|MINUS <calendar>`` — a calendar expression.

    Operands are calendar-like features (pattern literals, named
    calendars, or nested combos); the executor compiles the tree into a
    :class:`~repro.temporal.calendar_algebra.CalendarExpression`.
    """

    op: str  # "AND" | "OR" | "MINUS"
    left: "FeatureSpec"
    right: "FeatureSpec"

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


FeatureSpec = Union[
    PeriodFeature,
    CalendarFeature,
    CyclicFeature,
    NamedCalendarFeature,
    CalendarComboFeature,
]


def _render_common(
    min_support: float,
    min_confidence: float,
    max_size: int,
    max_consequent: int,
) -> Tuple[str, list]:
    text = f" WITH SUPPORT >= {min_support:g}, CONFIDENCE >= {min_confidence:g}"
    havings = []
    if max_size:
        havings.append(f"SIZE <= {max_size}")
    # CONSEQUENT is always rendered: its parser default (1) differs from
    # "unbounded" (0), so omitting it would break render/parse round-trips.
    havings.append(f"CONSEQUENT <= {max_consequent}")
    return text, havings


@dataclass(frozen=True)
class MineRulesStatement:
    """Task 3 — ``MINE RULES FROM <src> DURING <feature> ...``."""

    source: str
    feature: FeatureSpec
    min_support: float
    min_confidence: float
    granularity: Optional[Granularity] = None
    containing: Tuple[str, ...] = ()
    max_size: int = 0
    max_consequent: int = 1

    def render(self) -> str:
        text = f"MINE RULES FROM {self.source} DURING {self.feature.render()}"
        if self.granularity is not None:
            text += f" AT GRANULARITY {self.granularity}"
        if self.containing:
            rendered = ", ".join(
                "'" + label.replace("'", "''") + "'" for label in self.containing
            )
            text += f" CONTAINING {rendered}"
        common, havings = _render_common(
            self.min_support, self.min_confidence, self.max_size, self.max_consequent
        )
        text += common
        if havings:
            text += " HAVING " + ", ".join(havings)
        return text + ";"


@dataclass(frozen=True)
class MinePeriodsStatement:
    """Task 1 — ``MINE PERIODS FROM <src> AT GRANULARITY <g> ...``."""

    source: str
    granularity: Granularity
    min_support: float
    min_confidence: float
    min_frequency: float = 1.0
    min_coverage: int = 2
    max_size: int = 0
    max_consequent: int = 1

    def render(self) -> str:
        text = (
            f"MINE PERIODS FROM {self.source} AT GRANULARITY {self.granularity}"
        )
        common, havings = _render_common(
            self.min_support, self.min_confidence, self.max_size, self.max_consequent
        )
        text += common
        head = [
            f"FREQUENCY >= {self.min_frequency:g}",
            f"COVERAGE >= {self.min_coverage}",
        ]
        text += " HAVING " + ", ".join(head + havings)
        return text + ";"


@dataclass(frozen=True)
class MinePeriodicitiesStatement:
    """Task 2 — ``MINE PERIODICITIES FROM <src> AT GRANULARITY <g> ...``."""

    source: str
    granularity: Granularity
    min_support: float
    min_confidence: float
    max_period: int = 12
    min_match: float = 1.0
    min_repetitions: int = 2
    calendars: Tuple[str, ...] = ()
    interleaved: bool = False
    max_size: int = 0
    max_consequent: int = 1

    def render(self) -> str:
        text = (
            f"MINE PERIODICITIES FROM {self.source} "
            f"AT GRANULARITY {self.granularity}"
        )
        common, havings = _render_common(
            self.min_support, self.min_confidence, self.max_size, self.max_consequent
        )
        text += common
        head = [
            f"PERIOD <= {self.max_period}",
            f"MATCH >= {self.min_match:g}",
            f"REPETITIONS >= {self.min_repetitions}",
        ]
        text += " HAVING " + ", ".join(head + havings)
        if self.calendars:
            rendered = ", ".join(
                f"CALENDAR '{c.replace(chr(39), chr(39) * 2)}'" for c in self.calendars
            )
            text += f" INCLUDING {rendered}"
        if self.interleaved:
            text += " USING INTERLEAVED"
        return text + ";"


@dataclass(frozen=True)
class MineItemsetsStatement:
    """Itemset-level Task 1 — ``MINE ITEMSETS FROM <src> ...``.

    Like ``MINE PERIODS`` but undirected: reports the valid periods of
    frequent *itemsets* (no confidence dimension).
    """

    source: str
    granularity: Granularity
    min_support: float
    min_frequency: float = 1.0
    min_coverage: int = 2
    max_size: int = 0

    def render(self) -> str:
        text = (
            f"MINE ITEMSETS FROM {self.source} AT GRANULARITY {self.granularity}"
            f" WITH SUPPORT >= {self.min_support:g}"
        )
        havings = [
            f"FREQUENCY >= {self.min_frequency:g}",
            f"COVERAGE >= {self.min_coverage}",
        ]
        if self.max_size:
            havings.append(f"SIZE <= {self.max_size}")
        return text + " HAVING " + ", ".join(havings) + ";"


@dataclass(frozen=True)
class MineTrendsStatement:
    """Trend detection — ``MINE TRENDS FROM <src> ...``.

    Reports itemsets whose per-unit support follows a clear monotone
    trend (emerging or declining patterns).
    """

    source: str
    granularity: Granularity
    min_support: float
    min_change: float = 0.1
    min_fit: float = 0.5
    max_size: int = 0

    def render(self) -> str:
        text = (
            f"MINE TRENDS FROM {self.source} AT GRANULARITY {self.granularity}"
            f" WITH SUPPORT >= {self.min_support:g}"
        )
        havings = [
            f"CHANGE >= {self.min_change:g}",
            f"FIT >= {self.min_fit:g}",
        ]
        if self.max_size:
            havings.append(f"SIZE <= {self.max_size}")
        return text + " HAVING " + ", ".join(havings) + ";"


@dataclass(frozen=True)
class ProfileStatement:
    """``PROFILE '<label>' {, '<label>'} FROM <src> BY <granularity>``.

    Data understanding: the support-over-time series of one itemset,
    rendered with a sparkline.
    """

    labels: Tuple[str, ...]
    source: str
    granularity: Granularity

    def render(self) -> str:
        rendered = ", ".join(
            "'" + label.replace("'", "''") + "'" for label in self.labels
        )
        return f"PROFILE {rendered} FROM {self.source} BY {self.granularity};"


@dataclass(frozen=True)
class ShowStatement:
    """Data-understanding helpers: ``SHOW SUMMARY | ITEMS | VOLUME BY g``."""

    what: str  # "summary" | "items" | "volume"
    granularity: Optional[Granularity] = None
    limit: Optional[int] = None

    def render(self) -> str:
        if self.what == "summary":
            return "SHOW SUMMARY;"
        if self.what == "items":
            suffix = f" LIMIT {self.limit}" if self.limit else ""
            return f"SHOW ITEMS{suffix};"
        rendered = f"SHOW VOLUME BY {self.granularity or Granularity.MONTH}"
        return rendered + ";"


@dataclass(frozen=True)
class SetBudgetStatement:
    """``SET BUDGET ...`` — session-level limits on subsequent runs.

    ``SET BUDGET OFF;`` clears them; otherwise any combination of
    ``TIME <seconds>``, ``CANDIDATES <n>`` and ``RULES <n>`` terms,
    optionally followed by ``STRICT`` (raise instead of returning a
    partial report).
    """

    max_seconds: Optional[float] = None
    max_candidates: Optional[int] = None
    max_rules: Optional[int] = None
    strict: bool = False
    off: bool = False

    def render(self) -> str:
        if self.off:
            return "SET BUDGET OFF;"
        terms = []
        if self.max_seconds is not None:
            terms.append(f"TIME {self.max_seconds:g}")
        if self.max_candidates is not None:
            terms.append(f"CANDIDATES {self.max_candidates}")
        if self.max_rules is not None:
            terms.append(f"RULES {self.max_rules}")
        text = "SET BUDGET " + ", ".join(terms)
        if self.strict:
            text += " STRICT"
        return text + ";"


@dataclass(frozen=True)
class SetEngineStatement:
    """``SET ENGINE <backend>;`` — pin the counting backend.

    ``SET ENGINE AUTO;`` (the session default) leaves the choice to the
    cost-based planner; ``SET ENGINE OFF;`` is a back-compat alias for
    AUTO.  Backend names are validated at *parse* time against the
    registry in :mod:`repro.columnar.backends`, so a typo fails with the
    valid choices instead of deep in the engine.
    """

    engine: str = ""
    off: bool = False

    def render(self) -> str:
        if self.off:
            return "SET ENGINE OFF;"
        if self.engine == "auto":
            return "SET ENGINE AUTO;"
        return f"SET ENGINE {self.engine};"


@dataclass(frozen=True)
class SetWorkersStatement:
    """``SET WORKERS <n>;`` — pin counting passes to ``n`` processes.

    ``SET WORKERS AUTO;`` (the session default, ``workers=None``) lets
    the planner size the fan-out per query; ``SET WORKERS OFF;``
    (equivalently ``SET WORKERS 1;``) pins serial execution.  Sharded
    runs produce bit-identical results to serial ones (see
    :mod:`repro.parallel`), so this is purely a performance knob.
    """

    workers: Optional[int] = 1
    off: bool = False

    def render(self) -> str:
        if self.off:
            return "SET WORKERS OFF;"
        if self.workers is None:
            return "SET WORKERS AUTO;"
        return f"SET WORKERS {self.workers};"


@dataclass(frozen=True)
class SetIncrementalStatement:
    """``SET INCREMENTAL ON|OFF|AUTO;`` — incremental maintenance mode.

    Controls whether per-unit count state survives appends and is
    delta-refreshed (see :mod:`repro.incremental`): ``OFF`` (the session
    default) re-counts from scratch every run, ``ON`` pins the delta
    path, ``AUTO`` lets the planner fall back to a full recount above
    the dirty-fraction threshold.  Every mode yields bit-identical
    results; this is purely a performance knob.
    """

    mode: str = "off"

    def render(self) -> str:
        return f"SET INCREMENTAL {self.mode.upper()};"


@dataclass(frozen=True)
class SetTraceStatement:
    """``SET TRACE ON|OFF;`` — toggle per-run span tracing.

    With tracing on, every mining result carries a serialized span tree
    (see :mod:`repro.obs.trace`); traced queries bypass the service
    result cache because their timings are run-specific.
    """

    on: bool = False

    def render(self) -> str:
        return "SET TRACE ON;" if self.on else "SET TRACE OFF;"


@dataclass(frozen=True)
class SqlStatement:
    """Raw SQL passed through to the integrated query function."""

    sql: str

    def render(self) -> str:
        text = self.sql.strip()
        return text if text.endswith(";") else text + ";"


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <mine statement>``.

    Plain ``EXPLAIN`` describes the task without running it;
    ``EXPLAIN ANALYZE`` *runs* the query under forced tracing and
    renders the run's counters and span tree instead of its rules.
    """

    inner: Union[
        MineRulesStatement, MinePeriodsStatement, MinePeriodicitiesStatement
    ]
    analyze: bool = False

    def render(self) -> str:
        head = "EXPLAIN ANALYZE " if self.analyze else "EXPLAIN "
        return head + self.inner.render()


Statement = Union[
    MineRulesStatement,
    MinePeriodsStatement,
    MinePeriodicitiesStatement,
    MineItemsetsStatement,
    MineTrendsStatement,
    ExplainStatement,
    ProfileStatement,
    SetBudgetStatement,
    SetEngineStatement,
    SetIncrementalStatement,
    SetTraceStatement,
    SetWorkersStatement,
    ShowStatement,
    SqlStatement,
]
