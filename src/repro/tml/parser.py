"""Recursive-descent parser for TML.

Grammar (keywords case-insensitive; ``[...]`` optional, ``{...}`` repeated)::

    script        := statement*
    statement     := mine_stmt | explain_stmt | profile_stmt | show_stmt
                   | sql_stmt
    explain_stmt  := EXPLAIN [ANALYZE] mine_stmt
    mine_stmt     := MINE RULES FROM source DURING feature
                       [AT GRANULARITY g]
                       [CONTAINING string {',' string}]
                       with_clause [having_clause] ';'
                   | MINE PERIODS FROM source AT GRANULARITY g
                       with_clause [having_clause] ';'
                   | MINE PERIODICITIES FROM source AT GRANULARITY g
                       with_clause [having_clause]
                       [INCLUDING calendar {',' calendar}]
                       [USING INTERLEAVED] ';'
                   | MINE ITEMSETS FROM source AT GRANULARITY g
                       WITH SUPPORT '>=' number [having_clause] ';'
    profile_stmt  := PROFILE string {',' string} FROM source BY g ';'
    feature       := feature_term {(AND | OR | MINUS) feature_term}
                     -- AND/OR/MINUS combine calendar-like terms only
    feature_term  := PERIOD string TO string
                   | CALENDAR string
                   | EVERY number g [OFFSET number]
                   | ident                      -- a named calendar
    with_clause   := WITH threshold {',' threshold}
    threshold     := SUPPORT '>=' number | CONFIDENCE '>=' number
    having_clause := HAVING having {',' having}
    having        := FREQUENCY '>=' number | COVERAGE '>=' number
                   | PERIOD '<=' number | MATCH '>=' number
                   | REPETITIONS '>=' number
                   | SIZE '<=' number | CONSEQUENT '<=' number
    calendar      := CALENDAR string
    show_stmt     := SHOW SUMMARY ';' | SHOW ITEMS [LIMIT number] ';'
                   | SHOW VOLUME BY g ';'
    set_stmt      := SET BUDGET OFF ';'
                   | SET BUDGET budget_term {',' budget_term} [STRICT] ';'
                   | SET ENGINE (ident | AUTO | OFF) ';'
                   | SET WORKERS (number | AUTO | OFF) ';'
                   | SET TRACE (ON | OFF) ';'
                   | SET INCREMENTAL (ON | OFF | AUTO) ';'
    budget_term   := TIME number | CANDIDATES number | RULES number
    sql_stmt      := anything else, passed through verbatim up to ';'

Statements are first split on semicolons at the raw-text level
(respecting single-quoted strings), so SQL passthrough never has to
satisfy the TML lexer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.columnar.backends import available_backends
from repro.errors import TmlParseError
from repro.temporal.granularity import Granularity
from repro.tml.ast import (
    CalendarComboFeature,
    CalendarFeature,
    CyclicFeature,
    ExplainStatement,
    FeatureSpec,
    MineItemsetsStatement,
    MinePeriodicitiesStatement,
    MinePeriodsStatement,
    MineRulesStatement,
    ProfileStatement,
    NamedCalendarFeature,
    SetBudgetStatement,
    SetEngineStatement,
    SetIncrementalStatement,
    SetTraceStatement,
    SetWorkersStatement,
    ShowStatement,
    SqlStatement,
    Statement,
)
from repro.tml.lexer import tokenize
from repro.tml.ast import PeriodFeature
from repro.tml.tokens import Token, TokenType


def _is_calendar_like(feature) -> bool:
    """True for features that participate in calendar algebra."""
    return isinstance(
        feature, (CalendarFeature, NamedCalendarFeature, CalendarComboFeature)
    )


def split_statements(text: str) -> List[str]:
    """Split source text into ';'-terminated statements.

    Semicolons inside single-quoted strings do not split; ``--`` comments
    run to end of line.  Trailing whitespace-only fragments are dropped.
    """
    statements: List[str] = []
    current: List[str] = []
    in_string = False
    index = 0
    while index < len(text):
        char = text[index]
        if in_string:
            current.append(char)
            if char == "'":
                if index + 1 < len(text) and text[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == "-" and text[index : index + 2] == "--":
            while index < len(text) and text[index] != "\n":
                index += 1
            continue
        elif char == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


def parse_script(text: str) -> List[Statement]:
    """Parse a multi-statement TML script."""
    return [parse_statement(chunk) for chunk in split_statements(text)]


def parse_statement(text: str) -> Statement:
    """Parse exactly one statement (terminating ';' optional)."""
    stripped = text.strip().rstrip(";").strip()
    if not stripped:
        raise TmlParseError("empty statement")
    head = stripped.split(None, 1)[0].upper()
    if head == "MINE":
        return _Parser(stripped).parse_mine()
    if head == "EXPLAIN":
        return _Parser(stripped).parse_explain()
    if head == "SHOW":
        return _Parser(stripped).parse_show()
    if head == "PROFILE":
        return _Parser(stripped).parse_profile()
    if head == "SET":
        return _Parser(stripped).parse_set()
    return SqlStatement(sql=stripped)


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> TmlParseError:
        token = self._peek()
        return TmlParseError(
            f"{message}, found {token}", token.line, token.column
        )

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names)}")
        return self._advance()

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(f"expected {what}")
        return self._advance()

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token.type is not TokenType.OP or token.value != op:
            raise self._error(f"expected {op!r}")
        self._advance()

    def _number(self, what: str) -> float:
        return float(self._expect(TokenType.NUMBER, what).value)

    def _integer(self, what: str) -> int:
        token = self._expect(TokenType.NUMBER, what)
        if "." in token.value:
            raise TmlParseError(
                f"expected an integer {what}, got {token.value}",
                token.line,
                token.column,
            )
        return int(token.value)

    def _granularity(self) -> Granularity:
        token = self._peek()
        if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected a granularity name")
        self._advance()
        try:
            return Granularity.parse(token.value)
        except Exception:
            raise TmlParseError(
                f"unknown granularity {token.value!r}", token.line, token.column
            ) from None

    def _finish(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- statements -----------------------------------------------------

    def parse_show(self) -> ShowStatement:
        self._expect_keyword("SHOW")
        if self._accept_keyword("SUMMARY"):
            self._finish()
            return ShowStatement(what="summary")
        if self._accept_keyword("ITEMS"):
            limit = None
            if self._accept_keyword("LIMIT"):
                limit = self._integer("limit")
            self._finish()
            return ShowStatement(what="items", limit=limit)
        if self._accept_keyword("VOLUME"):
            self._expect_keyword("BY")
            granularity = self._granularity()
            self._finish()
            return ShowStatement(what="volume", granularity=granularity)
        raise self._error("expected SUMMARY, ITEMS or VOLUME")

    def parse_set(
        self,
    ) -> Union[
        SetBudgetStatement,
        SetEngineStatement,
        SetIncrementalStatement,
        SetTraceStatement,
        SetWorkersStatement,
    ]:
        self._expect_keyword("SET")
        if self._accept_keyword("ENGINE"):
            return self._parse_set_engine()
        if self._accept_keyword("WORKERS"):
            return self._parse_set_workers()
        if self._accept_keyword("TRACE"):
            return self._parse_set_trace()
        if self._accept_keyword("INCREMENTAL"):
            return self._parse_set_incremental()
        self._expect_keyword("BUDGET")
        if self._accept_keyword("OFF"):
            self._finish()
            return SetBudgetStatement(off=True)
        max_seconds: Optional[float] = None
        max_candidates: Optional[int] = None
        max_rules: Optional[int] = None
        while True:
            token = self._expect_keyword("TIME", "CANDIDATES", "RULES")
            if token.value == "TIME":
                if max_seconds is not None:
                    raise TmlParseError(
                        "duplicate budget term TIME", token.line, token.column
                    )
                max_seconds = self._number("a time budget in seconds")
            elif token.value == "CANDIDATES":
                if max_candidates is not None:
                    raise TmlParseError(
                        "duplicate budget term CANDIDATES", token.line, token.column
                    )
                max_candidates = self._integer("a candidate budget")
            else:
                if max_rules is not None:
                    raise TmlParseError(
                        "duplicate budget term RULES", token.line, token.column
                    )
                max_rules = self._integer("a rule budget")
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        strict = bool(self._accept_keyword("STRICT"))
        self._finish()
        return SetBudgetStatement(
            max_seconds=max_seconds,
            max_candidates=max_candidates,
            max_rules=max_rules,
            strict=strict,
        )

    def _parse_set_engine(self) -> SetEngineStatement:
        if self._accept_keyword("OFF"):
            self._finish()
            return SetEngineStatement(off=True)
        token = self._expect(TokenType.IDENT, "a counting engine name or AUTO")
        name = token.value.lower()
        if name != "auto" and name not in available_backends():
            choices = ", ".join(["AUTO"] + available_backends())
            raise TmlParseError(
                f"unknown counting engine {token.value!r}; "
                f"valid choices: {choices}",
                token.line,
                token.column,
            )
        self._finish()
        return SetEngineStatement(engine=name)

    def _parse_set_workers(self) -> SetWorkersStatement:
        if self._accept_keyword("OFF"):
            self._finish()
            return SetWorkersStatement(workers=1, off=True)
        token = self._peek()
        if token.type is TokenType.IDENT and token.value.lower() == "auto":
            self._advance()
            self._finish()
            return SetWorkersStatement(workers=None)
        valid = "valid choices: AUTO, OFF, or an integer >= 1"
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise TmlParseError(
                f"invalid worker count {token.value!r}; {valid}",
                token.line,
                token.column,
            )
        workers = int(token.value)
        if workers < 1:
            raise TmlParseError(
                f"invalid worker count {token.value!r}; {valid}",
                token.line,
                token.column,
            )
        self._advance()
        self._finish()
        return SetWorkersStatement(workers=workers)

    def _parse_set_trace(self) -> SetTraceStatement:
        token = self._expect_keyword("ON", "OFF")
        self._finish()
        return SetTraceStatement(on=token.value == "ON")

    def _parse_set_incremental(self) -> SetIncrementalStatement:
        if self._accept_keyword("ON"):
            self._finish()
            return SetIncrementalStatement(mode="on")
        if self._accept_keyword("OFF"):
            self._finish()
            return SetIncrementalStatement(mode="off")
        token = self._peek()
        if token.type is TokenType.IDENT and token.value.lower() == "auto":
            self._advance()
            self._finish()
            return SetIncrementalStatement(mode="auto")
        raise self._error("expected ON, OFF or AUTO")

    def parse_explain(self) -> Statement:
        self._expect_keyword("EXPLAIN")
        analyze = bool(self._accept_keyword("ANALYZE"))
        inner = self.parse_mine()
        return ExplainStatement(inner=inner, analyze=analyze)  # type: ignore[arg-type]

    def parse_mine(self) -> Statement:
        self._expect_keyword("MINE")
        kind = self._expect_keyword(
            "RULES", "PERIODS", "PERIODICITIES", "ITEMSETS", "TRENDS"
        )
        self._expect_keyword("FROM")
        source = self._expect(TokenType.IDENT, "a source name").value
        if kind.value == "RULES":
            return self._mine_rules(source)
        if kind.value == "PERIODS":
            return self._mine_periods(source)
        if kind.value == "ITEMSETS":
            return self._mine_itemsets(source)
        if kind.value == "TRENDS":
            return self._mine_trends(source)
        return self._mine_periodicities(source)

    def parse_profile(self) -> Statement:
        self._expect_keyword("PROFILE")
        labels: List[str] = [self._expect(TokenType.STRING, "an item label").value]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            labels.append(self._expect(TokenType.STRING, "an item label").value)
        self._expect_keyword("FROM")
        source = self._expect(TokenType.IDENT, "a source name").value
        self._expect_keyword("BY")
        granularity = self._granularity()
        self._finish()
        return ProfileStatement(
            labels=tuple(labels), source=source, granularity=granularity
        )

    def _mine_trends(self, source: str) -> "MineTrendsStatement":
        from repro.tml.ast import MineTrendsStatement

        self._expect_keyword("AT")
        self._expect_keyword("GRANULARITY")
        granularity = self._granularity()
        self._expect_keyword("WITH")
        self._expect_keyword("SUPPORT")
        self._expect_op(">=")
        min_support = self._number("a support threshold")
        havings = self._having_clause(allowed=("CHANGE", "FIT", "SIZE"))
        self._finish()
        return MineTrendsStatement(
            source=source,
            granularity=granularity,
            min_support=min_support,
            min_change=float(havings.get("CHANGE", 0.1)),
            min_fit=float(havings.get("FIT", 0.5)),
            max_size=int(havings.get("SIZE", 0)),
        )

    def _mine_itemsets(self, source: str) -> MineItemsetsStatement:
        self._expect_keyword("AT")
        self._expect_keyword("GRANULARITY")
        granularity = self._granularity()
        self._expect_keyword("WITH")
        self._expect_keyword("SUPPORT")
        self._expect_op(">=")
        min_support = self._number("a support threshold")
        havings = self._having_clause(allowed=("FREQUENCY", "COVERAGE", "SIZE"))
        self._finish()
        return MineItemsetsStatement(
            source=source,
            granularity=granularity,
            min_support=min_support,
            min_frequency=float(havings.get("FREQUENCY", 1.0)),
            min_coverage=int(havings.get("COVERAGE", 2)),
            max_size=int(havings.get("SIZE", 0)),
        )

    def _mine_rules(self, source: str) -> MineRulesStatement:
        self._expect_keyword("DURING")
        feature = self._feature()
        granularity: Optional[Granularity] = None
        if self._accept_keyword("AT"):
            self._expect_keyword("GRANULARITY")
            granularity = self._granularity()
        containing: List[str] = []
        if self._accept_keyword("CONTAINING"):
            while True:
                containing.append(
                    self._expect(TokenType.STRING, "an item label").value
                )
                if self._peek().type is TokenType.COMMA:
                    self._advance()
                    continue
                break
        min_support, min_confidence = self._with_clause()
        havings = self._having_clause(allowed=("SIZE", "CONSEQUENT"))
        self._finish()
        return MineRulesStatement(
            source=source,
            feature=feature,
            granularity=granularity,
            containing=tuple(containing),
            min_support=min_support,
            min_confidence=min_confidence,
            max_size=int(havings.get("SIZE", 0)),
            max_consequent=int(havings.get("CONSEQUENT", 1)),
        )

    def _mine_periods(self, source: str) -> MinePeriodsStatement:
        self._expect_keyword("AT")
        self._expect_keyword("GRANULARITY")
        granularity = self._granularity()
        min_support, min_confidence = self._with_clause()
        havings = self._having_clause(
            allowed=("FREQUENCY", "COVERAGE", "SIZE", "CONSEQUENT")
        )
        self._finish()
        return MinePeriodsStatement(
            source=source,
            granularity=granularity,
            min_support=min_support,
            min_confidence=min_confidence,
            min_frequency=float(havings.get("FREQUENCY", 1.0)),
            min_coverage=int(havings.get("COVERAGE", 2)),
            max_size=int(havings.get("SIZE", 0)),
            max_consequent=int(havings.get("CONSEQUENT", 1)),
        )

    def _mine_periodicities(self, source: str) -> MinePeriodicitiesStatement:
        self._expect_keyword("AT")
        self._expect_keyword("GRANULARITY")
        granularity = self._granularity()
        min_support, min_confidence = self._with_clause()
        havings = self._having_clause(
            allowed=("PERIOD", "MATCH", "REPETITIONS", "SIZE", "CONSEQUENT")
        )
        calendars: List[str] = []
        if self._accept_keyword("INCLUDING"):
            while True:
                self._expect_keyword("CALENDAR")
                calendars.append(self._expect(TokenType.STRING, "a pattern string").value)
                if self._peek().type is TokenType.COMMA:
                    self._advance()
                    continue
                break
        interleaved = False
        if self._accept_keyword("USING"):
            self._expect_keyword("INTERLEAVED")
            interleaved = True
        self._finish()
        return MinePeriodicitiesStatement(
            source=source,
            granularity=granularity,
            min_support=min_support,
            min_confidence=min_confidence,
            max_period=int(havings.get("PERIOD", 12)),
            min_match=float(havings.get("MATCH", 1.0)),
            min_repetitions=int(havings.get("REPETITIONS", 2)),
            calendars=tuple(calendars),
            interleaved=interleaved,
            max_size=int(havings.get("SIZE", 0)),
            max_consequent=int(havings.get("CONSEQUENT", 1)),
        )

    # -- clauses ----------------------------------------------------------

    def _feature(self) -> FeatureSpec:
        feature = self._feature_term()
        # Calendar-like features combine with AND / OR / MINUS
        # (left-associative).
        while self._peek().is_keyword("AND", "OR", "MINUS"):
            operator = self._advance().value
            if not _is_calendar_like(feature):
                raise self._error(
                    f"{operator} combines calendar features only"
                )
            right = self._feature_term()
            if not _is_calendar_like(right):
                raise self._error(
                    f"{operator} combines calendar features only"
                )
            feature = CalendarComboFeature(op=operator, left=feature, right=right)
        return feature

    def _feature_term(self) -> FeatureSpec:
        if self._accept_keyword("PERIOD"):
            start = self._expect(TokenType.STRING, "a start timestamp").value
            self._expect_keyword("TO")
            end = self._expect(TokenType.STRING, "an end timestamp").value
            return PeriodFeature(start_text=start, end_text=end)
        if self._accept_keyword("CALENDAR"):
            pattern = self._expect(TokenType.STRING, "a pattern string").value
            return CalendarFeature(pattern_text=pattern)
        if self._accept_keyword("EVERY"):
            period = self._integer("a cycle period")
            granularity = self._granularity()
            offset = 0
            if self._accept_keyword("OFFSET"):
                offset = self._integer("a cycle offset")
            return CyclicFeature(period=period, granularity=granularity, offset=offset)
        if self._peek().type is TokenType.IDENT:
            name = self._advance().value
            return NamedCalendarFeature(name=name)
        raise self._error(
            "expected PERIOD, CALENDAR, EVERY or a named calendar"
        )

    def _with_clause(self) -> Tuple[float, float]:
        self._expect_keyword("WITH")
        min_support: Optional[float] = None
        min_confidence: Optional[float] = None
        while True:
            token = self._expect_keyword("SUPPORT", "CONFIDENCE")
            self._expect_op(">=")
            value = self._number("a threshold")
            if token.value == "SUPPORT":
                min_support = value
            else:
                min_confidence = value
            if self._peek().type is TokenType.COMMA or self._peek().is_keyword("AND"):
                self._advance()
                continue
            break
        if min_support is None:
            raise self._error("WITH clause must set SUPPORT")
        if min_confidence is None:
            raise self._error("WITH clause must set CONFIDENCE")
        return min_support, min_confidence

    _HAVING_OPS = {
        "FREQUENCY": ">=",
        "COVERAGE": ">=",
        "PERIOD": "<=",
        "MATCH": ">=",
        "REPETITIONS": ">=",
        "SIZE": "<=",
        "CONSEQUENT": "<=",
        "CHANGE": ">=",
        "FIT": ">=",
    }

    def _having_clause(self, allowed: Tuple[str, ...]) -> dict:
        havings: dict = {}
        if not self._accept_keyword("HAVING"):
            return havings
        while True:
            token = self._expect_keyword(*allowed)
            self._expect_op(self._HAVING_OPS[token.value])
            if token.value in havings:
                raise TmlParseError(
                    f"duplicate HAVING term {token.value}", token.line, token.column
                )
            havings[token.value] = self._number(f"a {token.value.lower()} bound")
            if self._peek().type is TokenType.COMMA or self._peek().is_keyword("AND"):
                self._advance()
                continue
            break
        return havings
