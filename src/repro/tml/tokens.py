"""Token model of the Temporal Mining Language (TML).

TML is the paper's mining language, "integrated with Oracle SQL"; here
the SQL side is SQLite and the TML side is this grammar (see
:mod:`repro.tml.parser` for the full syntax).  The lexer produces a flat
token stream; keywords are case-insensitive, identifiers preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class TokenType(enum.Enum):
    """Lexical categories of TML."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"          # >= <= = < >
    COMMA = "comma"
    SEMICOLON = "semicolon"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EOF = "eof"


KEYWORDS: Tuple[str, ...] = (
    "MINE", "RULES", "PERIODS", "PERIODICITIES",
    "FROM", "DURING", "AT", "GRANULARITY", "WITH", "HAVING",
    "SUPPORT", "CONFIDENCE", "FREQUENCY", "COVERAGE",
    "PERIOD", "MATCH", "REPETITIONS", "SIZE", "CONSEQUENT",
    "CALENDAR", "EVERY", "OFFSET", "TO", "INCLUDING", "USING",
    "INTERLEAVED", "SHOW", "SUMMARY", "ITEMS", "VOLUME", "BY",
    "LIMIT", "AND", "EXPLAIN", "OR", "MINUS", "CONTAINING",
    "ITEMSETS", "PROFILE", "TRENDS", "CHANGE", "FIT",
    "SET", "BUDGET", "TIME", "CANDIDATES", "STRICT", "OFF", "ENGINE",
    "WORKERS", "TRACE", "ON", "ANALYZE", "INCREMENTAL",
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position.

    ``line``/``column`` are 1-based for error messages; ``offset`` is the
    absolute character index of the token's first character, which the
    parser uses to slice raw SQL statements out of the source text.
    """

    type: TokenType
    value: str
    line: int
    column: int
    offset: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<end of input>"
        return repr(self.value)
