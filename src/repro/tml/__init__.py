"""TML — the Temporal Mining Language.

A small declarative language for the paper's three temporal mining
tasks, integrated with SQL passthrough (the 'integrated query and
mining' idea of IQMS)::

    MINE PERIODS FROM sales AT GRANULARITY month
      WITH SUPPORT >= 0.2, CONFIDENCE >= 0.6
      HAVING FREQUENCY >= 0.9, COVERAGE >= 2;

    MINE PERIODICITIES FROM sales AT GRANULARITY day
      WITH SUPPORT >= 0.2, CONFIDENCE >= 0.6
      HAVING PERIOD <= 31, REPETITIONS >= 4
      INCLUDING CALENDAR 'weekday=5|6';

    MINE RULES FROM sales DURING CALENDAR 'month=12'
      WITH SUPPORT >= 0.3, CONFIDENCE >= 0.6;

    SELECT COUNT(DISTINCT tid) FROM transactions;
"""

from repro.tml.ast import (
    CalendarFeature,
    ExplainStatement,
    NamedCalendarFeature,
    CyclicFeature,
    FeatureSpec,
    MineItemsetsStatement,
    MinePeriodicitiesStatement,
    MinePeriodsStatement,
    MineRulesStatement,
    ProfileStatement,
    CalendarComboFeature,
    PeriodFeature,
    ShowStatement,
    SqlStatement,
    Statement,
)
from repro.tml.canonical import canonicalize, canonicalize_statement
from repro.tml.executor import (
    ExecutionEnvironment,
    ExecutionResult,
    TmlExecutor,
    resolve_feature,
)
from repro.tml.lexer import tokenize
from repro.tml.parser import parse_script, parse_statement, split_statements

__all__ = [
    "CalendarFeature",
    "CyclicFeature",
    "ExplainStatement",
    "ExecutionEnvironment",
    "ExecutionResult",
    "FeatureSpec",
    "CalendarComboFeature",
    "MineItemsetsStatement",
    "MinePeriodicitiesStatement",
    "MinePeriodsStatement",
    "MineRulesStatement",
    "NamedCalendarFeature",
    "PeriodFeature",
    "ProfileStatement",
    "ShowStatement",
    "SqlStatement",
    "Statement",
    "TmlExecutor",
    "canonicalize",
    "canonicalize_statement",
    "parse_script",
    "parse_statement",
    "resolve_feature",
    "split_statements",
    "tokenize",
]
