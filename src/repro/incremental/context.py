"""Epoch-based dirty tracking and delta re-counting of per-unit supports.

:class:`IncrementalContext` is a :class:`~repro.mining.context.TemporalContext`
that remembers per-unit count rows across runs and, after an append,
re-counts only the *dirty* units — the time units an appended
transaction actually landed in — splicing fresh values into the cached
rows.  Correctness rests on one fact: a per-unit support count is a pure
function of that unit's transactions, so recount-and-splice is
bit-identical to counting every unit from scratch (the differential
suite in ``tests/incremental`` pins this).

Staleness is tracked with *epochs* rather than a single dirty mask:

* the context has a current ``epoch`` (bumped once per append batch by
  :meth:`rebased`) and a per-unit array ``_unit_epochs`` recording the
  epoch at which each unit last changed;
* every cached row carries the epoch it was counted at; the row is
  stale exactly in the units where ``_unit_epochs > row_epoch``.

Rows cached at different times therefore each see precisely their own
stale set, and there is no "when do we clear the mask" problem — a
recount simply commits the row at the current epoch.  Cache commits
happen only *after* a counting pass returns, so a
:class:`~repro.runtime.budget.RunInterrupted` mid-pass can never poison
the cache with partial counts.

Calls with a ``unit_mask`` or per-candidate masks (the cycle-skipping
paths) bypass the cache entirely: their skipped-unit zeros are not real
counts and must never be committed.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.columnar.encoded import EncodedDatabase
from repro.core.items import Item, Itemset
from repro.core.transactions import TransactionDatabase
from repro.mining.context import TemporalContext
from repro.obs.metrics import MetricsRegistry
from repro.runtime.budget import RunMonitor
from repro.temporal.granularity import Granularity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.parallel.executor import ShardedExecutor


class IncrementalContext(TemporalContext):
    """A temporal context whose per-unit counts survive appends.

    Drop-in compatible with :class:`TemporalContext` — every counting
    method returns exactly what the base class would — plus the
    incremental protocol: :meth:`rebased` folds an append in,
    :meth:`dirty_fraction` feeds the planner's refresh decision, and
    :meth:`reset_cache` falls back to cold counting.
    """

    #: Cap on cached candidate rows; beyond it, new rows are counted but
    #: not retained (a perf valve, never a correctness concern).
    MAX_CACHED_ROWS = 65536

    def __init__(
        self,
        database: Union[TransactionDatabase, EncodedDatabase],
        granularity: Granularity,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(database, granularity)
        self.metrics = metrics
        #: Bumped once per applied append batch.
        self.epoch = 0
        #: Epoch at which each unit last changed (0 = initial load).
        self._unit_epochs = np.zeros(self.n_units, dtype=np.int64)
        #: Cached pass-1 matrix (n_items × n_units) and its commit epoch.
        self._item_matrix: Optional[np.ndarray] = None
        self._item_epoch = -1
        #: Cached candidate rows: itemset -> (row, commit epoch).
        self._rows: Dict[Itemset, Tuple[np.ndarray, int]] = {}

    # ------------------------------------------------------------------
    # staleness accounting
    # ------------------------------------------------------------------

    def has_state(self) -> bool:
        """Whether any per-unit counts are cached to delta-maintain."""
        return self._item_matrix is not None

    def dirty_mask(self, row_epoch: int) -> np.ndarray:
        """Boolean per-unit mask: changed since ``row_epoch``."""
        return self._unit_epochs > row_epoch

    def dirty_units(self) -> FrozenSet[int]:
        """Absolute indices of units stale w.r.t. the cached pass-1 counts.

        Every unit counts as dirty while no state is cached.
        """
        if self._item_matrix is None:
            return frozenset(self.unit_range)
        offsets = np.flatnonzero(self.dirty_mask(self._item_epoch))
        return frozenset(self.to_absolute(int(offset)) for offset in offsets)

    def dirty_unit_count(self) -> int:
        if self._item_matrix is None:
            return self.n_units
        return int(np.count_nonzero(self.dirty_mask(self._item_epoch)))

    def dirty_fraction(self) -> float:
        """Fraction of units needing a recount (1.0 while cold)."""
        if not self.n_units:
            return 0.0
        return self.dirty_unit_count() / self.n_units

    def reset_cache(self) -> None:
        """Drop all cached rows — subsequent counting runs cold."""
        self._item_matrix = None
        self._item_epoch = -1
        self._rows.clear()

    def cached_row_count(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def _record_delta(self, dirty_units: int, seconds: float) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_incremental_dirty_units_total",
            "Time units re-counted by the incremental delta path",
        ).inc(dirty_units)
        self.metrics.counter(
            "repro_incremental_delta_seconds_total",
            "Wall seconds spent in incremental delta re-counts",
        ).inc(seconds)

    # ------------------------------------------------------------------
    # counting overrides
    # ------------------------------------------------------------------

    def count_items_per_unit(
        self,
        monitor: Optional[RunMonitor] = None,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Dict[Item, np.ndarray]:
        matrix = self._item_matrix
        if matrix is None:
            counted = super().count_items_per_unit(monitor=monitor, executor=executor)
            matrix = np.zeros((self.encoded.n_items, self.n_units), dtype=np.int64)
            for item, row in counted.items():
                matrix[item] = row
            self._item_matrix = matrix
            self._item_epoch = self.epoch
            return counted
        stale = self.dirty_mask(self._item_epoch)
        dirty = int(np.count_nonzero(stale))
        started = perf_counter()
        n_items = self.encoded.n_items
        fresh: Optional[np.ndarray] = None
        if dirty:
            fresh = np.zeros((n_items, self.n_units), dtype=np.int64)
            fresh[: matrix.shape[0]] = matrix
        ids = self.encoded.item_ids
        offsets = self.encoded.offsets
        bounds = self._bounds
        # Tick every unit, not just the stale ones: a clean unit served
        # from cache is still covered by this pass, and the run report
        # (granules, budget charge, chaos hook) must match a cold run
        # granule for granule.
        for offset in range(self.n_units):
            if monitor is not None:
                monitor.tick_granule(offset)
            if fresh is None or not stale[offset]:
                continue
            lo, hi = bounds[offset], bounds[offset + 1]
            if hi > lo:
                unit_ids = ids[offsets[lo] : offsets[hi]]
                fresh[:, offset] = np.bincount(unit_ids, minlength=n_items)
            else:
                fresh[:, offset] = 0
        if fresh is not None:
            # Commit only after the full recount: RunInterrupted above
            # leaves the previous matrix (and its epoch) untouched.
            self._item_matrix = matrix = fresh
            self._item_epoch = self.epoch
            self._record_delta(dirty, perf_counter() - started)
        present = np.flatnonzero(matrix.any(axis=1))
        return {int(item): matrix[item] for item in present}

    def count_candidates_per_unit(
        self,
        candidates: Sequence[Itemset],
        unit_mask: Optional[np.ndarray] = None,
        counting: str = "auto",
        monitor: Optional[RunMonitor] = None,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Dict[Itemset, np.ndarray]:
        if unit_mask is not None or not candidates:
            # Masked counting produces skip-zeros, not real counts.
            return super().count_candidates_per_unit(
                candidates,
                unit_mask=unit_mask,
                counting=counting,
                monitor=monitor,
                executor=executor,
            )
        results: Dict[Itemset, np.ndarray] = {}
        fresh: list = []
        by_epoch: Dict[int, list] = {}
        for candidate in candidates:
            entry = self._rows.get(candidate)
            if entry is None:
                fresh.append(candidate)
            else:
                by_epoch.setdefault(entry[1], []).append(candidate)

        # One pass over the candidate list ticks every unit exactly once,
        # exactly like the base class's serial loop — cached units count
        # as covered, and the budget/chaos seam fires per granule here
        # rather than inside the (monitor-less) recount calls below, so
        # a warm run's report is granule-identical to a cold one.
        if monitor is not None:
            for offset in range(self.n_units):
                monitor.tick_granule(offset)

        for row_epoch in sorted(by_epoch):
            group = by_epoch[row_epoch]
            stale = self.dirty_mask(row_epoch)
            dirty = int(np.count_nonzero(stale))
            if not dirty:
                for candidate in group:
                    results[candidate] = self._rows[candidate][0].copy()
                continue
            started = perf_counter()
            recounted = super().count_candidates_per_unit(
                group,
                unit_mask=stale,
                counting=counting,
                monitor=None,
                executor=executor,
            )
            for candidate in group:
                spliced = np.where(stale, recounted[candidate], self._rows[candidate][0])
                self._rows[candidate] = (spliced, self.epoch)
                results[candidate] = spliced.copy()
            self._record_delta(dirty, perf_counter() - started)

        if fresh:
            counted = super().count_candidates_per_unit(
                fresh,
                counting=counting,
                monitor=None,
                executor=executor,
            )
            retain = len(self._rows) < self.MAX_CACHED_ROWS
            for candidate in fresh:
                row = counted[candidate]
                if retain and len(self._rows) < self.MAX_CACHED_ROWS:
                    self._rows[candidate] = (row.copy(), self.epoch)
                results[candidate] = row
        return results

    # ------------------------------------------------------------------
    # append protocol
    # ------------------------------------------------------------------

    def rebased(
        self,
        new_encoded: EncodedDatabase,
        touched_units: Iterable[int],
    ) -> "IncrementalContext":
        """A new context over ``new_encoded`` inheriting this cache.

        ``touched_units`` are the *absolute* unit indices containing at
        least one appended transaction; they (and only they) become
        dirty at the new epoch.  Units the append grew the span with but
        left empty stay clean — a zero count is already exact for them.
        Cached rows and the pass-1 matrix are realigned by absolute unit
        index and keep their commit epochs, so each sees exactly the
        units that changed since it was counted.
        """
        clone = IncrementalContext(new_encoded, self.granularity, metrics=self.metrics)
        clone.epoch = self.epoch + 1
        shift = self.first_unit - clone.first_unit
        n_old, n_new = self.n_units, clone.n_units
        if shift < 0 or shift + n_old > n_new:
            # The new span does not cover the old one — appends can only
            # widen the span, so this indicates caller misuse; run cold.
            return clone

        epochs = np.zeros(n_new, dtype=np.int64)
        epochs[shift : shift + n_old] = self._unit_epochs
        for unit in touched_units:
            offset = unit - clone.first_unit
            if 0 <= offset < n_new:
                epochs[offset] = clone.epoch
        clone._unit_epochs = epochs

        if self._item_matrix is not None:
            matrix = np.zeros((new_encoded.n_items, n_new), dtype=np.int64)
            matrix[: self._item_matrix.shape[0], shift : shift + n_old] = self._item_matrix
            clone._item_matrix = matrix
            clone._item_epoch = self._item_epoch
        for candidate, (row, row_epoch) in self._rows.items():
            wide = np.zeros(n_new, dtype=np.int64)
            wide[shift : shift + n_old] = row
            clone._rows[candidate] = (wide, row_epoch)
        return clone
