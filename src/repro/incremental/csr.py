"""Append-friendly maintenance of the CSR columnar layout.

:class:`~repro.columnar.encoded.EncodedDatabase` is immutable once built
(downstream memos depend on that), so an append produces a *new*
encoded database sharing as much of the old one as the ordering
invariant allows:

* when every new transaction sorts after the existing tail — the common
  streaming case — the four columns are extended by pure concatenation
  (``O(batch)`` plus one copy of the old arrays, no Python-level work on
  old rows);
* out-of-order batches fall back to a stable merge by (timestamp, tid)
  that copies old rows in contiguous *runs* between insertion points,
  never basket by basket.

Either way the result is exactly what
:meth:`EncodedDatabase.from_database` would produce over the merged
transaction set — the property suite pins this array-for-array.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from datetime import datetime
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.encoded import EncodedDatabase
from repro.core.items import Item, ItemCatalog
from repro.errors import TransactionError
from repro.temporal.granularity import Granularity, unit_index

#: One appended transaction: ``(tid, timestamp, item_ids)``.
AppendTriple = Tuple[int, datetime, Sequence[Item]]


@dataclass(frozen=True)
class AppendResult:
    """Outcome of folding one batch into an encoded database.

    Attributes:
        encoded: the new (immutable) encoded database.
        appended: number of transactions folded in.
        in_order: whether the tail fast path applied (every new
            transaction sorted after the existing data).
        timestamps: timestamps of the appended transactions.
    """

    encoded: EncodedDatabase
    appended: int
    in_order: bool
    timestamps: Tuple[datetime, ...] = field(default=())

    def touched_units(self, granularity: Granularity) -> FrozenSet[int]:
        """Absolute unit indices containing at least one new transaction."""
        return frozenset(unit_index(stamp, granularity) for stamp in self.timestamps)


def _normalize(batch: Sequence[AppendTriple]):
    """Sort the batch by (timestamp, tid) and sort/dedupe each basket."""
    entries = []
    for tid, stamp, ids in batch:
        unique = tuple(sorted(set(int(item) for item in ids)))
        if not unique:
            raise TransactionError(f"cannot append an empty transaction (tid={tid})")
        entries.append((stamp, int(tid), unique))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return entries


def _flatten(chunks: Sequence[Tuple[Item, ...]]) -> Tuple[np.ndarray, np.ndarray]:
    """(flat int32 item ids, int64 sizes) of basket chunks."""
    sizes = np.fromiter((len(chunk) for chunk in chunks), dtype=np.int64, count=len(chunks))
    flat = np.fromiter(
        (item for chunk in chunks for item in chunk),
        dtype=np.int32,
        count=int(sizes.sum()),
    )
    return flat, sizes


def append_encoded(
    encoded: EncodedDatabase,
    batch: Sequence[AppendTriple],
    catalog: Optional[ItemCatalog] = None,
) -> AppendResult:
    """Fold ``batch`` triples into ``encoded``, returning a new database.

    ``batch`` entries are ``(tid, timestamp, item_ids)``; any order is
    accepted, item ids are sorted and deduplicated per basket.  The
    input database is never mutated.  New item ids beyond the current
    universe grow ``n_items`` exactly as a fresh encode would.
    """
    entries = _normalize(batch)
    if not entries:
        return AppendResult(encoded=encoded, appended=0, in_order=True)
    catalog = catalog if catalog is not None else encoded.catalog
    new_stamps = tuple(stamp for stamp, _, _ in entries)
    new_tids = np.fromiter((tid for _, tid, _ in entries), dtype=np.int64, count=len(entries))
    new_chunks = [chunk for _, _, chunk in entries]
    flat, sizes = _flatten(new_chunks)

    n_old = len(encoded)
    in_order = n_old == 0 or (
        (new_stamps[0], int(new_tids[0]))
        > (encoded.timestamps[-1], int(encoded.tids[-1]))
    )
    if in_order:
        item_ids = np.concatenate([encoded.item_ids, flat])
        offsets = np.concatenate(
            [encoded.offsets, encoded.offsets[-1] + np.cumsum(sizes)]
        )
        tids = np.concatenate([encoded.tids, new_tids])
        merged = EncodedDatabase(
            item_ids.astype(np.int32, copy=False),
            offsets.astype(np.int64, copy=False),
            tids,
            encoded.timestamps + new_stamps,
            catalog=catalog,
        )
        return AppendResult(
            encoded=merged, appended=len(entries), in_order=True, timestamps=new_stamps
        )

    # Out-of-order: stable merge by (timestamp, tid).  New entries with a
    # key equal to an existing one land *after* it (arrival order), and
    # old rows are copied in contiguous runs between insertion points.
    old_keys: List[Tuple[datetime, int]] = [
        (encoded.timestamps[position], int(encoded.tids[position]))
        for position in range(n_old)
    ]
    n_total = n_old + len(entries)
    out_sizes = np.empty(n_total, dtype=np.int64)
    out_tids = np.empty(n_total, dtype=np.int64)
    out_stamps: List[datetime] = []
    pieces: List[np.ndarray] = []
    old_sizes = np.diff(encoded.offsets)

    out = 0
    old_pos = 0

    def copy_old_run(until: int) -> None:
        nonlocal out, old_pos
        if until <= old_pos:
            return
        run = until - old_pos
        pieces.append(
            encoded.item_ids[encoded.offsets[old_pos] : encoded.offsets[until]]
        )
        out_sizes[out : out + run] = old_sizes[old_pos:until]
        out_tids[out : out + run] = encoded.tids[old_pos:until]
        out_stamps.extend(encoded.timestamps[old_pos:until])
        out += run
        old_pos = until

    for index, (stamp, tid, chunk) in enumerate(entries):
        copy_old_run(bisect.bisect_right(old_keys, (stamp, tid), lo=old_pos))
        pieces.append(np.asarray(chunk, dtype=np.int32))
        out_sizes[out] = len(chunk)
        out_tids[out] = tid
        out_stamps.append(stamp)
        out += 1
    copy_old_run(n_old)

    item_ids = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int32)
    offsets = np.zeros(n_total + 1, dtype=np.int64)
    np.cumsum(out_sizes, out=offsets[1:])
    merged = EncodedDatabase(
        item_ids.astype(np.int32, copy=False),
        offsets,
        out_tids,
        tuple(out_stamps),
        catalog=catalog,
    )
    return AppendResult(
        encoded=merged, appended=len(entries), in_order=False, timestamps=new_stamps
    )
