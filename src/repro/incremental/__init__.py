"""Incremental & streaming mining: delta-maintained CSR and dirty-unit recount.

The paper's IQMS assumes a static database; this package removes that
assumption for the append-only case (Ben Ahmed & Gouider, *Towards an
incremental maintenance of cyclic association rules*, arXiv:1009.5149).
Two pieces:

* :func:`append_encoded` folds a batch of new transactions into an
  existing :class:`~repro.columnar.encoded.EncodedDatabase` without a
  full re-encode — a pure tail concatenation for in-order streams, a
  run-preserving stable merge otherwise;
* :class:`IncrementalContext` extends the per-unit counting context
  with epoch-based dirty tracking: per-unit count rows are cached, and
  after an append only the *dirty* units (those actually touched) are
  re-counted and spliced into the cached rows — bit-identical to a cold
  re-count because per-unit counting is a pure function of unit content.

The planner side (incremental-vs-full by dirty fraction) lives in
:mod:`repro.planner.refresh`; the engine wiring in
:meth:`repro.mining.engine.TemporalMiner.apply_append`.
"""

from repro.incremental.csr import AppendResult, append_encoded
from repro.incremental.context import IncrementalContext

__all__ = [
    "AppendResult",
    "IncrementalContext",
    "append_encoded",
]
