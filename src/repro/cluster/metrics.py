"""Fleet-wide Prometheus exposition aggregation.

The router's ``GET /v1/metrics`` must describe the *fleet*, not one
process: N workers each expose their own registry, and an operator's
scrape should see one coherent document.  :func:`merge_expositions`
parses each worker's text-format 0.0.4 exposition with the strict
:func:`repro.obs.metrics.parse_prometheus_text` parser (a worker
emitting something a real scraper would reject must fail loudly here
too) and sums samples pointwise:

* **Counters and histograms sum** — ``repro_http_requests_total``
  across the fleet is exactly the sum of per-worker totals, and
  histogram ``_bucket``/``_sum``/``_count`` series stay internally
  consistent under addition (cumulative buckets are linear).
* **Gauges sum too** — queue depths, running jobs and cache entries are
  all "how much is resident in this process" quantities where the fleet
  total is the meaningful number.  (A gauge whose fleet aggregate
  should be an average does not exist in this codebase today; if one
  appears it belongs on a label, not a new merge mode.)

``HELP``/``TYPE`` headers are taken from the first exposition that
declares each metric; samples of metrics only some workers have seen
yet merge fine (missing series count as zero).

Exemplar annotations on ``_bucket`` lines carry through the merge: for
each fleet-wide bucket the exemplar with the **largest observed value**
wins (the slowest concrete request is the one an operator chasing a p99
wants a trace id for).  A suffixed sample (``_bucket``/``_sum``/
``_count``) whose base histogram no worker declared is merged as a
plain sample — but logged, once per family, instead of silently: it
usually means a worker emitted a family the merge cannot reason about.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.logs import get_logger
from repro.obs.metrics import _format_value, _render_labels, parse_prometheus_text

__all__ = ["merge_expositions"]

_log = get_logger("cluster.metrics")

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _headers(text: str) -> "Dict[str, Tuple[str, str]]":
    """``{metric_name: (help_line, type_line)}`` from one exposition."""
    headers: Dict[str, Tuple[str, str]] = {}
    help_lines: Dict[str, str] = {}
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        parts = line.split(None, 3)
        if len(parts) >= 3 and parts[1] == "HELP":
            help_lines[parts[2]] = line
        elif len(parts) == 4 and parts[1] == "TYPE":
            headers[parts[2]] = (help_lines.get(parts[2], ""), line)
    return headers


def _base_name(sample_name: str, histogram_bases: "set[str]") -> str:
    """Map a ``_bucket``/``_sum``/``_count`` sample to its histogram."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in histogram_bases:
                return base
    return sample_name


def _suffixed_base(sample_name: str) -> Optional[str]:
    """The would-be histogram base of a suffixed sample, if any."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return None


def merge_expositions(texts: Iterable[str]) -> str:
    """Sum several text-format 0.0.4 expositions into one.

    Raises :class:`ValueError` on any malformed input — aggregating a
    broken exposition would silently hide a worker-side regression.
    """
    merged: "Dict[str, Dict[str, float]]" = {}
    headers: Dict[str, Tuple[str, str]] = {}
    histogram_bases: "set[str]" = set()
    # Per merged bucket series, the exemplar with the largest observed
    # value across the fleet: (sample_name, label_block) -> (labels, value).
    exemplars: "Dict[Tuple[str, str], Tuple[Dict[str, str], float]]" = {}
    # Sample names in first-seen order so the merged document is stable
    # across scrapes (dict preserves insertion order).
    sample_order: List[str] = []

    for text in texts:
        for name, (help_line, type_line) in _headers(text).items():
            if name not in headers:
                headers[name] = (help_line, type_line)
                if type_line.split()[-1] == "histogram":
                    histogram_bases.add(name)
        collected: List[Tuple[str, str, Dict[str, str], float]] = []
        for sample_name, series in parse_prometheus_text(
            text, collect_exemplars=collected
        ).items():
            bucket = merged.get(sample_name)
            if bucket is None:
                bucket = merged[sample_name] = {}
                sample_order.append(sample_name)
            for label_block, value in series.items():
                bucket[label_block] = bucket.get(label_block, 0.0) + value
        for sample_name, label_block, ex_labels, ex_value in collected:
            key = (sample_name, label_block)
            current = exemplars.get(key)
            if current is None or ex_value > current[1]:
                exemplars[key] = (ex_labels, ex_value)

    lines: List[str] = []
    emitted_headers: "set[str]" = set()
    warned_families: "set[str]" = set()
    for sample_name in sample_order:
        base = _base_name(sample_name, histogram_bases)
        if base == sample_name and sample_name not in headers:
            orphan_base = _suffixed_base(sample_name)
            if orphan_base is not None and orphan_base not in warned_families:
                warned_families.add(orphan_base)
                _log.warning(
                    "merging suffixed sample family %r with no declared "
                    "histogram %r; summed as a plain sample",
                    sample_name,
                    orphan_base,
                )
        if base in headers and base not in emitted_headers:
            emitted_headers.add(base)
            help_line, type_line = headers[base]
            if help_line:
                lines.append(help_line)
            lines.append(type_line)
        for label_block, value in merged[sample_name].items():
            line = f"{sample_name}{label_block} {_format_value(value)}"
            entry = exemplars.get((sample_name, label_block))
            if entry is not None:
                ex_labels, ex_value = entry
                line += (
                    " # "
                    + _render_labels(tuple(ex_labels), tuple(ex_labels.values()))
                    + f" {_format_value(ex_value)}"
                )
            lines.append(line)
    return "\n".join(lines) + "\n"
