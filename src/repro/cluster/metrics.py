"""Fleet-wide Prometheus exposition aggregation.

The router's ``GET /v1/metrics`` must describe the *fleet*, not one
process: N workers each expose their own registry, and an operator's
scrape should see one coherent document.  :func:`merge_expositions`
parses each worker's text-format 0.0.4 exposition with the strict
:func:`repro.obs.metrics.parse_prometheus_text` parser (a worker
emitting something a real scraper would reject must fail loudly here
too) and sums samples pointwise:

* **Counters and histograms sum** — ``repro_http_requests_total``
  across the fleet is exactly the sum of per-worker totals, and
  histogram ``_bucket``/``_sum``/``_count`` series stay internally
  consistent under addition (cumulative buckets are linear).
* **Gauges sum too** — queue depths, running jobs and cache entries are
  all "how much is resident in this process" quantities where the fleet
  total is the meaningful number.  (A gauge whose fleet aggregate
  should be an average does not exist in this codebase today; if one
  appears it belongs on a label, not a new merge mode.)

``HELP``/``TYPE`` headers are taken from the first exposition that
declares each metric; samples of metrics only some workers have seen
yet merge fine (missing series count as zero).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import _format_value, parse_prometheus_text

__all__ = ["merge_expositions"]


def _headers(text: str) -> "Dict[str, Tuple[str, str]]":
    """``{metric_name: (help_line, type_line)}`` from one exposition."""
    headers: Dict[str, Tuple[str, str]] = {}
    help_lines: Dict[str, str] = {}
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        parts = line.split(None, 3)
        if len(parts) >= 3 and parts[1] == "HELP":
            help_lines[parts[2]] = line
        elif len(parts) == 4 and parts[1] == "TYPE":
            headers[parts[2]] = (help_lines.get(parts[2], ""), line)
    return headers


def _base_name(sample_name: str, histogram_bases: "set[str]") -> str:
    """Map a ``_bucket``/``_sum``/``_count`` sample to its histogram."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in histogram_bases:
                return base
    return sample_name


def merge_expositions(texts: Iterable[str]) -> str:
    """Sum several text-format 0.0.4 expositions into one.

    Raises :class:`ValueError` on any malformed input — aggregating a
    broken exposition would silently hide a worker-side regression.
    """
    merged: "Dict[str, Dict[str, float]]" = {}
    headers: Dict[str, Tuple[str, str]] = {}
    histogram_bases: "set[str]" = set()
    # Sample names in first-seen order so the merged document is stable
    # across scrapes (dict preserves insertion order).
    sample_order: List[str] = []

    for text in texts:
        for name, (help_line, type_line) in _headers(text).items():
            if name not in headers:
                headers[name] = (help_line, type_line)
                if type_line.split()[-1] == "histogram":
                    histogram_bases.add(name)
        for sample_name, series in parse_prometheus_text(text).items():
            bucket = merged.get(sample_name)
            if bucket is None:
                bucket = merged[sample_name] = {}
                sample_order.append(sample_name)
            for label_block, value in series.items():
                bucket[label_block] = bucket.get(label_block, 0.0) + value

    lines: List[str] = []
    emitted_headers: "set[str]" = set()
    for sample_name in sample_order:
        base = _base_name(sample_name, histogram_bases)
        if base in headers and base not in emitted_headers:
            emitted_headers.add(base)
            help_line, type_line = headers[base]
            if help_line:
                lines.append(help_line)
            lines.append(type_line)
        for label_block, value in merged[sample_name].items():
            lines.append(f"{sample_name}{label_block} {_format_value(value)}")
    return "\n".join(lines) + "\n"
