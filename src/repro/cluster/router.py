"""The cluster front door: a thin routing/failover HTTP proxy.

One :class:`ClusterRouter` sits in front of a fleet of worker processes
(usually owned by a :class:`~repro.cluster.supervisor.FleetSupervisor`,
but anything exposing the same small *fleet view* works — the tests run
in-process worker servers behind a static fleet).  The router is
deliberately thin: it never mines, never caches results, and holds no
durable state — every hard problem stays in the workers, where PRs 4–8
already solved it.  What the router adds:

* **Cache-locality routing.**  ``POST /v1/query`` routes by rendezvous
  hashing over ``store fingerprint × canonical TML`` — the same
  normalization the PR 4 result cache keys on — so repeated and
  whitespace-variant forms of a query always land on the worker whose
  memory cache and incremental ``ExecutionEnvironment`` are already hot
  for it, while *distinct* queries spread uniformly across the fleet.
* **Job affinity with failover.**  The worker that admits a job owns
  its record; ``GET``/``DELETE /v1/jobs/{id}`` route back to the owner.
  A dead owner fails over: other healthy workers are tried in
  rendezvous order, and when none knows the job the router answers
  ``503 + Retry-After`` (not 404) — the supervisor is restarting the
  owner, whose journal replay will finish the job under its original
  id, so the hardened client's retry loop lands naturally.
* **Transport failover on idempotent requests.**  A proxied request
  that dies on the socket marks the worker suspect immediately and —
  for GET/DELETE and keyed POSTs (the PR 6 idempotency contract) — is
  retried on the next-ranked healthy worker.  Keyless POSTs surface a
  ``502`` instead: the job may have been admitted, and a blind retry
  could run it twice.
* **Invalidation fanout.**  A mutation or append lands on one worker,
  which purges the *shared* disk cache tier itself; the router then
  tells every other worker to drop its private memory-tier entries for
  the superseded fingerprint (``POST /v1/cache/invalidate``), so no
  process serves from memory what the fleet already knows is stale.
* **Per-tenant quotas.**  Token-bucket admission (``X-Tenant`` header,
  weighted fair shares) answers ``429 + Retry-After`` *before* a
  request consumes a worker — fleet-level fairness on top of each
  worker's own PR 4 admission control.
* **Fleet observability.**  ``GET /v1/metrics`` merges every worker's
  Prometheus exposition with the router's own ``repro_cluster_*``
  series; ``GET /v1/status`` reports per-worker identity and health.
* **Fleet-wide distributed tracing.**  A traced query (body
  ``"trace": true`` or an incoming W3C ``traceparent``) makes the
  router the first recorded hop: it mints/joins a
  :class:`~repro.obs.distributed.TraceContext`, forwards the child
  context to the worker it routes to, stores its own ``router.request``
  span and remembers which worker served the trace.  ``GET
  /v1/traces/{id}`` then grafts the owning worker's span subtree under
  the router span — one connected tree, router → worker → scheduler →
  mining passes; ``GET /v1/traces`` and ``GET /v1/debug/slow`` fan out
  and merge the fleet's trace lists and flight-recorder captures.

Append routing: ``POST /v1/transactions`` routes by a *stable* key (not
the fingerprint — which the append itself changes) so one worker keeps
the hot delta-fold chain of PR 8, and the batch reaches every other
worker as a fingerprint bump they notice on their next store check.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.cluster.hashring import rank_workers
from repro.cluster.metrics import merge_expositions
from repro.cluster.quota import TenantQuotas
from repro.obs.distributed import (
    TraceContext,
    TraceStore,
    new_trace_context,
    parse_traceparent,
    span_node,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    default_registry,
)

logger = get_logger(__name__)

__all__ = ["ClusterRouter", "RouterRequestHandler", "start_router"]

#: Socket timeout for control-plane proxying (status, polls, cancels).
CONTROL_TIMEOUT_SECONDS = 15.0

#: Socket timeout for proxied appends.
APPEND_TIMEOUT_SECONDS = 60.0

#: Default server-side wait of a proxied synchronous query (mirrors the
#: worker's own default) plus the grace the client protocol already uses.
SYNC_WAIT_SECONDS = 300.0
SYNC_GRACE_SECONDS = 30.0

#: Most job ids the affinity map remembers (LRU).  Affinity is a
#: routing hint, not a correctness requirement — an evicted id just
#: means the poll walks the rendezvous order.
AFFINITY_CAP = 8192

#: Retry-After the router answers when a job's owner is mid-restart.
OWNER_RESTART_RETRY_AFTER = 1.0

#: Most router-side trace documents held in memory (the workers keep
#: the heavyweight span trees; the router only stores its own hop).
TRACE_STORE_ENTRIES = 512


def _canonical_query(text: str) -> str:
    """Canonical TML for routing (same collapse the result cache uses).

    Falls back to the raw text for statements the canonicalizer cannot
    parse — routing only needs determinism, the worker will produce the
    real 400/422.
    """
    try:
        from repro.tml.canonical import canonicalize

        return canonicalize(text)
    except Exception:  # noqa: BLE001 — any parse problem routes on raw text
        return text


class ClusterRouter(ThreadingHTTPServer):
    """The fleet's single public address.

    Args:
        fleet: the fleet view — an object with ``healthy_workers()``
            (ordered handles carrying ``worker_id``/``base_url``),
            ``all_workers()``, ``note_failure(worker_id)`` and
            ``fingerprint()``.  A
            :class:`~repro.cluster.supervisor.FleetSupervisor` is one.
        host / port: bind address (``port=0`` binds ephemerally).
        quotas: per-tenant admission; default is unlimited.
        metrics: registry for ``repro_cluster_*`` series (the
            supervisor should share it so one scrape shows both).
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        fleet,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: Optional[TenantQuotas] = None,
        metrics: Optional[MetricsRegistry] = None,
        verbose: bool = False,
    ):
        self.fleet = fleet
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.verbose = verbose
        self.draining = False
        self.drain_retry_after = 10.0
        self.started_at = time.time()
        self.metrics = metrics if metrics is not None else default_registry()
        self._affinity: "OrderedDict[str, str]" = OrderedDict()
        self._affinity_lock = threading.Lock()
        self._fingerprint: Optional[str] = None
        #: The router's own hop of each distributed trace, keyed by
        #: trace id; worker subtrees are grafted on at read time.
        self.traces = TraceStore(capacity=TRACE_STORE_ENTRIES)
        #: trace_id -> worker_id of the worker that served the traced
        #: request (LRU, same cap/semantics as the job-affinity map).
        self._trace_affinity: "OrderedDict[str, str]" = OrderedDict()
        self.m_requests = self.metrics.counter(
            "repro_cluster_requests_total",
            "Requests through the router, by route and status.",
            labelnames=("route", "status"),
        )
        self.m_request_seconds = self.metrics.histogram(
            "repro_cluster_request_seconds",
            "Router request latency (incl. the proxied worker), by route.",
            labelnames=("route",),
        )
        self.m_proxied = self.metrics.counter(
            "repro_cluster_proxied_total",
            "Requests proxied to each worker.",
            labelnames=("worker",),
        )
        self.m_failovers = self.metrics.counter(
            "repro_cluster_failovers_total",
            "Requests that failed over past the preferred worker, by route.",
            labelnames=("route",),
        )
        self.m_quota_rejected = self.metrics.counter(
            "repro_cluster_quota_rejected_total",
            "Requests rejected by per-tenant quota, by tenant.",
            labelnames=("tenant",),
        )
        self.m_fanout = self.metrics.counter(
            "repro_cluster_invalidation_fanout_total",
            "Cache-invalidation fanout calls sent to peer workers.",
        )
        super().__init__((host, port), RouterRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # routing state
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """The routing fingerprint (sticky: last known wins)."""
        current = self.fleet.fingerprint()
        if current:
            self._fingerprint = current
        return self._fingerprint or ""

    def note_fingerprint(self, fingerprint: Optional[str]) -> None:
        if isinstance(fingerprint, str) and fingerprint:
            self._fingerprint = fingerprint

    def preference(self, key: str) -> List[object]:
        """Healthy worker handles in rendezvous order for ``key``."""
        handles = {
            worker.worker_id: worker for worker in self.fleet.healthy_workers()
        }
        return [
            handles[worker_id]
            for worker_id in rank_workers(key, list(handles))
        ]

    def record_job(self, job_id: str, worker_id: str) -> None:
        with self._affinity_lock:
            self._affinity[job_id] = worker_id
            self._affinity.move_to_end(job_id)
            while len(self._affinity) > AFFINITY_CAP:
                self._affinity.popitem(last=False)

    def job_owner(self, job_id: str) -> Optional[str]:
        with self._affinity_lock:
            return self._affinity.get(job_id)

    def jobs_routed(self) -> int:
        with self._affinity_lock:
            return len(self._affinity)

    def record_trace_owner(self, trace_id: str, worker_id: str) -> None:
        with self._affinity_lock:
            self._trace_affinity[trace_id] = worker_id
            self._trace_affinity.move_to_end(trace_id)
            while len(self._trace_affinity) > AFFINITY_CAP:
                self._trace_affinity.popitem(last=False)

    def trace_owner(self, trace_id: str) -> Optional[str]:
        with self._affinity_lock:
            return self._trace_affinity.get(trace_id)

    # ------------------------------------------------------------------
    # proxy primitives
    # ------------------------------------------------------------------

    def proxy(
        self,
        worker,
        method: str,
        path: str,
        body: Optional[bytes],
        timeout: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One proxied request; raises ``OSError`` on transport failure."""
        parts = urlsplit(worker.base_url)
        connection = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=timeout
        )
        try:
            request_headers: Dict[str, str] = dict(headers) if headers else {}
            if body:
                request_headers.setdefault("Content-Type", "application/json")
            connection.request(method, path, body=body, headers=request_headers)
            response = connection.getresponse()
            payload = response.read()
            passthrough = {}
            for name in ("Retry-After", "X-Repro-Worker", "Content-Type"):
                value = response.headers.get(name)
                if value is not None:
                    passthrough[name] = value
            self.m_proxied.inc(worker=worker.worker_id)
            return response.status, passthrough, payload
        finally:
            connection.close()

    def fan_out_invalidation(
        self, fingerprint: str, except_worker: Optional[str] = None
    ) -> int:
        """Tell every other worker to drop one fingerprint's entries.

        Synchronous and best-effort: a worker that cannot be reached is
        marked suspect and skipped — its memory-tier entries are keyed
        by fingerprint and therefore unservable, so missing the fanout
        costs memory, never correctness.
        """
        body = json.dumps({"fingerprint": fingerprint}).encode("utf-8")
        reached = 0
        for worker in self.fleet.healthy_workers():
            if worker.worker_id == except_worker:
                continue
            try:
                self.proxy(
                    worker,
                    "POST",
                    "/v1/cache/invalidate",
                    body,
                    CONTROL_TIMEOUT_SECONDS,
                )
                reached += 1
                self.m_fanout.inc()
            except OSError:
                self.fleet.note_failure(worker.worker_id)
        return reached

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------

    def status_document(self) -> Dict[str, object]:
        workers = []
        for worker in self.fleet.all_workers():
            if hasattr(worker, "to_dict"):
                workers.append(worker.to_dict())
            else:  # a bare test handle: report what the router knows
                workers.append(
                    {
                        "id": worker.worker_id,
                        "url": worker.base_url,
                        "healthy": bool(getattr(worker, "healthy", True)),
                    }
                )
        healthy = sum(1 for worker in workers if worker.get("healthy"))
        return {
            "service": "repro-cluster-router",
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "fingerprint": self.fingerprint() or None,
            "workers": workers,
            "healthy_workers": healthy,
            "jobs_routed": self.jobs_routed(),
            "traces_held": len(self.traces),
            "quota": self.quotas.stats(),
        }

    def merged_metrics(self) -> str:
        """The fleet-wide exposition: router series + every worker's."""
        texts = [self.metrics.render_prometheus()]
        for worker in self.fleet.healthy_workers():
            try:
                status, _, payload = self.proxy(
                    worker, "GET", "/v1/metrics", None, CONTROL_TIMEOUT_SECONDS
                )
            except OSError:
                self.fleet.note_failure(worker.worker_id)
                continue
            if status == 200:
                texts.append(payload.decode("utf-8"))
        return merge_expositions(texts)

    # ------------------------------------------------------------------
    # distributed tracing
    # ------------------------------------------------------------------

    def record_router_trace(
        self,
        context: TraceContext,
        route: str,
        status: int,
        served_by: Optional[str],
        duration_seconds: float,
        job_id: Optional[str],
    ) -> None:
        """Store the router's own hop of a distributed trace.

        The document holds exactly one span — ``router.request`` — in
        the same node shape the worker stores; the worker's subtree is
        grafted under it at read time (:meth:`fleet_trace`), so the
        stored form stays cheap and the graft always reflects the
        freshest worker-side document.
        """
        duration_ms = round(duration_seconds * 1000.0, 3)
        attrs: Dict[str, object] = {
            "route": route,
            "status": status,
            "router": "router",
        }
        if served_by:
            attrs["served_by"] = served_by
        if job_id:
            attrs["job_id"] = job_id
        document: Dict[str, object] = {
            "trace_id": context.trace_id,
            "span_id": context.span_id,
            "worker": "router",
            "job_id": job_id,
            "duration_ms": duration_ms,
            "spans": [
                span_node("router.request", 0.0, duration_ms, attrs=attrs)
            ],
        }
        self.traces.put(context.trace_id, document)
        if served_by:
            self.record_trace_owner(context.trace_id, served_by)

    def _worker_json(
        self, worker, path: str
    ) -> Tuple[Optional[int], Optional[Dict[str, object]]]:
        """GET one worker's JSON document; ``(None, None)`` on transport
        failure (the worker is marked suspect)."""
        try:
            status, _, payload = self.proxy(
                worker, "GET", path, None, CONTROL_TIMEOUT_SECONDS
            )
        except OSError:
            self.fleet.note_failure(worker.worker_id)
            return None, None
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return status, None
        return status, document if isinstance(document, dict) else None

    def fleet_trace(self, trace_id: str) -> Optional[Dict[str, object]]:
        """One connected trace: router hop + the owning worker's subtree.

        The trace-affinity map names the worker that served the traced
        request; a miss (evicted entry, restarted router) falls back to
        asking every healthy worker — the store is small and traces are
        a debugging surface, not a hot path.  Worker span ``start_ms``
        values keep their own process-local origin; durations are the
        cross-process meaningful quantity.
        """
        router_doc = self.traces.get(trace_id)
        owner_id = self.trace_owner(trace_id)
        workers = list(self.fleet.healthy_workers())
        if owner_id is not None:
            workers.sort(key=lambda worker: worker.worker_id != owner_id)
        worker_doc: Optional[Dict[str, object]] = None
        for worker in workers:
            status, document = self._worker_json(
                worker, f"/v1/traces/{trace_id}"
            )
            if status == 200 and document is not None:
                worker_doc = document
                break
        if router_doc is None:
            return worker_doc
        merged = dict(router_doc)
        if worker_doc is not None:
            spans = [dict(span) for span in merged.get("spans") or []]
            if spans:
                children = list(spans[0].get("children") or [])
                children.extend(worker_doc.get("spans") or [])
                spans[0]["children"] = children
            merged["spans"] = spans
            merged["worker"] = worker_doc.get("worker")
            if merged.get("job_id") is None:
                merged["job_id"] = worker_doc.get("job_id")
        return merged

    def fleet_traces(
        self, min_ms: float = 0.0, limit: int = 50
    ) -> List[Dict[str, object]]:
        """Fleet-wide trace list, slowest first (router + every worker).

        Router-hop documents for trace ids a worker also reported are
        dropped in favour of the worker's richer document.
        """
        merged: Dict[str, Dict[str, object]] = {}
        for worker in self.fleet.healthy_workers():
            status, document = self._worker_json(
                worker, f"/v1/traces?min_ms={min_ms:g}&limit={int(limit)}"
            )
            if status != 200 or document is None:
                continue
            for entry in document.get("traces") or []:
                if isinstance(entry, dict) and isinstance(
                    entry.get("trace_id"), str
                ):
                    merged[entry["trace_id"]] = entry
        for entry in self.traces.query(min_ms=min_ms, limit=limit):
            trace_id = entry.get("trace_id")
            if isinstance(trace_id, str) and trace_id not in merged:
                merged[trace_id] = entry
        ranked = sorted(
            merged.values(),
            key=lambda doc: float(doc.get("duration_ms", 0.0) or 0.0),
            reverse=True,
        )
        return ranked[: max(0, int(limit))]

    def fleet_slow(self) -> Dict[str, object]:
        """The fleet's merged flight-recorder log, slowest first."""
        entries: List[Dict[str, object]] = []
        workers: List[Dict[str, object]] = []
        top_k = 0
        for worker in self.fleet.healthy_workers():
            status, document = self._worker_json(worker, "/v1/debug/slow")
            if status != 200 or document is None:
                continue
            stats = document.get("stats")
            if isinstance(stats, dict):
                top_k = max(top_k, int(stats.get("top_k", 0) or 0))
                workers.append(
                    {"worker": document.get("worker"), "stats": stats}
                )
            for entry in document.get("entries") or []:
                if isinstance(entry, dict):
                    entries.append(entry)
        entries.sort(
            key=lambda e: float(e.get("duration_seconds", 0.0) or 0.0),
            reverse=True,
        )
        if top_k:
            entries = entries[:top_k]
        return {"service": "repro-cluster-router", "workers": workers, "entries": entries}


class RouterRequestHandler(BaseHTTPRequestHandler):
    """Routes the public ``/v1`` API onto the worker fleet."""

    server: ClusterRouter
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            if name.lower() == "content-type":
                continue
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send(
            status, json.dumps(payload).encode("utf-8"), headers=headers
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _job_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "jobs":
            return parts[2]
        return None

    def _trace_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "traces":
            return parts[2]
        return None

    def _query_params(self) -> Dict[str, str]:
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        return {
            name: values[-1] for name, values in parse_qs(query).items()
        }

    def _route_label(self) -> str:
        path = self.path.split("?", 1)[0]
        if self._job_path_id() is not None:
            return "/v1/jobs/{id}"
        if self._trace_path_id() is not None:
            return "/v1/traces/{id}"
        if path in (
            "/v1/status",
            "/v1/metrics",
            "/v1/query",
            "/v1/transactions",
            "/v1/cache/invalidate",
            "/v1/traces",
            "/v1/debug/slow",
        ):
            return path
        return "(unknown)"

    def _instrumented(self, handler) -> None:
        route = self._route_label()
        self._status = 0
        self._trace_id: Optional[str] = None
        started = time.perf_counter()
        try:
            handler()
        finally:
            self.server.m_requests.inc(route=route, status=str(self._status))
            exemplar = (
                {"trace_id": self._trace_id} if self._trace_id else None
            )
            self.server.m_request_seconds.observe(
                time.perf_counter() - started, exemplar=exemplar, route=route
            )

    # -- verbs ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._instrumented(self._handle_get)

    def do_DELETE(self) -> None:  # noqa: N802
        self._instrumented(self._handle_delete)

    def do_POST(self) -> None:  # noqa: N802
        self._instrumented(self._handle_post)

    # -- control plane --------------------------------------------------

    def _handle_get(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/v1/status":
            self._send_json(200, self.server.status_document())
            return
        if path == "/v1/metrics":
            try:
                text = self.server.merged_metrics()
            except ValueError as error:
                self._send_json(502, {"error": f"metrics merge failed: {error}"})
                return
            self._send(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
            return
        trace_id = self._trace_path_id()
        if trace_id is not None:
            document = self.server.fleet_trace(trace_id)
            if document is None:
                self._send_json(404, {"error": f"no such trace: {trace_id}"})
            else:
                self._send_json(200, document)
            return
        if path == "/v1/traces":
            params = self._query_params()
            try:
                min_ms = float(params.get("min_ms", 0.0))
                limit = int(params.get("limit", 50))
            except (TypeError, ValueError) as error:
                self._send_json(400, {"error": f"bad query parameter: {error}"})
                return
            self._send_json(
                200,
                {"traces": self.server.fleet_traces(min_ms=min_ms, limit=limit)},
            )
            return
        if path == "/v1/debug/slow":
            self._send_json(200, self.server.fleet_slow())
            return
        job_id = self._job_path_id()
        if job_id is not None:
            self._proxy_job(job_id, "GET")
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def _handle_delete(self) -> None:
        job_id = self._job_path_id()
        if job_id is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._proxy_job(job_id, "DELETE")

    # -- data plane -----------------------------------------------------

    def _handle_post(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/v1/cache/invalidate":
            self._handle_invalidate()
            return
        if path not in ("/v1/query", "/v1/transactions"):
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        if self.server.draining:
            self._send_json(
                503,
                {"error": "cluster is draining for shutdown"},
                headers={
                    "Retry-After": str(
                        max(1, int(round(self.server.drain_retry_after)))
                    )
                },
            )
            return
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return
        tenant = self.headers.get("X-Tenant")
        decision = self.server.quotas.admit(tenant)
        if not decision.admitted:
            self.server.m_quota_rejected.inc(tenant=decision.tenant)
            self._send_json(
                429,
                {
                    "error": (
                        f"tenant {decision.tenant!r} is over its quota"
                    ),
                    "tenant": decision.tenant,
                },
                headers={
                    "Retry-After": f"{max(decision.retry_after, 0.001):.3f}"
                },
            )
            return
        if path == "/v1/query":
            self._proxy_query(payload, body)
        else:
            self._proxy_append(payload, body)

    def _proxy_query(self, payload: Dict, body: bytes) -> None:
        query = payload.get("query")
        routing_query = _canonical_query(query) if isinstance(query, str) else ""
        key = f"{self.server.fingerprint()}\x00{routing_query}"
        idempotent = bool(payload.get("idempotency_key"))
        timeout = SYNC_WAIT_SECONDS
        try:
            timeout = float(payload.get("timeout", SYNC_WAIT_SECONDS))
        except (TypeError, ValueError):
            pass
        # Distributed tracing: a traced payload (or an incoming W3C
        # ``traceparent``) makes the router a hop of the trace.  The
        # router's context is forwarded to the worker, which joins the
        # same trace id — an invalid incoming header restarts the trace
        # rather than erroring (per the W3C processing model).
        context: Optional[TraceContext] = None
        parent = parse_traceparent(self.headers.get("traceparent"))
        if parent is not None:
            context = parent.child()
        elif payload.get("trace"):
            context = new_trace_context()
        trace_headers = (
            {"traceparent": context.to_traceparent()}
            if context is not None
            else None
        )
        started = time.perf_counter()
        status, headers, response = self._proxy_with_failover(
            "POST",
            "/v1/query",
            body,
            key=key,
            idempotent=idempotent,
            timeout=timeout + SYNC_GRACE_SECONDS,
            route="/v1/query",
            headers=trace_headers,
        )
        if status is None:
            return
        served_by = headers.get("X-Repro-Worker")
        document = self._maybe_json(response)
        job_id: Optional[str] = None
        if document is not None:
            job_id = (
                document.get("job_id")
                if isinstance(document.get("job_id"), str)
                else None
            )
            if job_id and served_by:
                self.server.record_job(job_id, served_by)
        if context is not None:
            self._trace_id = context.trace_id
            self.server.record_router_trace(
                context,
                route="/v1/query",
                status=status,
                served_by=served_by,
                duration_seconds=time.perf_counter() - started,
                job_id=job_id,
            )
        if document is not None:
            # A mutating statement's result carries the superseded
            # fingerprint — fan the invalidation out to the peers.
            result = document.get("result")
            if isinstance(result, dict):
                old = result.get("old_fingerprint")
                if isinstance(old, str) and old:
                    self.server.fan_out_invalidation(old, except_worker=served_by)
        self._send(status, response, headers=headers)

    def _proxy_append(self, payload: Dict, body: bytes) -> None:
        # Appends route on a stable per-store key (NOT the fingerprint,
        # which the append itself is about to change): one worker owns
        # the hot PR 8 delta-fold chain.
        idempotent = bool(payload.get("idempotency_key"))
        status, headers, response = self._proxy_with_failover(
            "POST",
            "/v1/transactions",
            body,
            key="store-append",
            idempotent=idempotent,
            timeout=APPEND_TIMEOUT_SECONDS,
            route="/v1/transactions",
        )
        if status is None:
            return
        document = self._maybe_json(response)
        if document is not None and document.get("applied"):
            served_by = headers.get("X-Repro-Worker")
            old = document.get("old_fingerprint")
            new = document.get("new_fingerprint")
            self.server.note_fingerprint(new if isinstance(new, str) else None)
            if isinstance(old, str) and old and old != new:
                self.server.fan_out_invalidation(old, except_worker=served_by)
        self._send(status, response, headers=headers)

    def _handle_invalidate(self) -> None:
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            fingerprint = payload.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint.strip():
                raise ValueError('missing required string field "fingerprint"')
        except (ValueError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        reached = self.server.fan_out_invalidation(fingerprint)
        self._send_json(
            200, {"fingerprint": fingerprint, "workers_reached": reached}
        )

    def _proxy_job(self, job_id: str, method: str) -> None:
        """Affinity-first job routing with ranked failover.

        The owner (if healthy) is always tried first; failing that,
        every other healthy worker in rendezvous order.  A 404 from a
        non-owner is *not* authoritative while the owner is down — the
        job lives in the owner's journal and will reappear when the
        supervisor restarts it — so that case answers 503 + Retry-After
        and lets the client's retry loop do the waiting.
        """
        owner_id = self.server.job_owner(job_id)
        candidates = self.server.preference(job_id)
        owner_down = False
        if owner_id is not None:
            owner = next(
                (w for w in candidates if w.worker_id == owner_id), None
            )
            if owner is not None:
                candidates = [owner] + [w for w in candidates if w is not owner]
            else:
                owner_down = True
        if not candidates:
            self._send_json(
                503,
                {"error": "no healthy workers"},
                headers={"Retry-After": "1"},
            )
            return
        attempted = False
        for index, worker in enumerate(candidates):
            if index:
                self.server.m_failovers.inc(route="/v1/jobs/{id}")
            try:
                status, headers, response = self.server.proxy(
                    worker,
                    method,
                    f"/v1/jobs/{job_id}",
                    None,
                    CONTROL_TIMEOUT_SECONDS,
                )
            except OSError:
                self.server.fleet.note_failure(worker.worker_id)
                if worker.worker_id == owner_id:
                    # The owner died on the socket mid-loop: any 404 a
                    # peer answers from here on is non-authoritative.
                    owner_down = True
                continue
            attempted = True
            if status == 404 and worker.worker_id != owner_id:
                # Only the owner's 404 is authoritative — any other
                # worker has simply never heard of the job; keep looking.
                continue
            self._send(status, response, headers=headers)
            return
        if owner_down or not attempted:
            self._send_json(
                503,
                {
                    "error": (
                        f"job {job_id!r} is owned by a worker that is "
                        f"restarting; retry shortly"
                    )
                },
                headers={
                    "Retry-After": str(OWNER_RESTART_RETRY_AFTER)
                },
            )
            return
        self._send_json(404, {"error": f"no such job: {job_id}"})

    def _proxy_with_failover(
        self,
        method: str,
        path: str,
        body: bytes,
        key: str,
        idempotent: bool,
        timeout: float,
        route: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[Optional[int], Dict[str, str], bytes]:
        """Proxy to the rendezvous-preferred worker, failing over.

        Returns ``(None, {}, b"")`` after having already sent an error
        response (no healthy workers / non-idempotent transport death).
        """
        candidates = self.server.preference(key)
        if not candidates:
            self._send_json(
                503,
                {"error": "no healthy workers"},
                headers={"Retry-After": "1"},
            )
            return None, {}, b""
        for index, worker in enumerate(candidates):
            if index:
                self.server.m_failovers.inc(route=route)
            try:
                return self.server.proxy(
                    worker, method, path, body, timeout, headers=headers
                )
            except OSError as error:
                self.server.fleet.note_failure(worker.worker_id)
                logger.warning(
                    "proxy to %s failed (%s): %s",
                    worker.worker_id,
                    path,
                    error,
                )
                if not idempotent:
                    self._send_json(
                        502,
                        {
                            "error": (
                                f"worker {worker.worker_id} died mid-request; "
                                "resubmit with an idempotency_key to make "
                                "this retry-safe"
                            )
                        },
                    )
                    return None, {}, b""
        self._send_json(
            503,
            {"error": "all workers failed; fleet is restarting"},
            headers={"Retry-After": "1"},
        )
        return None, {}, b""

    @staticmethod
    def _maybe_json(response: bytes) -> Optional[Dict]:
        try:
            document = json.loads(response.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return document if isinstance(document, dict) else None


def start_router(
    fleet,
    host: str = "127.0.0.1",
    port: int = 0,
    quotas: Optional[TenantQuotas] = None,
    metrics: Optional[MetricsRegistry] = None,
    verbose: bool = False,
) -> Tuple[ClusterRouter, threading.Thread]:
    """Start a router on a background thread; returns (router, thread)."""
    router = ClusterRouter(
        fleet,
        host=host,
        port=port,
        quotas=quotas,
        metrics=metrics,
        verbose=verbose,
    )
    thread = threading.Thread(
        target=router.serve_forever, name="repro-cluster-router", daemon=True
    )
    thread.start()
    return router, thread
