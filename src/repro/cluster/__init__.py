"""``repro.cluster`` — horizontal scale-out of the mining service.

One ``repro-serve`` process (PR 4) is GIL-bound: no matter how fast the
planner (PR 7) and the incremental engine (PR 8) make a single query,
throughput ceilings at one accept loop.  This subsystem multiplies the
per-process wins across cores:

* :mod:`repro.cluster.supervisor` — spawn and babysit N worker
  processes (ephemeral ports, per-worker journals, restart-on-death
  with backoff, graceful fleet drain), all sharing one store and one
  disk cache tier.
* :mod:`repro.cluster.router` — the thin HTTP front door: rendezvous
  routing on ``store fingerprint × canonical TML`` for cache locality,
  job-id affinity with ranked failover, invalidation fanout on
  mutation/append, per-tenant token-bucket quotas, and fleet-merged
  ``/v1/metrics``.
* :mod:`repro.cluster.hashring` — the rendezvous (HRW) placement
  primitive.
* :mod:`repro.cluster.quota` — weighted-fair per-tenant token buckets.
* :mod:`repro.cluster.metrics` — Prometheus exposition merging.

Entry points: ``python -m repro.cluster --db store.db --workers 4`` or
the equivalent sugar ``repro-serve --db store.db --cluster 4``.  The
public address speaks exactly the single-process ``/v1`` API, so every
existing client — including :class:`repro.service.client.ServiceClient`
— works unchanged against a fleet.
"""

from repro.cluster.hashring import pick_worker, rank_workers, rendezvous_score
from repro.cluster.metrics import merge_expositions
from repro.cluster.quota import QuotaDecision, TenantQuotas, TokenBucket
from repro.cluster.router import ClusterRouter, start_router
from repro.cluster.supervisor import FleetSupervisor, WorkerConfig, WorkerHandle

__all__ = [
    "ClusterRouter",
    "FleetSupervisor",
    "QuotaDecision",
    "TenantQuotas",
    "TokenBucket",
    "WorkerConfig",
    "WorkerHandle",
    "merge_expositions",
    "pick_worker",
    "rank_workers",
    "rendezvous_score",
    "start_router",
]
