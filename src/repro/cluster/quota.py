"""Per-tenant token-bucket quotas with weighted-fair admission.

The router's admission layer, sitting *above* the per-worker scheduler
admission control from PR 4: the workers bound how much work one
process accepts, this module bounds how much of the fleet's capacity
any one tenant may claim.

Model:

* Every tenant (the ``X-Tenant`` request header; ``"default"`` when
  absent) owns a token bucket.  A mining/append request costs one
  token; control-plane polls are free.
* The bucket refills continuously at ``rate × weight`` tokens/second up
  to ``burst × weight`` — so weights are *fair shares*, not absolute
  rates: a weight-2 tenant sustains twice the throughput of a weight-1
  tenant under contention, and bursts twice as deep.
* An empty bucket rejects with the exact time until the next token, so
  the router can answer ``429`` with an honest ``Retry-After`` that the
  hardened :class:`~repro.service.client.ServiceClient` backoff honours.

Buckets are created lazily and pruned once full-and-idle (an unbounded
tenant-name space must not leak memory).  All operations are
thread-safe and the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

__all__ = ["QuotaDecision", "TokenBucket", "TenantQuotas"]

#: Tenant label used when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "default"


@dataclass
class QuotaDecision:
    """One admission verdict: admitted or rejected-with-retry-hint."""

    admitted: bool
    tenant: str
    #: Seconds until a token is available (0.0 when admitted).
    retry_after: float = 0.0
    #: Tokens left after the decision (diagnostic, floored at 0).
    remaining: float = 0.0


class TokenBucket:
    """A continuously-refilling token bucket (monotonic-clock based)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self, tokens: float = 1.0) -> "tuple[bool, float, float]":
        """``(taken, retry_after_seconds, remaining)`` for one request."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0, self._tokens
            deficit = tokens - self._tokens
            return False, deficit / self.rate, self._tokens

    def available(self) -> float:
        """Current token balance (refilled to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def is_idle_full(self) -> bool:
        """True when the bucket is back at burst — safe to prune."""
        return self.available() >= self.burst


class TenantQuotas:
    """Lazily-created per-tenant buckets with weighted fair shares.

    Args:
        rate: base sustained tokens/second for a weight-1 tenant.
        burst: base bucket depth for a weight-1 tenant.
        weights: per-tenant fair-share multipliers (default 1.0).
        clock: injectable monotonic clock (tests).

    ``rate=None`` disables quotas entirely — every request is admitted
    (the standalone/default router configuration; quotas are opt-in).
    """

    #: Prune idle-full buckets once the table exceeds this many tenants.
    PRUNE_THRESHOLD = 1024

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: float = 10.0,
        weights: Optional[Mapping[str, float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self.weights: Dict[str, float] = dict(weights or {})
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def weight_of(self, tenant: str) -> float:
        weight = float(self.weights.get(tenant, 1.0))
        return weight if weight > 0 else 1.0

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                weight = self.weight_of(tenant)
                assert self.rate is not None  # guarded by enabled
                bucket = TokenBucket(
                    rate=self.rate * weight,
                    burst=max(1.0, self.burst * weight),
                    clock=self._clock,
                )
                self._buckets[tenant] = bucket
                if len(self._buckets) > self.PRUNE_THRESHOLD:
                    self._prune_locked(keep=tenant)
            return bucket

    def _prune_locked(self, keep: str) -> None:
        for name in [
            name
            for name, bucket in self._buckets.items()
            if name != keep and bucket.is_idle_full()
        ]:
            del self._buckets[name]

    def admit(self, tenant: Optional[str]) -> QuotaDecision:
        """Charge one token to ``tenant``; never blocks."""
        name = tenant or DEFAULT_TENANT
        if not self.enabled:
            return QuotaDecision(admitted=True, tenant=name)
        taken, retry_after, remaining = self._bucket(name).try_take()
        return QuotaDecision(
            admitted=taken,
            tenant=name,
            retry_after=retry_after,
            remaining=remaining,
        )

    def stats(self) -> Dict[str, object]:
        """The quota section of the router's status document."""
        if not self.enabled:
            return {"enabled": False}
        with self._lock:
            balances = {
                name: round(bucket.available(), 3)
                for name, bucket in sorted(self._buckets.items())
            }
        return {
            "enabled": True,
            "rate_per_second": self.rate,
            "burst": self.burst,
            "weights": dict(self.weights),
            "tenants": balances,
        }
