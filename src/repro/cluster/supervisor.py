"""The fleet supervisor: N ``repro-serve`` worker processes, kept alive.

One :class:`FleetSupervisor` owns N OS processes, each a full
single-process mining service (PR 4–8: scheduler, result cache, journal,
incremental environments) bound to an **ephemeral** port.  The pieces
that make the fleet coherent:

* **Shared store, private journals.**  Every worker opens the same
  SQLite store file (WAL readers scale across processes); each worker
  keeps its *own* job journal (``<db>.<worker-id>.journal``) so a
  restarted worker replays exactly the jobs it — and only it — had
  accepted.  The worker id is stable across restarts, which is what
  makes "kill -9 mid-job, supervisor restarts it, journal replay
  finishes the job" work.
* **Shared disk cache tier.**  All workers point at one
  ``DiskCacheTier`` file (``<db>.cluster.cache``); the tier is
  multi-process-safe (SQLite WAL, ``busy_timeout``, short
  transactions), so a result mined on worker A is a warm disk hit on
  worker B after failover.
* **Port discovery via port files.**  Workers bind ``--port 0`` and
  write the resolved port to ``--port-file`` atomically; the supervisor
  polls the file.  No fixed ports anywhere — cluster tests and CI can
  never collide.
* **Health checks** on ``GET /v1/status`` at a fixed interval.  The
  response's ``worker`` identity block (pid, port, git SHA, started-at)
  and store fingerprint are cached on the handle — the router routes on
  the fingerprint and the load-gen report attributes latency by id.
* **Restart-on-death with backoff.**  A dead process is restarted after
  an exponential backoff (reset once the worker has been healthy for a
  while); a crash-looping worker therefore cannot busy-spin the
  supervisor.
* **Graceful fleet drain.**  ``SIGTERM`` to every worker starts each
  one's own PR 6 drain (running jobs land or are interrupted with sound
  journaled partials); stragglers past the deadline are killed.

The supervisor deliberately spawns *processes*, not threads: the whole
point of the cluster tier is to multiply the per-process wins of
PRs 2–8 across cores instead of queueing behind one GIL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, default_registry

logger = get_logger(__name__)

__all__ = ["WorkerConfig", "WorkerHandle", "FleetSupervisor"]

#: Seconds a freshly spawned worker gets to write its port file and
#: answer its first health check before the supervisor gives up on it.
DEFAULT_START_TIMEOUT = 30.0

#: Restart backoff schedule: base doubling up to the cap.
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_CAP = 10.0

#: A worker healthy this long gets its backoff reset to the base.
BACKOFF_RESET_AFTER = 30.0


@dataclass
class WorkerConfig:
    """Everything needed to spawn one worker process.

    Args:
        db_path: the shared SQLite store file (must be file-backed —
            ``:memory:`` cannot be shared across processes).
        run_dir: directory for port files (journals/cache sit next to
            the store by default).
        threads: scheduler worker threads per process.
        mining_workers: process shards per mining run inside each
            worker.  Defaults to 1 — the cluster already owns the
            cores; nested fan-out would oversubscribe them.
        engine: counting backend (``auto`` lets the planner pick).
        shared_cache_path: the fleet-shared disk cache tier file
            (default ``<db>.cluster.cache``).
        extra_args: appended verbatim to each worker's command line.
        env: environment for workers (default: inherit, plus a
            ``PYTHONPATH`` entry for this checkout so an uninstalled
            tree works).
    """

    db_path: str
    run_dir: str
    threads: int = 2
    mining_workers: Optional[int] = 1
    engine: str = "auto"
    queue_depth: int = 64
    cache_entries: int = 256
    drain_deadline: float = 10.0
    slow_threshold: float = 1.0
    log_level: str = "warning"
    shared_cache_path: Optional[str] = None
    extra_args: Sequence[str] = field(default_factory=tuple)
    env: Optional[Dict[str, str]] = None

    def resolved_cache_path(self) -> str:
        if self.shared_cache_path is not None:
            return self.shared_cache_path
        return self.db_path + ".cluster.cache"

    def journal_path(self, worker_id: str) -> str:
        return f"{self.db_path}.{worker_id}.journal"

    def port_file(self, worker_id: str) -> str:
        return str(Path(self.run_dir) / f"{worker_id}.port")

    def command(self, worker_id: str) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.service",
            "--db", self.db_path,
            "--port", "0",
            "--port-file", self.port_file(worker_id),
            "--worker-id", worker_id,
            "--workers", str(self.threads),
            "--engine", self.engine,
            "--queue-depth", str(self.queue_depth),
            "--cache-entries", str(self.cache_entries),
            "--journal", self.journal_path(worker_id),
            "--disk-cache", self.resolved_cache_path(),
            "--drain-deadline", str(self.drain_deadline),
            "--slow-threshold", str(self.slow_threshold),
            "--log-level", self.log_level,
        ]
        if self.mining_workers is not None:
            argv += ["--mining-workers", str(self.mining_workers)]
        argv += list(self.extra_args)
        return argv

    def environment(self) -> Dict[str, str]:
        if self.env is not None:
            return dict(self.env)
        env = dict(os.environ)
        # Make this checkout importable in the child even when the
        # package is not installed (tests, CI, source runs).
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        if existing:
            if src not in existing.split(os.pathsep):
                env["PYTHONPATH"] = src + os.pathsep + existing
        else:
            env["PYTHONPATH"] = src
        return env


class WorkerHandle:
    """One supervised worker: process, port, health, restart state."""

    def __init__(self, worker_id: str, config: WorkerConfig):
        self.worker_id = worker_id
        self.config = config
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.healthy = False
        self.identity: Dict[str, object] = {}
        self.fingerprint: Optional[str] = None
        self.restarts = 0
        self.consecutive_failures = 0
        self._backoff = DEFAULT_BACKOFF_BASE
        self._healthy_since: Optional[float] = None
        self._restart_not_before = 0.0
        self._lock = threading.Lock()

    # -- state the router reads -----------------------------------------

    @property
    def base_url(self) -> Optional[str]:
        port = self.port
        return f"http://127.0.0.1:{port}" if port else None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process else None

    def is_alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def note_failure(self) -> None:
        """A proxy-level transport failure: distrust this worker now.

        The router calls this the instant a proxied request dies on the
        socket, so routing stops preferring the worker *before* the next
        periodic health check confirms the death.
        """
        with self._lock:
            self.healthy = False
            self._healthy_since = None

    def to_dict(self) -> Dict[str, object]:
        """The per-worker section of the router's status document."""
        return {
            "id": self.worker_id,
            "pid": self.pid,
            "port": self.port,
            "url": self.base_url,
            "alive": self.is_alive(),
            "healthy": self.healthy,
            "restarts": self.restarts,
            "identity": dict(self.identity),
            "fingerprint": self.fingerprint,
        }

    # -- lifecycle (supervisor-owned) -----------------------------------

    def spawn(self, start_timeout: float = DEFAULT_START_TIMEOUT) -> None:
        """Start the process and wait for its port file."""
        port_file = Path(self.config.port_file(self.worker_id))
        try:
            port_file.unlink()
        except OSError:
            pass
        self.port = None
        self.healthy = False
        logger.info("spawning worker %s", self.worker_id)
        self.process = subprocess.Popen(
            self.config.command(self.worker_id),
            env=self.config.environment(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        deadline = time.monotonic() + start_timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"worker {self.worker_id} exited with "
                    f"{self.process.returncode} before binding a port"
                )
            try:
                text = port_file.read_text().strip()
                if text:
                    self.port = int(text)
                    # Arm the backoff *now*: if this incarnation dies,
                    # the next respawn waits — a crash-looping worker
                    # can never busy-spin the monitor thread.
                    self._restart_not_before = time.monotonic() + self._backoff
                    self._backoff = min(self._backoff * 2.0, DEFAULT_BACKOFF_CAP)
                    return
            except (OSError, ValueError):
                pass
            time.sleep(0.02)
        raise RuntimeError(
            f"worker {self.worker_id} wrote no port file within {start_timeout:g}s"
        )

    def check_health(self, timeout: float = 3.0) -> bool:
        """One ``GET /v1/status`` probe; updates cached identity."""
        url = self.base_url
        if url is None or not self.is_alive():
            self.healthy = False
            return False
        try:
            with urllib.request.urlopen(url + "/v1/status", timeout=timeout) as resp:
                document = json.loads(resp.read().decode("utf-8"))
        except (OSError, ValueError):
            self.consecutive_failures += 1
            self.healthy = False
            self._healthy_since = None
            return False
        self.consecutive_failures = 0
        self.identity = document.get("worker", {}) or {}
        store = document.get("store", {}) or {}
        fingerprint = store.get("fingerprint")
        self.fingerprint = fingerprint if isinstance(fingerprint, str) else None
        now = time.monotonic()
        if not self.healthy:
            self._healthy_since = now
        elif (
            self._healthy_since is not None
            and now - self._healthy_since > BACKOFF_RESET_AFTER
        ):
            self._backoff = DEFAULT_BACKOFF_BASE
        self.healthy = True
        return True

    def schedule_restart(self) -> None:
        """Arm the backoff timer after a death."""
        self._restart_not_before = time.monotonic() + self._backoff
        self._backoff = min(self._backoff * 2.0, DEFAULT_BACKOFF_CAP)
        self.healthy = False
        self._healthy_since = None

    def restart_due(self) -> bool:
        return time.monotonic() >= self._restart_not_before

    def terminate(self, sig: int = signal.SIGTERM) -> None:
        if self.process is not None and self.process.poll() is None:
            try:
                self.process.send_signal(sig)
            except OSError:  # pragma: no cover — already reaped
                pass

    def kill(self) -> None:
        if self.process is not None and self.process.poll() is None:
            try:
                self.process.kill()
            except OSError:  # pragma: no cover
                pass


class FleetSupervisor:
    """Spawn, watch, restart and drain a fleet of worker processes.

    The supervisor is also the router's *fleet view*: it exposes
    :meth:`healthy_workers` (ordered, stable ids) and
    :meth:`note_failure`, which is all the router needs to route and
    fail over.

    Args:
        config: how to spawn each worker.
        n_workers: fleet size.
        health_interval: seconds between health-check sweeps.
        restart: set ``False`` to disable restart-on-death (chaos tests
            that want a worker to *stay* dead).
        metrics: registry for ``repro_cluster_*`` supervisor metrics.
    """

    def __init__(
        self,
        config: WorkerConfig,
        n_workers: int,
        health_interval: float = 1.0,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        restart: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if config.db_path == ":memory:":
            raise ValueError(
                "a cluster needs a file-backed store (:memory: cannot be "
                "shared across worker processes)"
            )
        self.config = config
        self.health_interval = health_interval
        self.start_timeout = start_timeout
        self.restart = restart
        self.workers: List[WorkerHandle] = [
            WorkerHandle(f"w{index}", config) for index in range(n_workers)
        ]
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        registry = metrics if metrics is not None else default_registry()
        self._m_restarts = registry.counter(
            "repro_cluster_worker_restarts_total",
            "Worker processes restarted after death, by worker id.",
            labelnames=("worker",),
        )
        self._m_healthy = registry.gauge(
            "repro_cluster_workers_healthy",
            "Workers currently passing health checks.",
        )
        self._m_health_checks = registry.counter(
            "repro_cluster_health_checks_total",
            "Health-check probes, by outcome.",
            labelnames=("outcome",),
        )

    # -- fleet view (what the router consumes) ---------------------------

    def healthy_workers(self) -> List[WorkerHandle]:
        return [worker for worker in self.workers if worker.healthy]

    def all_workers(self) -> List[WorkerHandle]:
        return list(self.workers)

    def worker(self, worker_id: str) -> Optional[WorkerHandle]:
        for candidate in self.workers:
            if candidate.worker_id == worker_id:
                return candidate
        return None

    def note_failure(self, worker_id: str) -> None:
        handle = self.worker(worker_id)
        if handle is not None:
            handle.note_failure()
            self._m_healthy.set(len(self.healthy_workers()))

    def fingerprint(self) -> Optional[str]:
        """The fleet's current store fingerprint (any healthy worker's).

        Workers sharing one store disagree only transiently, mid-append;
        routing only needs a *consistent* key, and the router refreshes
        its copy on every append it proxies.
        """
        for worker in self.workers:
            if worker.healthy and worker.fingerprint:
                return worker.fingerprint
        return None

    # -- lifecycle -------------------------------------------------------

    def start(self, wait_healthy: bool = True) -> None:
        """Spawn the fleet (and the monitor thread)."""
        Path(self.config.run_dir).mkdir(parents=True, exist_ok=True)
        for worker in self.workers:
            worker.spawn(self.start_timeout)
        if wait_healthy:
            self.wait_healthy()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    def wait_healthy(self, timeout: float = DEFAULT_START_TIMEOUT) -> None:
        """Block until every worker answers a health check."""
        deadline = time.monotonic() + timeout
        pending = list(self.workers)
        while pending:
            pending = [w for w in pending if not w.check_health(timeout=1.0)]
            if not pending:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "workers never became healthy: "
                    + ", ".join(w.worker_id for w in pending)
                )
            time.sleep(0.05)
        self._m_healthy.set(len(self.healthy_workers()))

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            self.sweep()

    def sweep(self) -> None:
        """One monitor pass: probe the living, restart the dead."""
        for worker in self.workers:
            if self._stop.is_set():
                return
            if not worker.is_alive():
                self._m_health_checks.inc(outcome="dead")
                worker.healthy = False
                if self.restart and worker.restart_due():
                    try:
                        worker.spawn(self.start_timeout)
                        worker.restarts += 1
                        self._m_restarts.inc(worker=worker.worker_id)
                        logger.warning(
                            "worker %s died; restarted as pid %s",
                            worker.worker_id,
                            worker.pid,
                        )
                    except RuntimeError as error:
                        logger.error(
                            "worker %s restart failed: %s", worker.worker_id, error
                        )
                        worker.schedule_restart()
                continue
            ok = worker.check_health()
            self._m_health_checks.inc(outcome="ok" if ok else "failed")
        self._m_healthy.set(len(self.healthy_workers()))

    def drain(self, deadline_seconds: Optional[float] = None) -> Dict[str, int]:
        """Gracefully stop the fleet; returns exit-outcome counts.

        ``SIGTERM`` starts each worker's own drain (PR 6 semantics:
        admission stops, running jobs land or are interrupted with
        journaled partials).  Workers still alive past the deadline are
        killed — their journals replay on the next boot, so even the
        hard path loses nothing.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.health_interval + 2.0)
        deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.drain_deadline + 5.0
        )
        for worker in self.workers:
            worker.terminate(signal.SIGTERM)
        drained = killed = 0
        end = time.monotonic() + deadline
        for worker in self.workers:
            if worker.process is None:
                continue
            remaining = max(0.1, end - time.monotonic())
            try:
                worker.process.wait(timeout=remaining)
                drained += 1
            except subprocess.TimeoutExpired:
                worker.kill()
                try:
                    worker.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
                killed += 1
            worker.healthy = False
        self._m_healthy.set(0)
        return {"drained": drained, "killed": killed}

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
