"""``python -m repro.cluster`` — serve a worker fleet behind the router.

Examples::

    # 4 worker processes behind one public port
    python -m repro.cluster --db sales.db --workers 4 --port 8770

    # the same thing, as repro-serve sugar
    repro-serve --db sales.db --cluster 4 --port 8770

    # demo mode with per-tenant quotas (10 req/s sustained, burst 20,
    # tenant "analytics" gets a double share)
    python -m repro.cluster --demo --workers 2 --quota-rate 10 \
        --quota-burst 20 --quota-weight analytics=2

The router speaks the exact single-process ``/v1`` API, so ``curl`` and
:class:`~repro.service.client.ServiceClient` work unchanged.  Shutdown
(``SIGTERM``/``SIGINT``) drains the whole fleet: the router answers 503
with an honest ``Retry-After`` for new work while every worker runs its
own PR 6 drain, then the processes exit.
"""

from __future__ import annotations

import argparse
import signal
import sys
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.cluster.quota import TenantQuotas
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import FleetSupervisor, WorkerConfig
from repro.obs.logs import configure_logging
from repro.obs.metrics import MetricsRegistry


def _parse_weight(text: str) -> "tuple[str, float]":
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected TENANT=WEIGHT, got {text!r}"
        )
    tenant, _, raw = text.partition("=")
    try:
        weight = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"weight must be a number, got {raw!r}"
        ) from None
    if weight <= 0:
        raise argparse.ArgumentTypeError(f"weight must be > 0, got {weight}")
    return tenant, weight


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description=(
            "Serve TML mining queries from N worker processes behind a "
            "fingerprint-routed router."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="router bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8770,
        help="router bind port (0 = ephemeral; resolved port is printed "
        "and written to --port-file)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the router's resolved port to this file once listening",
    )
    parser.add_argument(
        "--db",
        default=":memory:",
        help="shared SQLite store path (a cluster needs a file-backed "
        "store; with --demo an unset/:memory: path gets a temporary file)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="load the bundled synthetic seasonal demo dataset at startup "
        "(skipped when the store already holds data)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="worker processes"
    )
    parser.add_argument(
        "--threads-per-worker",
        type=int,
        default=2,
        metavar="N",
        help="scheduler threads inside each worker process",
    )
    parser.add_argument(
        "--mining-workers",
        type=lambda v: None if v.lower() == "auto" else int(v),
        default=1,
        metavar="N|auto",
        help="process shards per mining run inside each worker (default 1: "
        "the fleet already owns the cores; auto = planner-sized)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        help="counting backend (auto|dict|hashtree|vertical|packed)",
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        metavar="R",
        help="per-tenant sustained requests/second (unset = no quotas)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=10.0,
        metavar="B",
        help="per-tenant burst depth (tokens; scaled by tenant weight)",
    )
    parser.add_argument(
        "--quota-weight",
        type=_parse_weight,
        action="append",
        default=[],
        metavar="TENANT=W",
        help="fair-share multiplier for one tenant (repeatable)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between worker health-check sweeps",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        help="seconds each worker's SIGTERM drain lets running jobs finish",
    )
    parser.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="latency past which each worker's flight recorder captures "
        "a query in full (merged at GET /v1/debug/slow)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every routed request"
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error", "critical"),
        help="threshold for the repro.* loggers on stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2

    run_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    db_path = args.db
    if db_path == ":memory:":
        if not args.demo:
            print(
                "a cluster needs a file-backed --db "
                "(worker processes cannot share :memory:)",
                file=sys.stderr,
            )
            return 2
        db_path = str(Path(run_dir) / "demo.db")

    # The store is prepared before any worker exists: a worker's journal
    # recovery starts mining immediately, and a recovered job must never
    # see a half-loaded dataset.
    from repro.db.sqlite_store import SqliteStore

    store = SqliteStore(db_path)
    try:
        if args.demo and store.count_transactions() == 0:
            from repro.datagen import seasonal_dataset

            dataset = seasonal_dataset(n_transactions=4000, seed=7)
            loaded = store.save_database(dataset.database)
            print(f"loaded demo dataset: {loaded} transactions", file=sys.stderr)
    finally:
        store.close()

    registry = MetricsRegistry()
    config = WorkerConfig(
        db_path=db_path,
        run_dir=run_dir,
        threads=args.threads_per_worker,
        mining_workers=args.mining_workers,
        engine=args.engine,
        drain_deadline=args.drain_deadline,
        slow_threshold=args.slow_threshold,
        log_level=args.log_level,
    )
    supervisor = FleetSupervisor(
        config,
        n_workers=args.workers,
        health_interval=args.health_interval,
        metrics=registry,
    )
    weights: Dict[str, float] = dict(args.quota_weight)
    quotas = TenantQuotas(
        rate=args.quota_rate, burst=args.quota_burst, weights=weights
    )

    print(f"starting {args.workers} worker(s) on {db_path} ...", file=sys.stderr)
    supervisor.start()
    for worker in supervisor.all_workers():
        print(
            f"  worker {worker.worker_id}: pid {worker.pid} "
            f"port {worker.port}",
            file=sys.stderr,
        )
    router = ClusterRouter(
        supervisor,
        host=args.host,
        port=args.port,
        quotas=quotas,
        metrics=registry,
        verbose=args.verbose,
    )
    router.drain_retry_after = args.drain_deadline
    print(f"repro cluster router listening on {router.url}", file=sys.stderr)
    if args.port_file:
        port_file = Path(args.port_file)
        tmp = port_file.with_name(port_file.name + ".tmp")
        tmp.write_text(f"{router.server_address[1]}\n")
        tmp.replace(port_file)

    stop = threading.Event()

    def _request_shutdown(signum, frame):  # noqa: ARG001 — signal API
        print(
            f"\nreceived {signal.Signals(signum).name}: draining fleet "
            f"(deadline {args.drain_deadline:g}s)",
            file=sys.stderr,
        )
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)
    serve_thread = threading.Thread(
        target=router.serve_forever, name="repro-cluster-router", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    finally:
        # Admission stops first (the router answers 503 with an honest
        # Retry-After while workers land their jobs), then the fleet
        # drains, then the listener goes away.
        router.draining = True
        summary = supervisor.drain()
        print(f"fleet drain: {summary}", file=sys.stderr)
        router.shutdown()
        router.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
