"""Rendezvous (highest-random-weight) hashing for request routing.

The router's placement primitive: every request carries a *routing key*
(store fingerprint × canonical query for ``/v1/query``, the raw job id
for job paths) and the fleet holds a set of worker ids.  Rendezvous
hashing scores every ``(key, worker)`` pair with an independent hash and
picks the highest score, which buys exactly the properties a
cache-locality router needs:

* **Deterministic** — the same key always lands on the same worker while
  the healthy set is stable, so a worker's in-memory result cache and
  its incremental ``ExecutionEnvironment`` stay hot for "its" queries.
* **Minimal disruption** — removing a worker only moves the keys that
  worker owned (they re-rank among the survivors); adding one steals
  ~1/N of each peer's keys.  No ring state, no token management.
* **Ranked failover for free** — the full preference order is just the
  score-sorted worker list, so "owner dead, try the next one" is the
  second element, not a special case.

SHA-256 keeps the scores independent of Python's randomized ``hash()``
(routing must agree across processes and restarts).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

__all__ = ["rendezvous_score", "rank_workers", "pick_worker"]


def rendezvous_score(key: str, worker_id: str) -> int:
    """The HRW score of one ``(routing key, worker)`` pair."""
    digest = hashlib.sha256(
        f"{worker_id}\x00{key}".encode("utf-8", "surrogatepass")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def rank_workers(key: str, worker_ids: Sequence[str]) -> List[str]:
    """Worker ids ordered by preference for ``key`` (best first).

    Ties (astronomically unlikely with 64-bit scores, but ids may be
    duplicated by a buggy caller) break on the worker id itself so the
    order stays total and deterministic.
    """
    return sorted(
        dict.fromkeys(worker_ids),
        key=lambda worker_id: (rendezvous_score(key, worker_id), worker_id),
        reverse=True,
    )


def pick_worker(key: str, worker_ids: Sequence[str]) -> Optional[str]:
    """The preferred worker for ``key``, or ``None`` for an empty fleet."""
    best: Optional[str] = None
    best_score = -1
    for worker_id in worker_ids:
        score = rendezvous_score(key, worker_id)
        if score > best_score or (score == best_score and (best is None or worker_id > best)):
            best, best_score = worker_id, score
    return best
